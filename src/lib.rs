//! # metatelescope
//!
//! Umbrella crate for the meta-telescope reproduction (IMC '23, *How to
//! Operate a Meta-Telescope in your Spare Time*). Re-exports the public
//! API of every subsystem crate so downstream users depend on one crate:
//!
//! - [`types`] — addresses, /24 blocks, prefixes, tries, taxonomies;
//! - [`wire`] — packet views, pcap files, IPFIX-lite flow export;
//! - [`flow`] — flow records, sampling, per-/24 accumulators;
//! - [`netmodel`] — the synthetic Internet (ASes, RIBs, vantage points);
//! - [`traffic`] — IBR and production traffic generators;
//! - [`telescope`] — operational telescope simulator;
//! - [`core`] — the inference pipeline and analyses (the paper's
//!   contribution);
//! - [`stream`] — continuous streaming collection: per-exporter IPFIX
//!   sessions, watermark-based day windows, backpressure-bounded ingest,
//!   and per-window pipeline scheduling;
//! - [`obs`] — the unified observability layer: a lock-cheap metrics
//!   registry (counters, gauges, histograms, span timing) shared by the
//!   engine and the streaming service, with Prometheus-text and JSON
//!   exposition. See `DESIGN.md` §"Observability" for the metric
//!   naming scheme;
//! - [`serve`] — the socket-facing collection daemon: a hand-rolled
//!   nonblocking epoll event loop accepting IPFIX over UDP and TCP into
//!   the streaming service, `GET /health` + `GET /metrics` over a
//!   minimal HTTP/1.1 responder, and graceful drain on shutdown. See
//!   `DESIGN.md` §"Serving";
//! - [`store`] — the persistent results store: closed day windows and
//!   the running multi-day summary in a compact checksummed columnar
//!   format, with the slot-indexed query cache behind mt-serve's
//!   `/v1/block` and `/v1/windows` endpoints. See `DESIGN.md`
//!   §"Results store".
//!
//! See `examples/quickstart.rs` for an end-to-end tour: generate an
//! Internet, run a day of traffic through vantage points, infer
//! meta-telescope prefixes, and inspect the IBR they attract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mt_core as core;
pub use mt_flow as flow;
pub use mt_netmodel as netmodel;
pub use mt_obs as obs;
pub use mt_serve as serve;
pub use mt_store as store;
pub use mt_stream as stream;
pub use mt_telescope as telescope;
pub use mt_traffic as traffic;
pub use mt_types as types;
pub use mt_wire as wire;
