//! Section 8 in miniature: which ports do scanners aim at which parts of
//! the world, as seen through the inferred meta-telescope? Prints the
//! per-region and per-network-type port activity behind the paper's bean
//! plots (Figures 11 and 12).
//!
//! ```sh
//! cargo run --release --example port_geography
//! ```

use metatelescope::core::analysis::PortMatrix;
use metatelescope::core::pipeline;
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::traffic::{
    generate_day, CaptureSet, EmissionSink, FlowEmission, SpoofFloodEmission, SpoofSpace,
    TrafficConfig,
};
use metatelescope::types::{Block24, Continent, Day, NetworkType};

fn main() {
    let net = Internet::generate(InternetConfig::small(), 42);
    let traffic = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);
    let day = Day(0);

    // Infer the meta-telescope from the day's capture (union of VPs).
    let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
    generate_day(&net, &traffic, day, &mut capture);
    let mut merged: Option<metatelescope::flow::TrafficStats> = None;
    for vo in capture.vantages {
        let s = vo.into_stats();
        match &mut merged {
            None => merged = Some(s),
            Some(m) => m.merge(&s),
        }
    }
    let rib = net.rib(day);
    let dark = pipeline::run(
        &merged.unwrap(),
        &rib,
        net.vantage_points[0].sampling_rate,
        1,
        &pipeline::PipelineConfig::default(),
    )
    .dark;
    println!("meta-telescope: {} /24s\n", dark.len());

    // Second pass: count TCP destination ports toward the inferred set,
    // bucketed by destination region and network type.
    struct PortSink<'a> {
        dark: &'a metatelescope::types::Block24Set,
        net: &'a Internet,
        matrix: PortMatrix,
    }
    impl EmissionSink for PortSink<'_> {
        fn flow(&mut self, e: &FlowEmission) {
            if e.intent.protocol != 6 {
                return;
            }
            let block = Block24::containing(e.intent.dst);
            if !self.dark.contains(block) {
                return;
            }
            if let Some(a) = self.net.as_of_block(block) {
                self.matrix.add(
                    e.intent.dst_port,
                    a.continent,
                    a.network_type,
                    e.intent.packets,
                );
            }
        }
        fn spoof_flood(&mut self, _: &SpoofFloodEmission) {}
    }
    let mut sink = PortSink {
        dark: &dark,
        net: &net,
        matrix: PortMatrix::new(),
    };
    generate_day(&net, &traffic, day, &mut sink);

    // Figure 11: top ports per world region (shares within the region).
    let ports = sink.matrix.union_top_ports_by_region(8);
    print!("{:>8}", "port");
    for c in Continent::ALL {
        print!("{:>8}", c.abbrev());
    }
    println!();
    for &port in ports.iter().take(12) {
        print!("{port:>8}");
        for c in Continent::ALL {
            let share = sink.matrix.region_share(port, c);
            if share > 0.0 {
                print!("{:>7.1}%", share * 100.0);
            } else {
                print!("{:>8}", "-");
            }
        }
        println!();
    }

    // Figure 12: the same by network type.
    println!();
    print!("{:>8}", "port");
    for t in NetworkType::ALL {
        print!("{:>12}", t.label());
    }
    println!();
    for &port in ports.iter().take(12) {
        print!("{port:>8}");
        for t in NetworkType::ALL {
            print!("{:>11.1}%", sink.matrix.type_share(port, t) * 100.0);
        }
        println!();
    }

    println!();
    println!("Expected shapes (paper Section 8): telnet/23 dominates almost");
    println!("everywhere; 37215/52869 (Satori) concentrate on AF; 6001 on OC;");
    println!("7001 on NA; 80 and 5038 are over-represented toward data centers.");
}
