//! Federated meta-telescopes (the paper's Section 9 proposal): three
//! independent operators run the inference on their own vantage points,
//! share their results, and agree on a quorum-based joint meta-telescope.
//! The joint set is then tracked for stability across days and compiled
//! into a compact CIDR monitor list an operator could actually deploy.
//!
//! ```sh
//! cargo run --release --example federated
//! ```

use metatelescope::core::federate::{federate, Contribution, FederationPolicy};
use metatelescope::core::stability::StabilityTracker;
use metatelescope::core::{eval, pipeline};
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::TrafficView;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Block24Set, Day};

const DAYS: u32 = 3;

fn main() {
    let net = Internet::generate(InternetConfig::small(), 42);
    let traffic = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);
    let pc = pipeline::PipelineConfig::default();
    let rate = net.vantage_points[0].sampling_rate;

    let mut tracker = StabilityTracker::new();
    for day in Day(0).range(DAYS) {
        let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
        generate_day(&net, &traffic, day, &mut capture);
        let rib = net.rib(day);

        // Each vantage-point operator contributes independently. The
        // blocks an operator saw originating are its veto set.
        let contributions: Vec<Contribution> = capture
            .vantages
            .iter()
            .map(|vo| {
                let result = pipeline::run(&vo.stats, &rib, rate, 1, &pc);
                let mut vetoed = Block24Set::new();
                for (block, src) in vo.stats.iter_src() {
                    // A handful of sampled packets could be spoofed;
                    // veto only confidently-originating blocks.
                    if src.packets > 3 {
                        vetoed.insert(block);
                    }
                }
                Contribution {
                    operator: vo.vp.code.clone(),
                    // Trust scales (crudely) with vantage-point size.
                    weight: if vo.vp.members >= 100 { 1.0 } else { 0.5 },
                    inferred: result.dark,
                    vetoed,
                }
            })
            .collect();

        let joint = federate(
            &contributions,
            &FederationPolicy {
                quorum: 1.5,
                veto_enabled: true,
            },
        );
        let gt = eval::GroundTruthReport::evaluate(&joint.accepted, &net, day, 1);
        println!(
            "{day}: federated {} /24s (vetoed {}), precision {:.1}%",
            joint.accepted.len(),
            joint.vetoed.len(),
            gt.precision() * 100.0
        );
        for (op, support) in {
            let mut v: Vec<_> = joint.operator_support.iter().collect();
            v.sort();
            v
        } {
            println!("    {op}: contributed to {support} accepted blocks");
        }
        tracker.record(day, joint.accepted);
    }

    // Stability across the window (Section 7.1's recommendation).
    let stable = tracker.stable(2);
    let always = tracker.always_inferred();
    println!();
    println!(
        "stable meta-telescope: {} blocks on >=2 of {DAYS} days, {} on all days",
        stable.len(),
        always.len()
    );
    if let Some(churn) = tracker.latest_churn() {
        println!(
            "latest churn: +{} -{} (retained {})",
            churn.appeared, churn.disappeared, churn.retained
        );
    }

    // Compile the deployable monitor list.
    let cidrs = always.aggregate();
    println!(
        "monitor list: {} /24s aggregate into {} CIDR prefixes",
        always.len(),
        cidrs.len()
    );
    let mut by_len: std::collections::BTreeMap<u8, usize> = std::collections::BTreeMap::new();
    for p in &cidrs {
        *by_len.entry(p.len()).or_default() += 1;
    }
    let summary: Vec<String> = by_len
        .iter()
        .map(|(len, n)| format!("{n}x/{len}"))
        .collect();
    println!("  ({})", summary.join(", "));
    let gt = eval::GroundTruthReport::evaluate(&always, &net, Day(0), DAYS);
    println!(
        "final precision against ground truth: {:.1}%",
        gt.precision() * 100.0
    );
}
