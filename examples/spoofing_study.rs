//! The Section 7.2 spoofing study in miniature: extend the observation
//! window day by day, watch strict inference decay as forged sources
//! pollute candidate blocks, and watch the unrouted-space tolerance win
//! the blocks back (the paper's Figure 9).
//!
//! ```sh
//! cargo run --release --example spoofing_study
//! ```

use metatelescope::core::{combine, pipeline, SpoofTolerance};
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::TrafficStats;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::Day;

const DAYS: u32 = 5;

fn main() {
    let net = Internet::generate(InternetConfig::small(), 42);
    let traffic = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);
    let rate = net.vantage_points[0].sampling_rate;

    println!("window   strict   +tolerance   tolerance(pkts)");
    let mut merged: Option<TrafficStats> = None;
    for d in 0..DAYS {
        let day = Day(d);
        let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
        generate_day(&net, &traffic, day, &mut capture);
        // Union of all vantage points, accumulated over the window.
        for vo in capture.vantages {
            let stats = vo.into_stats();
            match &mut merged {
                None => merged = Some(stats),
                Some(m) => m.merge(&stats),
            }
        }
        let stats = merged.as_ref().unwrap();
        let rib = combine::rib_union(&net, Day(0), d + 1);

        let strict = pipeline::run(
            &stats.clone(),
            &rib,
            rate,
            d + 1,
            &pipeline::PipelineConfig::default(),
        );
        let tol = SpoofTolerance::estimate(stats, net.unrouted_octets(), 0.9999);
        let tolerant = pipeline::run(
            &stats.clone(),
            &rib,
            rate,
            d + 1,
            &pipeline::PipelineConfig {
                spoof_tolerance_packets: tol.packets.max(1),
                ..pipeline::PipelineConfig::default()
            },
        );
        println!(
            "0-{d}      {:>6}   {:>10}   {}",
            strict.dark.len(),
            tolerant.dark.len(),
            tol.packets.max(1)
        );
    }
    println!();
    println!("Strict inference decays as spoofed packets disqualify more and more");
    println!(
        "candidate blocks; the tolerance derived from the {} unrouted /8s",
        net.unrouted_octets().len()
    );
    println!("keeps the multi-day meta-telescope usable (paper Fig. 9).");
}
