//! A tiny tcpdump: captures one day at an operational telescope, then
//! decodes the exported pcap packet by packet with the checked wire
//! views — checksums verified, TCP options parsed — and prints the
//! classic one-line-per-packet view.
//!
//! ```sh
//! cargo run --release --example pcap_dump            # print 25 packets
//! cargo run --release --example pcap_dump -- 100     # print more
//! ```

use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::telescope::PcapSummary;
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::Day;
use metatelescope::wire::{ipv4, pcap, tcp, udp, IpProtocol};

fn main() {
    let limit: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);

    // Capture one day at TUS1 with pcap export enabled.
    let net = Internet::generate(InternetConfig::small(), 42);
    let traffic = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);
    let mut capture = CaptureSet::new(&net, Day(0), &spoof, DEFAULT_SIZE_THRESHOLD, false);
    capture.telescopes[0].enable_pcap(1_000);
    generate_day(&net, &traffic, Day(0), &mut capture);
    let bytes = capture
        .telescopes
        .swap_remove(0)
        .pcap_bytes()
        .expect("pcap enabled");
    println!("capture: {} bytes of pcap from TUS1, day 0\n", bytes.len());

    // Decode and print, tcpdump-style.
    let reader = pcap::Reader::new(&bytes[..]).expect("valid capture");
    for (i, record) in reader.records().enumerate() {
        if i >= limit {
            println!("... (truncated; pass a larger count to see more)");
            break;
        }
        let record = record.expect("intact record");
        let packet = match ipv4::Packet::new_checked(&record.data[..]) {
            Ok(p) => p,
            Err(e) => {
                println!("{:>10}  malformed IPv4: {e}", record.ts_sec);
                continue;
            }
        };
        let ok = if packet.verify_checksum() {
            ""
        } else {
            " [bad ip cksum]"
        };
        match packet.protocol() {
            Some(IpProtocol::Tcp) => {
                let seg = tcp::Segment::new_checked(packet.payload()).expect("crafted TCP");
                let f = seg.flags();
                let mut flags = String::new();
                for (bit, ch) in [
                    (tcp::Flags::SYN, 'S'),
                    (tcp::Flags::ACK, '.'),
                    (tcp::Flags::RST, 'R'),
                    (tcp::Flags::FIN, 'F'),
                    (tcp::Flags::PSH, 'P'),
                ] {
                    if f.contains(bit) {
                        flags.push(ch);
                    }
                }
                let opts = if seg.options().is_empty() {
                    String::new()
                } else {
                    format!(" opts {}B", seg.options().len())
                };
                println!(
                    "{:>10}  IP {} > {}.{}: Flags [{}], len {}{}{}",
                    record.ts_sec,
                    packet.src(),
                    packet.dst(),
                    seg.dst_port(),
                    flags,
                    packet.total_len(),
                    opts,
                    ok,
                );
            }
            Some(IpProtocol::Udp) => {
                let dg = udp::Datagram::new_checked(packet.payload()).expect("crafted UDP");
                println!(
                    "{:>10}  IP {} > {}.{}: UDP, length {}{}",
                    record.ts_sec,
                    packet.src(),
                    packet.dst(),
                    dg.dst_port(),
                    dg.payload().len(),
                    ok,
                );
            }
            _ => println!(
                "{:>10}  IP {} > {}: proto {}",
                record.ts_sec,
                packet.src(),
                packet.dst(),
                packet.protocol_raw()
            ),
        }
    }

    // And the aggregate view the paper's Table 5 analysis uses.
    let summary = PcapSummary::parse(&bytes).expect("valid capture");
    println!(
        "\nsummary: {} packets ({} TCP / {} UDP), {:.1}% bare SYNs, avg TCP {:.1} B",
        summary.packets,
        summary.tcp_packets,
        summary.udp_packets,
        summary.syn_share() * 100.0,
        summary.avg_tcp_size().unwrap_or(0.0),
    );
    let mut top: Vec<(u16, u64)> = summary.tcp_ports.iter().map(|(&p, &c)| (p, c)).collect();
    top.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    top.truncate(5);
    println!("top TCP ports in this capture: {top:?}");
}
