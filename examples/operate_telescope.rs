//! Operating a meta-telescope "in your spare time": infer prefixes over a
//! multi-day window (with spoofing tolerance), then use them as a
//! telescope — compare the IBR they attract against a real operational
//! telescope, port by port, and round-trip a pcap export through the
//! wire-format parsers.
//!
//! ```sh
//! cargo run --release --example operate_telescope
//! ```

use metatelescope::core::{combine, eval, pipeline, SpoofTolerance};
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::TrafficStats;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::telescope::{
    port_overlap, PcapSummary, PortRanking, TelescopeDayStats, TelescopeWeekStats,
};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Block24, Day};
use std::collections::HashMap;

const WINDOW_DAYS: u32 = 3;

fn main() {
    let net = Internet::generate(InternetConfig::small(), 42);
    let traffic = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);

    // ---- Phase 1: accumulate a window of vantage-point data and real
    //      telescope captures side by side.
    let mut merged: Option<TrafficStats> = None;
    let mut telescope_days: Vec<TelescopeDayStats> = Vec::new();
    let mut pcap_bytes = None;
    for day in Day(0).range(WINDOW_DAYS) {
        let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
        if day == Day(0) {
            capture.telescopes[0].enable_pcap(500);
        }
        generate_day(&net, &traffic, day, &mut capture);
        telescope_days.push(TelescopeDayStats::from_observer(
            &capture.telescopes[0],
            day,
        ));
        if day == Day(0) {
            pcap_bytes = capture.telescopes.swap_remove(0).pcap_bytes();
        }
        for vo in capture.vantages {
            let stats = vo.into_stats();
            match &mut merged {
                None => merged = Some(stats),
                Some(m) => m.merge(&stats),
            }
        }
    }
    let stats = merged.expect("at least one vantage point");

    // ---- Phase 2: infer the meta-telescope with the Section 7.2
    //      spoofing tolerance.
    let tol = SpoofTolerance::estimate(&stats, net.unrouted_octets(), 0.9999);
    println!(
        "spoofing tolerance: {} packets ({} of {} unrouted /24s polluted)",
        tol.packets, tol.polluted_blocks, tol.baseline_blocks
    );
    let rib = combine::rib_union(&net, Day(0), WINDOW_DAYS);
    let rate = net.vantage_points[0].sampling_rate;
    let result = pipeline::run(
        &stats,
        &rib,
        rate,
        WINDOW_DAYS,
        &pipeline::PipelineConfig {
            spoof_tolerance_packets: tol.packets.max(1),
            ..pipeline::PipelineConfig::default()
        },
    );
    println!(
        "inferred {} meta-telescope /24s over {WINDOW_DAYS} days",
        result.dark.len()
    );
    for t in &net.telescopes {
        let cov = eval::TelescopeCoverage::measure(&result.dark, t, &net, Day(0), WINDOW_DAYS);
        println!(
            "  re-discovered {}: {}/{} stably-dark blocks ({:.0}%)",
            cov.code,
            cov.inferred,
            cov.dark_in_window,
            cov.recall() * 100.0
        );
    }

    // ---- Phase 3: what does the meta-telescope see? Count sampled TCP
    //      toward inferred-dark blocks, port by port, and compare with
    //      the operational telescope (Table 5's exercise).
    let mut meta_ports: HashMap<u16, u64> = HashMap::new();
    for (block, d) in stats.iter_dst() {
        if result.dark.contains(block) {
            // The per-port split is not retained in aggregates; re-use
            // the telescope's histogram granularity by scanning sizes is
            // not possible either — so this example re-observes one day
            // with a port-counting sink over the inferred set.
            let _ = d;
        }
    }
    {
        use metatelescope::core::analysis::PortMatrix;
        use metatelescope::traffic::{EmissionSink, FlowEmission, SpoofFloodEmission};
        struct PortSink<'a> {
            dark: &'a metatelescope::types::Block24Set,
            net: &'a Internet,
            matrix: PortMatrix,
        }
        impl EmissionSink for PortSink<'_> {
            fn flow(&mut self, e: &FlowEmission) {
                if e.intent.protocol != 6 {
                    return;
                }
                let block = Block24::containing(e.intent.dst);
                if !self.dark.contains(block) {
                    return;
                }
                if let Some(a) = self.net.as_of_block(block) {
                    self.matrix.add(
                        e.intent.dst_port,
                        a.continent,
                        a.network_type,
                        e.intent.packets,
                    );
                }
            }
            fn spoof_flood(&mut self, _: &SpoofFloodEmission) {}
        }
        let mut sink = PortSink {
            dark: &result.dark,
            net: &net,
            matrix: PortMatrix::new(),
        };
        generate_day(&net, &traffic, Day(0), &mut sink);
        for (&(port, _), &pkts) in &sink.matrix.by_type {
            *meta_ports.entry(port).or_default() += pkts;
        }
    }
    let meta_ranking = PortRanking::top_n("meta-telescope", &meta_ports, 10);
    let week = TelescopeWeekStats::new("TUS1", net.telescopes[0].num_blocks, telescope_days);
    let tus1_ranking = PortRanking::top_n("TUS1", &week.port_counts(), 10);
    println!("TUS1 top-10 ports:           {:?}", tus1_ranking.ports());
    println!("meta-telescope top-10 ports: {:?}", meta_ranking.ports());
    println!(
        "overlap: {}/10 (the paper found a perfect overlap of the top 5)",
        port_overlap(&tus1_ranking, &meta_ranking)
    );

    // ---- Phase 4: the telescope's pcap export parses cleanly with the
    //      checked wire views (checksums verified per packet).
    let pcap = pcap_bytes.expect("pcap capture was enabled");
    let summary = PcapSummary::parse(&pcap).expect("valid capture file");
    println!(
        "pcap re-analysis: {} packets, {} malformed, {:.0}% TCP SYNs, avg TCP size {:.1} B",
        summary.packets,
        summary.malformed,
        summary.syn_share() * 100.0,
        summary.avg_tcp_size().unwrap_or(0.0)
    );
}
