//! Quickstart: build a synthetic Internet, run one day of traffic
//! through an IXP vantage point, infer meta-telescope prefixes, and
//! check the result against ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metatelescope::core::{analysis, eval, pipeline};
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::TrafficView;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::Day;

fn main() {
    // 1. A deterministic world: ASes, prefixes, dark/active ground
    //    truth, telescopes, IXPs. Same (config, seed) → same Internet.
    let net = Internet::generate(InternetConfig::small(), 42);
    println!(
        "Internet: {} ASes, {} announced /24s ({} dark, {} active)",
        net.ases.len(),
        net.announced_blocks(),
        net.dark_truth.len(),
        net.active_truth.len()
    );

    // 2. One simulated day of traffic — scanners, botnets, backscatter,
    //    spoofed floods, production flows — captured at every vantage
    //    point with 1-in-N packet sampling.
    let traffic = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);
    let day = Day(0);
    let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
    generate_day(&net, &traffic, day, &mut capture);

    // 3. Run the seven-step inference pipeline on the largest IXP.
    let ce1 = capture.vantage("CE1").expect("CE1 exists in the scenario");
    println!(
        "CE1 sampled {} flow records across {} destination /24s",
        ce1.sampled_flows,
        ce1.stats.dst_block_count()
    );
    let rib = net.rib(day);
    let result = pipeline::run(
        &ce1.stats,
        &rib,
        ce1.vp.sampling_rate,
        1,
        &pipeline::PipelineConfig::default(),
    );
    println!("funnel: {:?}", result.funnel);
    println!(
        "classified: {} dark (meta-telescope prefixes), {} unclean, {} gray",
        result.dark.len(),
        result.unclean.len(),
        result.gray.len()
    );

    // 4. Evaluate: the simulator knows the truth the paper could not.
    let gt = eval::GroundTruthReport::evaluate(&result.dark, &net, day, 1);
    println!(
        "ground truth: precision {:.1}%, recall {:.1}% of all announced dark space",
        gt.precision() * 100.0,
        gt.recall() * 100.0
    );

    // 5. Where is the meta-telescope?
    let summary = analysis::summarize("CE1", &result.dark, &net);
    println!(
        "the meta-telescope spans {} /24s in {} ASes across {} countries",
        summary.blocks, summary.ases, summary.countries
    );
    let top = analysis::by_country(&result.dark, &net);
    print!("top countries:");
    for (country, blocks) in top.iter().take(5) {
        print!(" {country}={blocks}");
    }
    println!();
}
