//! Columnar ⇔ hashmap backend equivalence.
//!
//! The columnar store ([`metatelescope::flow::ColumnarStats`]) must be
//! observationally identical to the map-backed `TrafficStats` oracle
//! through the `TrafficView` trait: same per-block aggregates, same
//! iteration contents, and — the property the pipeline actually relies
//! on — bit-identical verdicts from the seven-step inference, over
//! random announced spaces (with unannounced gaps) and random traffic
//! (including blocks outside every announcement, which the columnar
//! store routes through its overflow map).
//!
//! A final smoke test runs the `full` netmodel profile end-to-end at
//! reduced flow volume: full-IPv4 slot space, both layouts, equal
//! results.

use metatelescope::core::pipeline::{self, PipelineConfig};
use metatelescope::core::PipelineEngine;
use metatelescope::flow::{
    ColumnarStats, FlowRecord, ShardedTrafficStats, StatsLayout, TrafficStats, TrafficView,
};
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::types::mix::mix3;
use metatelescope::types::{
    Asn, Block24, Ipv4, Prefix, PrefixTrie, RibIndex, SimTime, Slot24Index,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A random announced space: a set of /20s (16 /24s each) scattered
/// over the low address space, leaving unannounced gaps between them.
/// Returns the routing trie and the compiled slot index.
fn announced_space(slash20s: &[u16]) -> (PrefixTrie<Asn>, Arc<Slot24Index>) {
    let mut trie = PrefixTrie::new();
    let mut ids: Vec<u16> = slash20s.to_vec();
    ids.sort_unstable();
    ids.dedup();
    for (i, &id) in ids.iter().enumerate() {
        // /20 number `id` covers blocks [id*16, id*16+16).
        let base = Ipv4((u32::from(id) * 16) << 8);
        let prefix = Prefix::new(base, 20).expect("aligned /20");
        trie.insert(prefix, Asn(64_512 + i as u32));
    }
    let slots = Arc::new(Slot24Index::build(&RibIndex::build(&trie)));
    (trie, slots)
}

/// One record; `inside` picks the dst from the announced space when
/// possible, otherwise (or when `inside` is false) dst is arbitrary.
#[derive(Debug, Clone)]
struct RecSpec {
    inside: bool,
    dst_pick: u32,
    src: u32,
    dst_host: u8,
    dst_port: u16,
    protocol: u8,
    packets: u64,
    size: u64,
    flags: u8,
}

fn arb_rec() -> impl Strategy<Value = RecSpec> {
    (
        any::<bool>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        prop_oneof![Just(1u8), Just(6), Just(6), Just(17), Just(47)],
        1u64..=400,
        20u64..=1_500,
        0u8..=0x3f,
    )
        .prop_map(
            |(inside, dst_pick, src, dst_host, dst_port, protocol, packets, size, flags)| RecSpec {
                inside,
                dst_pick,
                src,
                dst_host,
                dst_port,
                protocol,
                packets,
                size,
                flags,
            },
        )
}

fn materialize(specs: &[RecSpec], slots: &Slot24Index) -> Vec<FlowRecord> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let dst = if s.inside && slots.num_slots() > 0 {
                slots
                    .block_of(s.dst_pick % slots.num_slots())
                    .addr(s.dst_host)
            } else {
                Ipv4(s.dst_pick)
            };
            FlowRecord {
                start: SimTime(i as u64),
                src: Ipv4(s.src),
                dst,
                src_port: 40_000,
                dst_port: s.dst_port,
                protocol: s.protocol,
                tcp_flags: s.flags,
                packets: s.packets,
                octets: s.packets * s.size,
            }
        })
        .collect()
}

/// Asserts that two views expose identical observables: totals, block
/// counts, per-block destination and source aggregates (in identical
/// sorted order), and size statistics.
fn assert_views_equal<A: TrafficView, B: TrafficView>(a: &A, b: &B) {
    assert_eq!(a.total_flows(), b.total_flows());
    assert_eq!(a.total_packets(), b.total_packets());
    assert_eq!(a.total_octets(), b.total_octets());
    assert_eq!(a.dst_block_count(), b.dst_block_count());
    assert_eq!(a.src_block_count(), b.src_block_count());
    assert_eq!(a.size_threshold(), b.size_threshold());

    let mut da: Vec<Block24> = a.iter_dst().map(|(blk, _)| blk).collect();
    let mut db: Vec<Block24> = b.iter_dst().map(|(blk, _)| blk).collect();
    da.sort_unstable();
    db.sort_unstable();
    assert_eq!(da, db, "destination block sets differ");
    for &blk in &da {
        let x = a.dst(blk).expect("present in a");
        let y = b.dst(blk).expect("present in b");
        assert_eq!(x.tcp_packets, y.tcp_packets, "{blk}");
        assert_eq!(x.tcp_octets, y.tcp_octets, "{blk}");
        assert_eq!(x.udp_packets, y.udp_packets, "{blk}");
        assert_eq!(x.icmp_packets, y.icmp_packets, "{blk}");
        assert_eq!(x.other_packets, y.other_packets, "{blk}");
        assert_eq!(x.received, y.received, "{blk}");
        assert_eq!(x.received_tcp, y.received_tcp, "{blk}");
        assert_eq!(x.received_big_tcp, y.received_big_tcp, "{blk}");
        assert_eq!(x.avg_tcp_size(), y.avg_tcp_size(), "{blk}");
        assert_eq!(x.median_tcp_size(), y.median_tcp_size(), "{blk}");
        assert_eq!(x.tcp_size_histogram(), y.tcp_size_histogram(), "{blk}");
    }

    let mut sa: Vec<Block24> = a.iter_src().map(|(blk, _)| blk).collect();
    let mut sb: Vec<Block24> = b.iter_src().map(|(blk, _)| blk).collect();
    sa.sort_unstable();
    sb.sort_unstable();
    assert_eq!(sa, sb, "source block sets differ");
    for &blk in &sa {
        assert_eq!(a.src(blk), b.src(blk), "{blk}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The columnar store and the map oracle expose identical contents
    /// over random RIBs and random traffic.
    #[test]
    fn columnar_matches_map_oracle(
        slash20s in proptest::collection::vec(300u16..4_000, 0..12),
        specs in proptest::collection::vec(arb_rec(), 0..120),
    ) {
        let (_, slots) = announced_space(&slash20s);
        let records = materialize(&specs, &slots);
        let map = TrafficStats::from_records(&records);
        let col = ColumnarStats::from_records(Arc::clone(&slots), &records);
        assert_views_equal(&map, &col);
    }

    /// The seven-step pipeline returns bit-identical verdicts (dark,
    /// unclean, gray, and the full funnel) on both backends, flat and
    /// sharded.
    #[test]
    fn pipeline_verdicts_are_bit_identical(
        slash20s in proptest::collection::vec(300u16..4_000, 1..10),
        specs in proptest::collection::vec(arb_rec(), 1..150),
        shards in 1usize..5,
    ) {
        let (rib, slots) = announced_space(&slash20s);
        let records = materialize(&specs, &slots);
        let pc = PipelineConfig::default();

        let map = TrafficStats::from_records(&records);
        let col = ColumnarStats::from_records(Arc::clone(&slots), &records);
        let r_map = pipeline::run(&map, &rib, 15, 1, &pc);
        let r_col = pipeline::run(&col, &rib, 15, 1, &pc);
        prop_assert_eq!(&r_map.dark, &r_col.dark);
        prop_assert_eq!(&r_map.unclean, &r_col.unclean);
        prop_assert_eq!(&r_map.gray, &r_col.gray);
        prop_assert_eq!(&r_map.funnel, &r_col.funnel);

        let engine = PipelineEngine::standard();
        for (layout, threads) in [
            (StatsLayout::Map, 1),
            (StatsLayout::Columnar(Arc::clone(&slots)), 1),
            (StatsLayout::Columnar(Arc::clone(&slots)), 3),
        ] {
            let mut sharded =
                ShardedTrafficStats::with_layout(shards, map.size_threshold(), layout);
            sharded.par_ingest(&records, threads);
            let r = engine.run_sharded(&sharded, &rib, 15, 1, &pc, threads);
            prop_assert_eq!(&r_map.dark, &r.dark);
            prop_assert_eq!(&r_map.unclean, &r.unclean);
            prop_assert_eq!(&r_map.gray, &r.gray);
            prop_assert_eq!(&r_map.funnel, &r.funnel);
        }
    }
}

/// Full-profile smoke: the full-IPv4 announced space (~14M slots) with
/// a reduced day's traffic, columnar vs map, equal pipeline results.
/// Volumes are sized so the test stays debug-feasible; the release-mode
/// day-window run lives in the `columnar` bench and the CI smoke job.
#[test]
fn full_profile_day_window_smoke() {
    let net = Internet::generate(InternetConfig::full(), 9);
    let slots = Arc::new(net.slot_index());
    assert!(
        slots.num_slots() > 13_000_000,
        "full profile announces most of usable IPv4"
    );

    // Synthetic radiation: sources from the whole announced space,
    // destinations concentrated on a 10k-slot window mid-space so the
    // touched blocks accumulate enough volume to clear the pipeline's
    // candidate thresholds (40k flows over 14M blocks would not).
    let n = u64::from(slots.num_slots());
    let dense = 10_000u64.min(n);
    let base = (n - dense) / 2;
    let records: Vec<FlowRecord> = (0..40_000u64)
        .map(|i| {
            let dst_block = slots.block_of((base + mix3(0xf0, i, 1) % dense) as u32);
            let src_block = slots.block_of((mix3(0xf0, i, 2) % n) as u32);
            FlowRecord {
                start: SimTime(i),
                src: src_block.addr((mix3(0xf0, i, 3) & 0xff) as u8),
                dst: dst_block.addr((mix3(0xf0, i, 4) & 0x3f) as u8),
                src_port: 40_000,
                dst_port: (mix3(0xf0, i, 5) % 1024) as u16,
                protocol: if i % 4 == 0 { 17 } else { 6 },
                tcp_flags: 2,
                packets: 1 + i % 3,
                octets: 40 * (1 + i % 3),
            }
        })
        .collect();

    let rib = net.rib(metatelescope::types::Day(0));
    let pc = PipelineConfig::default();
    let engine = PipelineEngine::standard();
    let threads = 3;

    let mut map = ShardedTrafficStats::with_layout(8, 100, StatsLayout::Map);
    map.par_ingest(&records, threads);
    let mut col =
        ShardedTrafficStats::with_layout(8, 100, StatsLayout::Columnar(Arc::clone(&slots)));
    col.par_ingest(&records, threads);

    assert_views_equal(&map, &col);
    let r_map = engine.run_sharded(&map, &rib, 15, 1, &pc, threads);
    let r_col = engine.run_sharded(&col, &rib, 15, 1, &pc, threads);
    assert_eq!(r_map.dark, r_col.dark);
    assert_eq!(r_map.unclean, r_col.unclean);
    assert_eq!(r_map.gray, r_col.gray);
    assert_eq!(r_map.funnel, r_col.funnel);
    assert!(r_map.classified() > 0, "the window must classify blocks");
}
