//! Operational-workflow integration: the pieces an operator running a
//! meta-telescope as a service would chain together — packet-level
//! metering, RIB snapshot persistence, daily stability tracking,
//! federation across operators, and monitor-list compilation.

use metatelescope::core::federate::{federate, Contribution, FederationPolicy};
use metatelescope::core::stability::StabilityTracker;
use metatelescope::core::{combine, eval, pipeline};
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::{FlowKey, FlowMeter, MeteredPacket, TrafficStats};
use metatelescope::netmodel::rib_io;
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Block24Set, Day, SimDuration, SimTime};

fn world() -> (Internet, TrafficConfig) {
    (
        Internet::generate(InternetConfig::small(), 42),
        TrafficConfig::default_profile(),
    )
}

#[test]
fn metered_packets_drive_the_pipeline_like_records_do() {
    // Reconstruct flow records through the RFC 7011 metering cache from
    // synthetic per-packet input and check the pipeline sees the same
    // world as direct record ingestion.
    let mut direct = TrafficStats::new();
    let mut meter = FlowMeter::new(SimDuration::secs(120), SimDuration::secs(30));
    let mut metered_records = Vec::new();
    // Two scanners probing two /24s, one responder talking back.
    let mut packets = Vec::new();
    for t in 0..40u64 {
        let key = FlowKey {
            src: "9.9.9.9".parse().unwrap(),
            dst: format!("20.0.{}.{}", t % 2, 1 + t % 200).parse().unwrap(),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
        };
        packets.push(MeteredPacket {
            time: SimTime(t),
            key,
            tcp_flags: 2,
            length: 40,
        });
    }
    packets.push(MeteredPacket {
        time: SimTime(50),
        key: FlowKey {
            src: "20.0.0.50".parse().unwrap(),
            dst: "9.9.9.9".parse().unwrap(),
            src_port: 23,
            dst_port: 40_000,
            protocol: 6,
        },
        tcp_flags: 0x12,
        length: 44,
    });
    for p in &packets {
        metered_records.extend(meter.observe(p));
    }
    metered_records.extend(meter.drain());
    for r in &metered_records {
        direct.ingest(r);
    }
    // Totals must match the raw packet stream exactly.
    assert_eq!(direct.total_packets, packets.len() as u64);
    let rib = [
        ("20.0.0.0/8".parse().unwrap(), metatelescope::types::Asn(1)),
        ("9.0.0.0/8".parse().unwrap(), metatelescope::types::Asn(2)),
    ]
    .into_iter()
    .collect();
    let result = pipeline::run(&direct, &rib, 1, 1, &pipeline::PipelineConfig::default());
    // 20.0.1.0/24 is clean-dark; 20.0.0.0/24 has the responding host 50
    // → gray; 9.9.9.0/24 is fully originating → dropped.
    assert_eq!(result.dark.len(), 1);
    assert_eq!(result.gray.len(), 1);
}

#[test]
fn rib_snapshots_survive_disk_roundtrips_into_the_pipeline() {
    let (net, cfg) = world();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let mut capture = CaptureSet::new(&net, Day(0), &spoof, DEFAULT_SIZE_THRESHOLD, false);
    generate_day(&net, &cfg, Day(0), &mut capture);
    let ce1 = capture.vantage("CE1").unwrap();

    // Persist the day's RIB as a pfx2as-style dump and reload it.
    let rib = net.rib(Day(0));
    let mut dump = Vec::new();
    rib_io::write_rib(&rib, &mut dump).unwrap();
    let reloaded = rib_io::read_rib(&dump[..]).unwrap();

    let pc = pipeline::PipelineConfig::default();
    let a = pipeline::run(&ce1.stats, &rib, ce1.vp.sampling_rate, 1, &pc);
    let b = pipeline::run(&ce1.stats, &reloaded, ce1.vp.sampling_rate, 1, &pc);
    assert_eq!(a.dark, b.dark);
    assert_eq!(a.funnel, b.funnel);
}

#[test]
fn federation_beats_the_weakest_contributor() {
    let (net, cfg) = world();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let mut capture = CaptureSet::new(&net, Day(0), &spoof, DEFAULT_SIZE_THRESHOLD, false);
    generate_day(&net, &cfg, Day(0), &mut capture);
    let rib = net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();

    let mut contributions = Vec::new();
    let mut worst_precision = 1.0f64;
    for vo in &capture.vantages {
        let r = pipeline::run(&vo.stats, &rib, vo.vp.sampling_rate, 1, &pc);
        let gt = eval::GroundTruthReport::evaluate(&r.dark, &net, Day(0), 1);
        if r.dark.len() > 50 {
            worst_precision = worst_precision.min(gt.precision());
        }
        contributions.push(Contribution {
            operator: vo.vp.code.clone(),
            weight: 1.0,
            inferred: r.dark,
            vetoed: Block24Set::new(),
        });
    }
    let joint = federate(&contributions, &FederationPolicy::default());
    assert!(joint.accepted.len() > 100);
    let gt = eval::GroundTruthReport::evaluate(&joint.accepted, &net, Day(0), 1);
    assert!(
        gt.precision() >= worst_precision,
        "quorum {:.3} should not be worse than the weakest contributor {:.3}",
        gt.precision(),
        worst_precision
    );
}

#[test]
fn stability_tracking_and_monitor_list_compile() {
    let (net, cfg) = world();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let pc = pipeline::PipelineConfig::default();
    let mut tracker = StabilityTracker::new();
    for day in Day(0).range(3) {
        let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
        generate_day(&net, &cfg, day, &mut capture);
        let ce1 = capture.vantage("CE1").unwrap();
        let r = pipeline::run(&ce1.stats, &net.rib(day), ce1.vp.sampling_rate, 1, &pc);
        tracker.record(day, r.dark);
    }
    let stable = tracker.always_inferred();
    assert!(!stable.is_empty());
    assert!(stable.len() <= tracker.stable(2).len());
    assert!(tracker.stable(2).len() <= tracker.stable(1).len());
    // The stable set compiles into a strictly smaller CIDR list
    // (contiguous dark runs exist by construction).
    let cidrs = stable.aggregate();
    assert!(
        cidrs.len() < stable.len(),
        "{} vs {}",
        cidrs.len(),
        stable.len()
    );
    let covered: usize = cidrs.iter().map(|p| p.num_blocks24() as usize).sum();
    assert_eq!(covered, stable.len());
    // Stability costs little precision.
    let gt = eval::GroundTruthReport::evaluate(&stable, &net, Day(0), 3);
    assert!(gt.precision() > 0.9, "precision {:.3}", gt.precision());
}

#[test]
fn parallel_helpers_match_sequential_on_real_capture() {
    let (net, cfg) = world();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let mut capture = CaptureSet::new(&net, Day(0), &spoof, DEFAULT_SIZE_THRESHOLD, false);
    generate_day(&net, &cfg, Day(0), &mut capture);
    let rib = net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let rate = net.vantage_points[0].sampling_rate;

    let stats: Vec<TrafficStats> = capture
        .vantages
        .into_iter()
        .map(|v| v.into_stats())
        .collect();
    let refs: Vec<&TrafficStats> = stats.iter().collect();
    let parallel = combine::run_pipelines_parallel(&refs, &rib, rate, 1, &pc, 2);
    for (s, p) in stats.iter().zip(&parallel) {
        let seq = pipeline::run(s, &rib, rate, 1, &pc);
        assert_eq!(seq.dark, p.dark);
    }
    let merged_par = combine::merge_stats_parallel(stats.clone(), 2);
    let merged_seq = combine::merge_stats(stats);
    assert_eq!(merged_par.total_packets, merged_seq.total_packets);
    assert_eq!(merged_par.dst_block_count(), merged_seq.dst_block_count());
}
