//! Multi-day dynamics: weekend variability (Figure 8), cumulative
//! spoofing decay and its tolerance fix (Figure 9), sub-sampling
//! behaviour (Figure 10), and multi-day telescope coverage (Table 4).

use metatelescope::core::{combine, eval, pipeline, SpoofTolerance};
use metatelescope::flow::sampling::thin_records;
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::{FlowRecord, TrafficStats};
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Block24Set, Day};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (Internet, TrafficConfig) {
    (
        Internet::generate(InternetConfig::small(), 42),
        TrafficConfig::default_profile(),
    )
}

fn day_stats(net: &Internet, cfg: &TrafficConfig, day: Day, code: &str) -> TrafficStats {
    let spoof = SpoofSpace::new(net, cfg.spoof_routed_bias);
    let mut capture = CaptureSet::new(net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
    generate_day(net, cfg, day, &mut capture);
    let idx = capture
        .vantages
        .iter()
        .position(|v| v.vp.code == code)
        .expect("vantage point exists");
    capture.vantages.swap_remove(idx).into_stats()
}

fn dark_of(net: &Internet, stats: &TrafficStats, days_window: (Day, u32), tol: u64) -> Block24Set {
    let rib = combine::rib_union(net, days_window.0, days_window.1);
    pipeline::run(
        stats,
        &rib,
        net.vantage_points[0].sampling_rate,
        days_window.1,
        &pipeline::PipelineConfig {
            spoof_tolerance_packets: tol,
            ..pipeline::PipelineConfig::default()
        },
    )
    .dark
}

#[test]
fn weekend_days_yield_more_meta_telescope_prefixes() {
    // Figure 8 / Section 7.1: quiet offices mean fewer observed
    // originations, so weekend inference finds more candidate prefixes.
    let (net, cfg) = world();
    let wednesday = day_stats(&net, &cfg, Day(2), "CE1");
    let saturday = day_stats(&net, &cfg, Day(5), "CE1");
    let mid = dark_of(&net, &wednesday, (Day(2), 1), 0);
    let sat = dark_of(&net, &saturday, (Day(5), 1), 0);
    assert!(
        sat.len() > mid.len(),
        "Saturday ({}) should beat Wednesday ({})",
        sat.len(),
        mid.len()
    );
}

#[test]
fn cumulative_windows_decay_without_tolerance_and_recover_with_it() {
    // Figure 9: adding days compounds spoofing pollution; the unrouted-
    // space tolerance wins most of it back.
    let (net, cfg) = world();
    let mut merged: Option<TrafficStats> = None;
    let mut strict_series = Vec::new();
    let mut tolerant_series = Vec::new();
    for d in 0..4u32 {
        let s = day_stats(&net, &cfg, Day(d), "CE1");
        match &mut merged {
            None => merged = Some(s),
            Some(m) => m.merge(&s),
        }
        let acc = merged.as_ref().unwrap();
        strict_series.push(dark_of(&net, acc, (Day(0), d + 1), 0).len());
        let tol = SpoofTolerance::estimate(acc, net.unrouted_octets(), 0.9999);
        tolerant_series.push(dark_of(&net, acc, (Day(0), d + 1), tol.packets.max(1)).len());
    }
    assert!(
        strict_series[3] < strict_series[0],
        "strict inference must decay: {strict_series:?}"
    );
    assert!(
        tolerant_series[3] > strict_series[3],
        "tolerance recovers blocks: tolerant {tolerant_series:?} vs strict {strict_series:?}"
    );
    // Tolerance keeps the window usable: at least half of day-1 strict.
    assert!(tolerant_series[3] * 2 >= strict_series[0]);
}

#[test]
fn multi_day_telescope_coverage_grows() {
    // Table 4: a week of data recovers more telescope space than one day
    // (more blocks receive sampled TCP at all, and sampling noise on the
    // volume estimate gets more chances below the cap — here the effect
    // is visibility accumulation).
    let (net, cfg) = world();
    let tus1 = &net.telescopes[0];
    let mut merged: Option<TrafficStats> = None;
    let mut coverage = Vec::new();
    for d in 0..3u32 {
        let s = day_stats(&net, &cfg, Day(d), "NA1");
        match &mut merged {
            None => merged = Some(s),
            Some(m) => m.merge(&s),
        }
        let tol = SpoofTolerance::estimate(merged.as_ref().unwrap(), net.unrouted_octets(), 0.9999);
        let dark = dark_of(
            &net,
            merged.as_ref().unwrap(),
            (Day(0), d + 1),
            tol.packets.max(1),
        );
        let cov = eval::TelescopeCoverage::measure(&dark, tus1, &net, Day(0), d + 1);
        coverage.push(cov.inferred);
    }
    assert!(
        coverage[2] >= coverage[0],
        "coverage should not shrink with more data: {coverage:?}"
    );
}

#[test]
fn subsampling_degrades_inference_gracefully() {
    // Figure 10: thinning the sampled records first loses little (or even
    // helps against spoofing), then collapses the inference entirely.
    let (net, cfg) = world();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    // Collect CE1's records by replaying the sampled aggregation through
    // a record-collecting sink — approximate by thinning synthetic
    // records derived from stats is not possible, so rebuild records
    // directly from the emissions at the VP's sampling rate.
    use metatelescope::flow::Sampler;
    use metatelescope::traffic::{EmissionSink, FlowEmission, SpoofFloodEmission};
    struct Recorder<'a> {
        vp: &'a metatelescope::netmodel::VantagePoint,
        sampler: Sampler<StdRng>,
        out: Vec<FlowRecord>,
    }
    impl EmissionSink for Recorder<'_> {
        fn flow(&mut self, e: &FlowEmission) {
            use metatelescope::traffic::NO_AS;
            if e.sender_as == NO_AS {
                return;
            }
            let visible = if e.dst_as == NO_AS {
                self.vp.sees_src_as(e.sender_as)
            } else {
                self.vp.observes(e.sender_as, e.dst_as)
            };
            if !visible {
                return;
            }
            if let Some(r) = self.sampler.sample(&e.intent) {
                self.out.push(r);
            }
        }
        fn spoof_flood(&mut self, _: &SpoofFloodEmission) {}
    }
    let vp = &net.vantage_points[0];
    let mut rec = Recorder {
        vp,
        sampler: Sampler::new(vp.sampling_rate, StdRng::seed_from_u64(net.seed)),
        out: Vec::new(),
    };
    generate_day(&net, &cfg, Day(0), &mut rec);
    let _ = &spoof;

    let rib = net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let mut series = Vec::new();
    for factor in [1u32, 2, 8, 64, 4096] {
        let thinned = thin_records(&rec.out, factor, &mut StdRng::seed_from_u64(9));
        let stats = TrafficStats::from_records(&thinned);
        let effective_rate = vp.sampling_rate * factor;
        let r = pipeline::run(&stats, &rib, effective_rate, 1, &pc);
        series.push(r.dark.len());
    }
    assert!(series[0] > 100, "baseline inference works: {series:?}");
    assert!(
        series[4] < series[0] / 10,
        "extreme sub-sampling collapses inference: {series:?}"
    );
    // Moderate thinning must not collapse.
    assert!(series[1] > series[0] / 3, "{series:?}");
}
