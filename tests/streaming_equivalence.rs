//! End-to-end streaming/batch equivalence: seven simulated days of
//! vantage-point traffic, exported as per-exporter IPFIX byte streams
//! and fed through the `mt-stream` stack, must produce per-window and
//! combined pipeline results bit-identical to batch `run_sharded` over
//! the same records — including when each day's records arrive shuffled
//! (out of order within the allowed lateness).

use metatelescope::core::combine;
use metatelescope::core::pipeline::{PipelineConfig, PipelineResult};
use metatelescope::core::PipelineEngine;
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::{FlowRecord, ShardedTrafficStats};
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::stream::{OverflowPolicy, StreamConfig, StreamOutput, StreamService};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Day, SimDuration};
use metatelescope::wire::ipfix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::OnceLock;

const DAYS: u32 = 7;
const CHUNK: usize = 1460;

/// The generated scenario, shared by every test in this file: the world
/// plus seven days of per-exporter sampled records.
struct Fixture {
    net: Internet,
    /// `days[d]` = per-exporter `(code, records)` for `Day(d)`.
    days: Vec<Vec<(String, Vec<FlowRecord>)>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = Internet::generate(InternetConfig::small(), 11);
        let cfg = TrafficConfig::test_profile();
        let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
        let days = (0..DAYS)
            .map(|d| {
                let day = Day(d);
                let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
                capture.retain_all_records();
                generate_day(&net, &cfg, day, &mut capture);
                capture
                    .vantages
                    .into_iter()
                    .map(|mut vo| (vo.vp.code.clone(), vo.records.take().unwrap_or_default()))
                    .collect()
            })
            .collect();
        Fixture { net, days }
    })
}

fn sampling_rate(net: &Internet) -> u32 {
    net.vantage_points[0].sampling_rate
}

/// Streams the given per-day per-exporter record sets through a
/// `StreamService`, interleaving exporters in transport-sized chunks.
fn stream(
    net: &Internet,
    days: &[Vec<(String, Vec<FlowRecord>)>],
    ingest_threads: usize,
) -> StreamOutput {
    let mut svc = StreamService::start(
        StreamConfig {
            ingest_threads,
            sampling_rate: sampling_rate(net),
            overflow: OverflowPolicy::Block,
            allowed_lateness: SimDuration::hours(2),
            ..StreamConfig::default()
        },
        |day| net.rib(day),
    );
    let mut sequences: HashMap<String, u32> = HashMap::new();
    for (d, per_vp) in days.iter().enumerate() {
        let streams: Vec<(&str, Vec<u8>)> = per_vp
            .iter()
            .map(|(code, records)| {
                let flows: Vec<ipfix::IpfixFlow> =
                    records.iter().map(FlowRecord::to_ipfix).collect();
                let seq = sequences.entry(code.clone()).or_insert(0);
                let bytes = ipfix::encode_messages(&flows, d as u32 * 86_400, 1, seq, 64)
                    .into_iter()
                    .flatten()
                    .collect();
                (code.as_str(), bytes)
            })
            .collect();
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut progressed = false;
            for (i, (code, bytes)) in streams.iter().enumerate() {
                if cursors[i] < bytes.len() {
                    let end = (cursors[i] + CHUNK).min(bytes.len());
                    svc.push_chunk(code, &bytes[cursors[i]..end]);
                    cursors[i] = end;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    svc.finish()
}

fn assert_results_equal(a: &PipelineResult, b: &PipelineResult, what: &str) {
    assert_eq!(a.dark, b.dark, "{what}: dark sets differ");
    assert_eq!(a.unclean, b.unclean, "{what}: unclean sets differ");
    assert_eq!(a.gray, b.gray, "{what}: gray sets differ");
    assert_eq!(a.funnel, b.funnel, "{what}: funnels differ");
}

/// Batch reference for one day: plain ingest of the day's records and
/// one sharded pipeline run against the day's RIB.
fn batch_window(net: &Internet, day: Day, records: &[FlowRecord]) -> PipelineResult {
    let stats = ShardedTrafficStats::from_records(StreamConfig::default().num_shards, records);
    PipelineEngine::standard().run_sharded(
        &stats,
        &net.rib(day),
        sampling_rate(net),
        1,
        &PipelineConfig::default(),
        2,
    )
}

#[test]
fn seven_day_stream_matches_batch() {
    let fx = fixture();
    let out = stream(&fx.net, &fx.days, 3);

    assert_eq!(out.windows.len(), DAYS as usize);
    assert_eq!(out.dropped_late, 0, "in-order arrival drops nothing");
    assert_eq!(out.dropped_backpressure, 0, "Block policy sheds nothing");
    for e in &out.exporters {
        assert_eq!(e.decode_errors, 0, "clean streams for {}", e.name);
    }

    // Every window equals a batch run over that day's records.
    let mut merged: Option<ShardedTrafficStats> = None;
    for (d, w) in out.windows.iter().enumerate() {
        assert_eq!(w.day, Day(d as u32), "windows close in day order");
        let records: Vec<FlowRecord> = fx.days[d]
            .iter()
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        assert_eq!(w.records, records.len() as u64);
        let batch = batch_window(&fx.net, w.day, &records);
        assert_results_equal(&w.result, &batch, &format!("day {d} window"));

        let stats = ShardedTrafficStats::from_records(StreamConfig::default().num_shards, &records);
        match &mut merged {
            None => merged = Some(stats),
            Some(m) => m.merge(&stats),
        }
    }

    // The final combined result equals the batch multi-day combination.
    let batch_combined = PipelineEngine::standard().run_sharded(
        merged.as_ref().unwrap(),
        &combine::rib_union(&fx.net, Day(0), DAYS),
        sampling_rate(&fx.net),
        DAYS,
        &PipelineConfig::default(),
        2,
    );
    let fin = out.combined.last().unwrap();
    assert_eq!(fin.first, Day(0));
    assert_eq!(fin.days, DAYS);
    assert_results_equal(&fin.result, &batch_combined, "7-day combined");

    // The unified health document ties the whole run together. After a
    // quiescent finish every decoded record is accounted for exactly
    // once, and nothing is still in flight.
    out.health.check_invariants().expect("health invariants");
    assert_eq!(out.health.in_flight, 0, "finish drained the queue");
    assert_eq!(out.health.ingested, out.health.on_time + out.health.late);
    assert_eq!(
        out.health.decoded,
        out.health.ingested + out.health.dropped_late,
        "decoded = ingested + dropped (nothing shed or rejected here)"
    );

    // And the registry mirrors the legacy funnels: summing every run's
    // funnel (one per window close, one per combined refresh) must give
    // exactly the mt_pipeline_* counters the engine published.
    let snap = out.registry.snapshot();
    let runs = (out.windows.len() + out.combined.len()) as u64;
    assert_eq!(snap.scalar("mt_pipeline_runs_total", &[]), Some(runs));
    let mut entered: HashMap<String, u64> = HashMap::new();
    let mut kept: HashMap<String, u64> = HashMap::new();
    let funnels = out
        .windows
        .iter()
        .map(|w| &w.result.funnel)
        .chain(out.combined.iter().map(|c| &c.result.funnel));
    for funnel in funnels {
        for s in funnel.stages() {
            *entered.entry(s.name.clone()).or_insert(0) += s.entered;
            *kept.entry(s.name.clone()).or_insert(0) += s.kept;
        }
    }
    for (stage, want) in &entered {
        assert_eq!(
            snap.scalar("mt_pipeline_stage_entered_total", &[("stage", stage)]),
            Some(*want),
            "registry entered counter for stage {stage} matches batch funnels"
        );
    }
    for (stage, want) in &kept {
        assert_eq!(
            snap.scalar("mt_pipeline_stage_kept_total", &[("stage", stage)]),
            Some(*want),
            "registry kept counter for stage {stage} matches batch funnels"
        );
    }
}

#[test]
fn shuffled_arrival_within_lateness_matches_batch() {
    let fx = fixture();
    let mut rng = StdRng::seed_from_u64(97);

    // Shuffle each exporter's records within each day (Fisher–Yates):
    // arrival order scrambles, event times stay in the day, so every
    // record lands inside the allowed lateness of a still-open window.
    let days: Vec<Vec<(String, Vec<FlowRecord>)>> = fx
        .days
        .iter()
        .map(|per_vp| {
            per_vp
                .iter()
                .map(|(code, records)| {
                    let mut shuffled = records.clone();
                    for i in (1..shuffled.len()).rev() {
                        let j = rng.random_range(0..i + 1);
                        shuffled.swap(i, j);
                    }
                    (code.clone(), shuffled)
                })
                .collect()
        })
        .collect();

    let out = stream(&fx.net, &days, 2);
    assert!(out.late > 0, "shuffling produced out-of-order records");
    assert_eq!(out.dropped_late, 0, "all inside the lateness bound");

    assert_eq!(out.windows.len(), DAYS as usize);
    for (d, w) in out.windows.iter().enumerate() {
        let records: Vec<FlowRecord> = fx.days[d]
            .iter()
            .flat_map(|(_, r)| r.iter().copied())
            .collect();
        assert_eq!(w.records, records.len() as u64, "day {d} lost nothing");
        let batch = batch_window(&fx.net, w.day, &records);
        assert_results_equal(&w.result, &batch, &format!("shuffled day {d}"));
    }
}

#[test]
fn straggler_past_lateness_is_dropped_not_misfiled() {
    let fx = fixture();
    let out_clean = stream(&fx.net, &fx.days[..2], 2);

    // Re-run with a day-0 record appended to the *day-1* stream of the
    // first exporter: by then day 0's window has closed, so the record
    // must be dropped and counted — never folded into day 1.
    let mut days: Vec<Vec<(String, Vec<FlowRecord>)>> = fx.days[..2].to_vec();
    let straggler = days[0][0].1[0];
    let code = days[0][0].0.clone();
    days[1]
        .iter_mut()
        .find(|(c, _)| *c == code)
        .expect("exporter present on both days")
        .1
        .push(straggler);

    let out = stream(&fx.net, &days, 2);
    assert_eq!(out.dropped_late, 1, "the straggler was dropped");
    out.health.check_invariants().expect("health invariants");
    assert_eq!(
        out.health.dropped_late, 1,
        "the drop shows in the health document"
    );
    assert_eq!(
        out.windows[1].records, out_clean.windows[1].records,
        "day 1's window did not absorb the stray day-0 record"
    );
    assert_results_equal(
        &out.windows[1].result,
        &out_clean.windows[1].result,
        "day 1 with straggler",
    );
}
