//! The results-store keystone invariant: a multi-day summary
//! reconstructed by loading and merging persisted window files is
//! bit-identical to the in-process multi-day combination.
//!
//! The chain under test: the stream scheduler closes day windows and a
//! window sink persists each one through `mt-store` (columnar export →
//! delta-coded codec → checksummed file) while incrementally merging
//! the running summary. Afterwards everything is re-read from disk
//! cold: every window file must decode to exactly what was written,
//! the re-merged summary must equal the persisted one byte for byte,
//! the traffic stats rebuilt from the merged columns must be
//! observationally identical to a batch accumulator over the same
//! records, and re-running the pipeline over those rebuilt stats must
//! reproduce the streaming run's final combined verdicts exactly.

use metatelescope::core::combine;
use metatelescope::core::pipeline::{PipelineConfig, PipelineResult};
use metatelescope::core::PipelineEngine;
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::{FlowRecord, ShardedTrafficStats, TrafficView};
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::store::{
    QueryIndex, ResultsStore, StoreConfig, SummaryData, Verdicts, WindowData,
};
use metatelescope::stream::{OverflowPolicy, StreamConfig, StreamService};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Block24, Day, RibIndex, SimDuration, Slot24Index};
use metatelescope::wire::ipfix;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const DAYS: u32 = 4;
const CHUNK: usize = 1460;

fn temp_store_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mt-store-equivalence-{}", std::process::id()))
}

/// Observational equality through the `TrafficView` trait: totals,
/// block sets, per-block destination and source aggregates, and size
/// histograms.
fn assert_views_equal<A: TrafficView, B: TrafficView>(a: &A, b: &B, what: &str) {
    assert_eq!(a.total_flows(), b.total_flows(), "{what}: total flows");
    assert_eq!(
        a.total_packets(),
        b.total_packets(),
        "{what}: total packets"
    );
    assert_eq!(a.total_octets(), b.total_octets(), "{what}: total octets");
    assert_eq!(a.size_threshold(), b.size_threshold(), "{what}: threshold");
    assert_eq!(
        a.dst_block_count(),
        b.dst_block_count(),
        "{what}: dst blocks"
    );
    assert_eq!(
        a.src_block_count(),
        b.src_block_count(),
        "{what}: src blocks"
    );

    let mut da: Vec<Block24> = a.iter_dst().map(|(blk, _)| blk).collect();
    let mut db: Vec<Block24> = b.iter_dst().map(|(blk, _)| blk).collect();
    da.sort_unstable();
    db.sort_unstable();
    assert_eq!(da, db, "{what}: destination block sets differ");
    for &blk in &da {
        let x = a.dst(blk).expect("present in a");
        let y = b.dst(blk).expect("present in b");
        assert_eq!(x.tcp_packets, y.tcp_packets, "{what}: {blk}");
        assert_eq!(x.tcp_octets, y.tcp_octets, "{what}: {blk}");
        assert_eq!(x.udp_packets, y.udp_packets, "{what}: {blk}");
        assert_eq!(x.icmp_packets, y.icmp_packets, "{what}: {blk}");
        assert_eq!(x.other_packets, y.other_packets, "{what}: {blk}");
        assert_eq!(x.received, y.received, "{what}: {blk}");
        assert_eq!(x.received_tcp, y.received_tcp, "{what}: {blk}");
        assert_eq!(x.received_big_tcp, y.received_big_tcp, "{what}: {blk}");
        assert_eq!(
            x.tcp_size_histogram(),
            y.tcp_size_histogram(),
            "{what}: {blk} sizes"
        );
    }
    let mut sa: Vec<Block24> = a.iter_src().map(|(blk, _)| blk).collect();
    let mut sb: Vec<Block24> = b.iter_src().map(|(blk, _)| blk).collect();
    sa.sort_unstable();
    sb.sort_unstable();
    assert_eq!(sa, sb, "{what}: source block sets differ");
    for &blk in &sa {
        let x = a.src(blk).expect("present in a");
        let y = b.src(blk).expect("present in b");
        assert_eq!(x.packets, y.packets, "{what}: {blk}");
        assert_eq!(x.originating, y.originating, "{what}: {blk}");
    }
}

fn assert_results_equal(a: &PipelineResult, b: &PipelineResult, what: &str) {
    assert_eq!(a.dark, b.dark, "{what}: dark sets differ");
    assert_eq!(a.unclean, b.unclean, "{what}: unclean sets differ");
    assert_eq!(a.gray, b.gray, "{what}: gray sets differ");
    assert_eq!(a.funnel, b.funnel, "{what}: funnels differ");
}

#[test]
fn persisted_windows_remerge_to_the_inprocess_combination() {
    // --- the world and its traffic -----------------------------------
    let net = Internet::generate(InternetConfig::small(), 23);
    let cfg = TrafficConfig::test_profile();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let sampling = net.vantage_points[0].sampling_rate;
    let days: Vec<Vec<(String, Vec<FlowRecord>)>> = (0..DAYS)
        .map(|d| {
            let day = Day(d);
            let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
            capture.retain_all_records();
            generate_day(&net, &cfg, day, &mut capture);
            capture
                .vantages
                .into_iter()
                .map(|mut vo| (vo.vp.code.clone(), vo.records.take().unwrap_or_default()))
                .collect()
        })
        .collect();

    // The multi-day combination is keyed by the union RIB's slot space.
    let union_trie = combine::rib_union(&net, Day(0), DAYS);
    let slots = Arc::new(Slot24Index::build(&RibIndex::build(&union_trie)));

    let dir = temp_store_dir();
    std::fs::remove_dir_all(&dir).ok();
    let store = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: Arc::clone(&slots),
    })
    .expect("open store");

    // --- stream with a persisting window sink ------------------------
    let mut svc = StreamService::start(
        StreamConfig {
            ingest_threads: 2,
            sampling_rate: sampling,
            overflow: OverflowPolicy::Block,
            allowed_lateness: SimDuration::hours(2),
            ..StreamConfig::default()
        },
        |day| net.rib(day),
    );
    let live_summary = Arc::new(Mutex::new(SummaryData::empty()));
    {
        let slots = Arc::clone(&slots);
        let live_summary = Arc::clone(&live_summary);
        svc.set_window_sink(Box::new(move |w| {
            let verdicts = Verdicts::from_result(w.window, &slots);
            let wd = WindowData::build(w.day, w.records, w.stats, verdicts, w.ports, &slots);
            store.write_window(&wd).expect("persist window");
            let mut summary = live_summary.lock().expect("summary lock"); // lock: test.summary
            summary.merge_window(&wd).expect("incremental merge");
            summary.set_verdicts(Verdicts::from_result(w.combined, &slots));
            store.write_summary(&summary).expect("persist summary");
        }));
    }
    let mut sequences: HashMap<String, u32> = HashMap::new();
    for (d, per_vp) in days.iter().enumerate() {
        for (code, records) in per_vp {
            let flows: Vec<ipfix::IpfixFlow> = records.iter().map(FlowRecord::to_ipfix).collect();
            let seq = sequences.entry(code.clone()).or_insert(0);
            let bytes: Vec<u8> = ipfix::encode_messages(&flows, d as u32 * 86_400, 1, seq, 64)
                .into_iter()
                .flatten()
                .collect();
            for chunk in bytes.chunks(CHUNK) {
                svc.push_chunk(code, chunk);
            }
        }
    }
    let out = svc.finish();
    assert_eq!(out.windows.len(), DAYS as usize);
    assert_eq!(out.dropped_late, 0);
    let final_combined = &out.combined.last().expect("combined refreshes").result;

    // --- cold re-read: every window decodes to what was written ------
    let store = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: Arc::clone(&slots),
    })
    .expect("reopen store");
    let persisted_days = store.window_days().expect("scan windows");
    assert_eq!(
        persisted_days,
        (0..DAYS).map(Day).collect::<Vec<_>>(),
        "one file per closed day"
    );

    let mut remerged = SummaryData::empty();
    for (d, w) in out.windows.iter().enumerate() {
        let wd = store.read_window(Day(d as u32)).expect("window reads back");
        assert_eq!(wd.day, w.day);
        assert_eq!(wd.records, w.records, "day {d}: persisted record count");
        // The persisted verdict lists are exactly the window's pipeline
        // result, split over the union slot space.
        assert_eq!(
            wd.verdicts,
            Verdicts::from_result(&w.result, &slots),
            "day {d}: persisted verdicts"
        );
        let (dark, unclean, gray) = wd.verdicts.to_sets(&slots);
        assert_eq!(dark, w.result.dark, "day {d}: dark set round-trips");
        assert_eq!(
            unclean, w.result.unclean,
            "day {d}: unclean set round-trips"
        );
        assert_eq!(gray, w.result.gray, "day {d}: gray set round-trips");
        remerged.merge_window(&wd).expect("re-merge from disk");
    }
    remerged.set_verdicts(Verdicts::from_result(final_combined, &slots));

    // --- the keystone: disk-remerged == in-process, bit for bit ------
    let live = live_summary.lock().expect("summary lock"); // lock: test.summary
    assert_eq!(
        remerged, *live,
        "summary re-merged from persisted windows differs from the in-process one"
    );
    let persisted = store
        .read_summary()
        .expect("summary reads back")
        .expect("summary was written");
    assert_eq!(persisted, *live, "persisted summary differs");
    drop(live);

    // The rebuilt accumulator is observationally identical to a batch
    // accumulator over every record of every day.
    let all_records: Vec<FlowRecord> = days
        .iter()
        .flat_map(|per_vp| per_vp.iter().flat_map(|(_, r)| r.iter().copied()))
        .collect();
    let batch = ShardedTrafficStats::from_records(StreamConfig::default().num_shards, &all_records);
    let restored = remerged.to_stats(&slots);
    assert_views_equal(&restored, &batch, "restored stats vs batch");

    // Re-running the pipeline over the restored stats reproduces the
    // streaming run's final multi-day combination exactly.
    let rerun = PipelineEngine::standard().run(
        &restored,
        &union_trie,
        sampling,
        DAYS,
        &PipelineConfig::default(),
    );
    assert_results_equal(&rerun, final_combined, "pipeline over restored stats");

    // Merged ports are the whole fleet's destination-port histogram.
    let mut expected_ports: HashMap<u16, u64> = HashMap::new();
    for r in &all_records {
        *expected_ports.entry(r.dst_port).or_insert(0) += r.packets;
    }
    let mut expected_ports: Vec<(u16, u64)> = expected_ports.into_iter().collect();
    expected_ports.sort_unstable();
    assert_eq!(remerged.ports, expected_ports, "summary port histogram");

    // --- the query cache serves the same truth -----------------------
    let (index, cold) = QueryIndex::cold_load(&store).expect("cold load");
    assert_eq!(cold.windows, DAYS as usize);
    assert_eq!(index.summary(), &persisted);
    if let Some(block) = final_combined.dark.iter().next() {
        let report = index.point(block.base());
        assert_eq!(report.verdict, "dark", "known dark block answers dark");
        assert_eq!(report.windows, DAYS);
        // First-dark day: the earliest window whose dark set holds it.
        let first = out
            .windows
            .iter()
            .find(|w| w.result.dark.contains(block))
            .map(|w| w.day.0);
        assert_eq!(report.since_day, first, "since-day matches the windows");
    }
    let report = index
        .range(Day(0), Block24(0), Block24(0x00ff_ffff))
        .expect("day 0 is cached");
    let w0 = &out.windows[0].result;
    assert_eq!(
        report.total,
        w0.dark.len() + w0.unclean.len() + w0.gray.len(),
        "full-space range scan covers every day-0 verdict"
    );

    std::fs::remove_dir_all(&dir).ok();
}
