//! Socket/batch equivalence: the same generated traffic delivered to
//! the `mt-serve` daemon over real loopback sockets (UDP datagrams and
//! TCP streams, mixed) must produce per-window and combined pipeline
//! results bit-identical to a batch `run_sharded` over the same
//! records. The event loop, the wire round-trip, and the kernel in the
//! middle must all be invisible to the verdicts — at every event-loop
//! count: the run is repeated with 1, 2, and 4 `SO_REUSEPORT`-sharded
//! ingest loops and pinned against the same batch reference.

use metatelescope::core::combine;
use metatelescope::core::pipeline::{PipelineConfig, PipelineResult};
use metatelescope::core::PipelineEngine;
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::flow::{FlowRecord, ShardedTrafficStats};
use metatelescope::netmodel::{Internet, InternetConfig};
use metatelescope::serve::{Daemon, ServeConfig};
use metatelescope::stream::{HealthSnapshot, OverflowPolicy, StreamConfig, StreamOutput};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Day, SimDuration};
use metatelescope::wire::ipfix;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

const DAYS: u32 = 3;
const LOOP_COUNTS: [usize; 3] = [1, 2, 4];

fn assert_results_equal(a: &PipelineResult, b: &PipelineResult, what: &str) {
    assert_eq!(a.dark, b.dark, "{what}: dark sets differ");
    assert_eq!(a.unclean, b.unclean, "{what}: unclean sets differ");
    assert_eq!(a.gray, b.gray, "{what}: gray sets differ");
    assert_eq!(a.funnel, b.funnel, "{what}: funnels differ");
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut sock = TcpStream::connect(addr).expect("connect http");
    sock.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = Vec::new();
    sock.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf8 response");
    match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_owned(),
        None => String::new(),
    }
}

fn await_decoded(http: SocketAddr, want: u64) {
    for _ in 0..2000 {
        let health: HealthSnapshot =
            serde_json::from_str(&http_get(http, "/health")).expect("health json");
        if health.decoded >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never decoded {want} records");
}

/// Delivers the pre-generated days over real sockets to a daemon with
/// `loops` ingest event loops and returns its quiescent output.
fn socket_run(
    days: &[Vec<(String, Vec<FlowRecord>)>],
    net: &Arc<Internet>,
    rate: u32,
    loops: usize,
) -> StreamOutput {
    let rib_net = Arc::clone(net);
    let daemon = Daemon::bind(
        ServeConfig {
            event_loops: loops,
            stream: StreamConfig {
                ingest_threads: 2,
                sampling_rate: rate,
                overflow: OverflowPolicy::Block,
                allowed_lateness: SimDuration::hours(2),
                ..StreamConfig::default()
            },
            ..ServeConfig::default()
        },
        move |day| rib_net.rib(day),
    )
    .expect("bind daemon");
    assert_eq!(daemon.event_loops(), loops, "requested loop count sticks");
    let udp_to = daemon.udp_addr().expect("udp on");
    let tcp_to = daemon.tcp_addr().expect("tcp on");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    // Exporters alternate transports and keep one socket for the whole
    // run, so each exporter's traffic lands on one kernel-chosen event
    // loop (UDP: stable 4-tuple hash; TCP: pinned to the accepting
    // loop); days go out day-major with a decode barrier between days
    // so the watermark never closes a window with records still in a
    // kernel buffer (a real fleet is paced by wall-clock days).
    let mut transports: HashMap<String, Result<UdpSocket, TcpStream>> = HashMap::new();
    let mut sequences: HashMap<String, u32> = HashMap::new();
    let mut sent = 0u64;
    for (d, per_vp) in days.iter().enumerate() {
        for (i, (code, records)) in per_vp.iter().enumerate() {
            let flows: Vec<ipfix::IpfixFlow> = records.iter().map(FlowRecord::to_ipfix).collect();
            let seq = sequences.entry(code.clone()).or_insert(0);
            let messages = ipfix::encode_messages(&flows, d as u32 * 86_400, i as u32, seq, 64);
            let transport = transports.entry(code.clone()).or_insert_with(|| {
                if i % 2 == 0 {
                    Ok(UdpSocket::bind(("127.0.0.1", 0)).expect("bind exporter"))
                } else {
                    Err(TcpStream::connect(tcp_to).expect("connect exporter"))
                }
            });
            match transport {
                Ok(sock) => {
                    for msg in &messages {
                        sock.send_to(msg, udp_to).expect("send datagram");
                    }
                }
                Err(sock) => {
                    for msg in &messages {
                        sock.write_all(msg).expect("send stream");
                    }
                }
            }
            sent += records.len() as u64;
        }
        await_decoded(http, sent);
    }
    for transport in transports.values_mut() {
        if let Err(sock) = transport {
            sock.shutdown(std::net::Shutdown::Write)
                .expect("close write half");
        }
    }
    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.event_loops, loops);
    out.stream
}

#[test]
fn socket_delivery_matches_batch_bit_for_bit_at_every_loop_count() {
    let net = Arc::new(Internet::generate(InternetConfig::small(), 23));
    let cfg = TrafficConfig::test_profile();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let rate = net.vantage_points[0].sampling_rate;

    // Three days of per-exporter records, generated up front so the
    // batch reference and every socket run see identical inputs.
    let days: Vec<Vec<(String, Vec<FlowRecord>)>> = (0..DAYS)
        .map(|d| {
            let day = Day(d);
            let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
            capture.retain_all_records();
            generate_day(&net, &cfg, day, &mut capture);
            capture
                .vantages
                .into_iter()
                .map(|mut vo| (vo.vp.code.clone(), vo.records.take().unwrap_or_default()))
                .collect()
        })
        .collect();
    let total: u64 = days
        .iter()
        .flat_map(|per_vp| per_vp.iter().map(|(_, r)| r.len() as u64))
        .sum();

    // The batch reference, computed once: per-day window results and
    // the multi-day combination.
    let mut merged: Option<ShardedTrafficStats> = None;
    let mut batch_windows = Vec::new();
    for (d, per_vp) in days.iter().enumerate() {
        let records: Vec<FlowRecord> = per_vp.iter().flat_map(|(_, r)| r.iter().copied()).collect();
        let stats = ShardedTrafficStats::from_records(StreamConfig::default().num_shards, &records);
        let batch = PipelineEngine::standard().run_sharded(
            &stats,
            &net.rib(Day(d as u32)),
            rate,
            1,
            &PipelineConfig::default(),
            2,
        );
        batch_windows.push((records.len() as u64, batch));
        match &mut merged {
            None => merged = Some(stats),
            Some(m) => m.merge(&stats),
        }
    }
    let batch_combined = PipelineEngine::standard().run_sharded(
        merged.as_ref().expect("at least one day"),
        &combine::rib_union(&net, Day(0), DAYS),
        rate,
        DAYS,
        &PipelineConfig::default(),
        2,
    );

    for loops in LOOP_COUNTS {
        let out = socket_run(&days, &net, rate, loops);

        assert_eq!(
            out.health.decoded, total,
            "every record crossed the wire at {loops} loops"
        );
        assert_eq!(out.dropped_late, 0, "{loops} loops");
        assert_eq!(out.dropped_backpressure, 0, "{loops} loops");
        for e in &out.exporters {
            assert_eq!(
                e.decode_errors, 0,
                "clean transport for {} at {loops} loops",
                e.name
            );
        }
        out.health.check_invariants().expect("final ledger");

        // Every window equals the batch run over that day's records,
        // and the final combined result equals the batch multi-day
        // combination — no matter how many loops split the sockets.
        assert_eq!(out.windows.len(), DAYS as usize);
        for (d, w) in out.windows.iter().enumerate() {
            assert_eq!(w.day, Day(d as u32), "windows close in day order");
            let (n_records, batch) = &batch_windows[d];
            assert_eq!(w.records, *n_records, "{loops} loops");
            assert_results_equal(
                &w.result,
                batch,
                &format!("day {d} window over sockets at {loops} loops"),
            );
        }
        let fin = out.combined.last().expect("combined result");
        assert_eq!((fin.first, fin.days), (Day(0), DAYS));
        assert_results_equal(
            &fin.result,
            &batch_combined,
            &format!("combined over sockets at {loops} loops"),
        );
    }
}
