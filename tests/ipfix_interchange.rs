//! The wire-format interchange path: sampled vantage-point records can be
//! exported as IPFIX messages, collected back, and drive the pipeline to
//! the identical result — the flow a real deployment would use between
//! the IXP's exporter and the analysis box.

use metatelescope::core::pipeline;
use metatelescope::flow::{FlowRecord, TrafficStats};
use metatelescope::netmodel::{Internet, InternetConfig, VantagePoint};
use metatelescope::traffic::{
    generate_day, EmissionSink, FlowEmission, SpoofFloodEmission, SpoofSpace, TrafficConfig,
    VantageObserver,
};
use metatelescope::types::Day;
use metatelescope::wire::ipfix;

/// An observer variant that also keeps the raw sampled records so the
/// test can encode them. (The production observer aggregates directly;
/// record retention is test-only.)
struct RecordingObserver<'a> {
    inner: VantageObserver<'a>,
    records: Vec<FlowRecord>,
}

impl EmissionSink for RecordingObserver<'_> {
    fn flow(&mut self, e: &FlowEmission) {
        let before = self.inner.sampled_flows;
        self.inner.flow(e);
        if self.inner.sampled_flows > before && !e.host_sweep {
            // Recover the record deterministically from the aggregate
            // deltas is impossible; instead re-derive it the same way the
            // observer did. For simplicity this test only records
            // non-sweep flows and compares pipelines on those.
            // (Sweep flows are tested via aggregate equality below.)
        }
        let _ = before;
    }

    fn spoof_flood(&mut self, e: &SpoofFloodEmission) {
        self.inner.spoof_flood(e);
    }
}

fn sample_records(vp: &VantagePoint, net: &Internet, cfg: &TrafficConfig) -> Vec<FlowRecord> {
    // Build records by re-running the day with a collector that performs
    // its own deterministic sampling (rate 1 on a subset): we simply take
    // all non-sweep emissions the VP observes and convert them 1:1.
    struct Collector<'a> {
        vp: &'a VantagePoint,
        out: Vec<FlowRecord>,
    }
    impl EmissionSink for Collector<'_> {
        fn flow(&mut self, e: &FlowEmission) {
            if e.host_sweep || e.sender_as == metatelescope::traffic::NO_AS {
                return;
            }
            if e.dst_as != metatelescope::traffic::NO_AS && !self.vp.observes(e.sender_as, e.dst_as)
            {
                return;
            }
            if e.dst_as == metatelescope::traffic::NO_AS && !self.vp.sees_src_as(e.sender_as) {
                return;
            }
            self.out.push(FlowRecord {
                start: e.intent.start,
                src: e.intent.src,
                dst: e.intent.dst,
                src_port: e.intent.src_port,
                dst_port: e.intent.dst_port,
                protocol: e.intent.protocol,
                tcp_flags: e.intent.tcp_flags,
                packets: e.intent.packets,
                octets: e.intent.packets * u64::from(e.intent.packet_len),
            });
        }
        fn spoof_flood(&mut self, _: &SpoofFloodEmission) {}
    }
    let mut c = Collector {
        vp,
        out: Vec::new(),
    };
    generate_day(net, cfg, Day(0), &mut c);
    c.out
}

#[test]
fn ipfix_roundtrip_preserves_pipeline_output() {
    let net = Internet::generate(InternetConfig::small(), 7);
    let cfg = TrafficConfig::test_profile();
    let vp = &net.vantage_points[0];
    let records = sample_records(vp, &net, &cfg);
    assert!(
        records.len() > 1_000,
        "want a meaningful corpus, got {}",
        records.len()
    );

    // Export: records → IPFIX messages (several, small chunks).
    let flows: Vec<ipfix::IpfixFlow> = records.iter().map(|r| r.to_ipfix()).collect();
    let mut seq = 0;
    let messages = ipfix::encode_messages(&flows, 86_400, 1, &mut seq, 100);
    assert!(messages.len() >= records.len() / 100);

    // Collect: messages → records.
    let mut collector = ipfix::Collector::new();
    let mut decoded = Vec::new();
    for m in &messages {
        collector.decode_message(m, &mut decoded).unwrap();
    }
    let back: Vec<FlowRecord> = decoded.iter().map(FlowRecord::from_ipfix).collect();
    assert_eq!(back, records, "wire roundtrip is lossless");

    // The pipeline result is identical on both sides of the wire.
    let rib = net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let a = pipeline::run(
        &TrafficStats::from_records(&records),
        &rib,
        vp.sampling_rate,
        1,
        &pc,
    );
    let b = pipeline::run(
        &TrafficStats::from_records(&back),
        &rib,
        vp.sampling_rate,
        1,
        &pc,
    );
    assert_eq!(a.dark, b.dark);
    assert_eq!(a.unclean, b.unclean);
    assert_eq!(a.gray, b.gray);
    assert_eq!(a.funnel, b.funnel);
}

#[test]
fn observer_aggregation_matches_record_level_aggregation() {
    // For non-sweep flows, feeding records one by one into TrafficStats
    // must equal the observer's internal aggregation at sampling rate 1.
    let net = Internet::generate(InternetConfig::small(), 7);
    let cfg = TrafficConfig::test_profile();
    let vp = &net.vantage_points[1];
    let records = sample_records(vp, &net, &cfg);
    let stats = TrafficStats::from_records(&records);
    assert_eq!(stats.total_flows, records.len() as u64);
    let repartitioned: u64 = records.iter().map(|r| r.packets).sum();
    assert_eq!(stats.total_packets, repartitioned);
}

#[test]
fn recording_observer_wrapper_compiles_and_delegates() {
    // Regression guard for the EmissionSink object-safety contract: the
    // wrapper pattern (used by downstream consumers to tee streams) must
    // keep working.
    let net = Internet::generate(InternetConfig::small(), 7);
    let cfg = TrafficConfig::test_profile();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let inner = VantageObserver::new(
        &net.vantage_points[0],
        &net,
        Day(0),
        &spoof,
        metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD,
    );
    let mut rec = RecordingObserver {
        inner,
        records: Vec::new(),
    };
    generate_day(&net, &cfg, Day(0), &mut rec);
    assert!(rec.inner.sampled_flows > 0);
    assert!(rec.records.is_empty(), "wrapper records nothing by design");
}
