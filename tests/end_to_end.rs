//! End-to-end integration: synthetic Internet → traffic → vantage-point
//! capture → inference pipeline → evaluation. Asserts the qualitative
//! results the paper reports, on the small test scenario.

use metatelescope::core::{analysis, classifier, eval, pipeline, SpoofTolerance};
use metatelescope::flow::stats::DEFAULT_SIZE_THRESHOLD;
use metatelescope::netmodel::{AuxDatasets, Internet, InternetConfig};
use metatelescope::traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use metatelescope::types::{Block24Set, Day};

struct World {
    net: Internet,
    cfg: TrafficConfig,
}

impl World {
    fn new() -> World {
        World {
            net: Internet::generate(InternetConfig::small(), 42),
            cfg: TrafficConfig::default_profile(),
        }
    }

    fn capture_day<'a>(&'a self, day: Day, spoof: &'a SpoofSpace) -> CaptureSet<'a> {
        // SAFETY of lifetime juggling: CaptureSet borrows net and spoof;
        // callers keep both alive.
        let mut set = CaptureSet::new(&self.net, day, spoof, DEFAULT_SIZE_THRESHOLD, true);
        generate_day(&self.net, &self.cfg, day, &mut set);
        set
    }
}

#[test]
fn pipeline_recovers_dark_space_with_high_precision() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let rib = w.net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();

    let ce1 = capture.vantage("CE1").unwrap();
    let r = pipeline::run(&ce1.stats, &rib, ce1.vp.sampling_rate, 1, &pc);
    let gt = eval::GroundTruthReport::evaluate(&r.dark, &w.net, Day(0), 1);
    assert!(
        r.dark.len() > 500,
        "CE1 should infer a substantial dark set, got {}",
        r.dark.len()
    );
    assert!(
        gt.precision() > 0.9,
        "precision should be high, got {:.3}",
        gt.precision()
    );
    assert!(
        gt.recall() > 0.3,
        "recall should be meaningful, got {:.3}",
        gt.recall()
    );
    // The funnel is monotone and ends where classification starts.
    let f = &r.funnel;
    assert!(f.seen() >= f.after_tcp() && f.after_tcp() >= f.after_avg());
    assert!(f.after_avg() >= f.after_origin() && f.after_origin() >= f.after_special());
    assert!(f.after_special() >= f.after_routed() && f.after_routed() >= f.after_volume());
    assert_eq!(r.classified() as u64, f.after_volume());
}

#[test]
fn larger_vantage_points_infer_more() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let rib = w.net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let dark_of = |code: &str| {
        let vo = capture.vantage(code).unwrap();
        pipeline::run(&vo.stats, &rib, vo.vp.sampling_rate, 1, &pc).dark
    };
    let ce1 = dark_of("CE1");
    let se1 = dark_of("SE1");
    assert!(
        ce1.len() > 2 * se1.len(),
        "CE1 ({}) should dwarf SE1 ({})",
        ce1.len(),
        se1.len()
    );
}

#[test]
fn combining_vantage_points_is_conservative() {
    // Section 6.1: merging all vantage points yields FEWER inferred
    // prefixes than the largest individual contributor, because the
    // filters see more disqualifying information.
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let rib = w.net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let rate = w.net.vantage_points[0].sampling_rate;

    let mut best_single = 0usize;
    let mut merged: Option<metatelescope::flow::ShardedTrafficStats> = None;
    for vo in &capture.vantages {
        let r = pipeline::run(&vo.stats, &rib, vo.vp.sampling_rate, 1, &pc);
        best_single = best_single.max(r.dark.len());
        match &mut merged {
            None => merged = Some(vo.stats.clone()),
            Some(m) => m.merge(&vo.stats),
        }
    }
    let all = pipeline::run(&merged.unwrap(), &rib, rate, 1, &pc);
    assert!(all.dark.len() > 100, "All still infers plenty");
    assert!(
        all.dark.len() < best_single,
        "All ({}) must be below the best single VP ({best_single})",
        all.dark.len()
    );
}

#[test]
fn telescope_statistics_match_table2_shape() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let [tus1, teu1, teu2] = &capture.telescopes[..] else {
        panic!("three telescopes expected")
    };
    // TCP dominates everywhere; TEU2 has the largest UDP share.
    assert!(
        tus1.tcp_share() > 0.88,
        "TUS1 TCP share {}",
        tus1.tcp_share()
    );
    assert!(teu2.tcp_share() < tus1.tcp_share());
    assert!(teu2.tcp_share() < teu1.tcp_share());
    // Average TCP packet sizes sit in the (40, 44) window.
    for t in [tus1, teu1, teu2] {
        let avg = t.avg_tcp_size().unwrap();
        assert!(avg > 40.0 && avg < 44.0, "{} avg {avg}", t.telescope.code);
    }
    // TEU2 receives the most packets per /24; every telescope exceeds
    // the 1.7 k volume cap on average (why Table 4 coverage is partial).
    assert!(teu2.avg_packets_per_block() > tus1.avg_packets_per_block());
    for t in [tus1, teu2] {
        assert!(t.avg_packets_per_block() > 1_700.0, "{}", t.telescope.code);
    }
    // Port 23 tops the unblocked telescopes, but TEU1 blocks it.
    assert_eq!(tus1.top_ports(1)[0].0, 23);
    assert_eq!(teu2.top_ports(1)[0].0, 23);
    assert!(teu1.top_ports(10).iter().all(|&(p, _)| p != 23 && p != 445));
}

#[test]
fn classifier_calibration_matches_table3_shape() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let isp = capture.isp.as_ref().unwrap();
    let scope: Block24Set = w
        .net
        .announcements
        .iter()
        .filter(|a| a.as_idx == isp.as_idx)
        .flat_map(|a| a.prefix.blocks24())
        .collect();
    let labels = classifier::CalibrationLabels::derive(&isp.stats, &scope, 2_000);
    assert!(labels.dark.len() > 100 && labels.active.len() > 100);

    let rows = classifier::sweep(&isp.stats, &labels, &[40, 42, 44, 46]);
    let cell = |f: classifier::ClassifierFeature, t: u16| {
        rows.iter()
            .find(|r| r.feature == f && r.threshold == t)
            .unwrap()
            .matrix
    };
    use classifier::ClassifierFeature::{Average, Median};
    // Average@40 is catastrophic (nearly all dark blocks average > 40).
    assert!(cell(Average, 40).fnr() > 0.9);
    // Average@42 misses a large share.
    let fnr42 = cell(Average, 42).fnr();
    assert!(fnr42 > 0.2 && fnr42 < 0.8, "avg@42 FNR {fnr42}");
    // Average@44 is near-perfect with very low FPR.
    assert!(cell(Average, 44).fnr() < 0.05);
    assert!(cell(Average, 44).fpr() < 0.05);
    // The median feature pays a visibly higher FPR at 44 than average
    // (ACK-heavy active blocks fool it).
    assert!(cell(Median, 44).fpr() > cell(Average, 44).fpr() + 0.05);
    // And the paper's pick wins the sweep.
    let best = classifier::pick_best(&rows).unwrap();
    assert_eq!(best.feature, Average);
    assert!(best.threshold >= 44);
}

#[test]
fn activity_datasets_bound_false_positives_and_scrub() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let rib = w.net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let ce1 = capture.vantage("CE1").unwrap();
    let r = pipeline::run(&ce1.stats, &rib, ce1.vp.sampling_rate, 1, &pc);
    let aux = AuxDatasets::generate(&w.net);
    let check = eval::ActivityCheck::run(&r.dark, &aux);
    assert!(check.fp_share() < 0.2, "FP share {:.3}", check.fp_share());
    let scrubbed = eval::scrub(&r.dark, &aux);
    assert_eq!(scrubbed.intersection_len(&aux.union()), 0);
    let gt_before = eval::GroundTruthReport::evaluate(&r.dark, &w.net, Day(0), 1);
    let gt_after = eval::GroundTruthReport::evaluate(&scrubbed, &w.net, Day(0), 1);
    assert!(gt_after.precision() >= gt_before.precision());
}

#[test]
fn spoofing_tolerance_recovers_polluted_blocks() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    // Accumulate three days: pollution compounds (Figure 9).
    let mut merged: Option<metatelescope::flow::ShardedTrafficStats> = None;
    for day in Day(0).range(3) {
        let capture = w.capture_day(day, &spoof);
        let ce1 = capture.vantage("CE1").unwrap();
        match &mut merged {
            None => merged = Some(ce1.stats.clone()),
            Some(m) => m.merge(&ce1.stats),
        }
    }
    let stats = merged.unwrap();
    let rib = metatelescope::core::combine::rib_union(&w.net, Day(0), 3);
    let rate = w.net.vantage_points[0].sampling_rate;

    let strict = pipeline::run(&stats, &rib, rate, 3, &pipeline::PipelineConfig::default());
    let tol = SpoofTolerance::estimate(&stats, w.net.unrouted_octets(), 0.9999);
    let tolerant = pipeline::run(
        &stats,
        &rib,
        rate,
        3,
        &pipeline::PipelineConfig {
            spoof_tolerance_packets: tol.packets.max(1),
            ..pipeline::PipelineConfig::default()
        },
    );
    assert!(
        tolerant.dark.len() > strict.dark.len(),
        "tolerance ({}) must beat strict ({})",
        tolerant.dark.len(),
        strict.dark.len()
    );
    // Tolerance must not cost precision materially.
    let gt = eval::GroundTruthReport::evaluate(&tolerant.dark, &w.net, Day(0), 3);
    assert!(gt.precision() > 0.85, "precision {:.3}", gt.precision());
}

#[test]
fn inference_summary_spans_ases_and_countries() {
    let w = World::new();
    let spoof = SpoofSpace::new(&w.net, w.cfg.spoof_routed_bias);
    let capture = w.capture_day(Day(0), &spoof);
    let rib = w.net.rib(Day(0));
    let ce1 = capture.vantage("CE1").unwrap();
    let r = pipeline::run(
        &ce1.stats,
        &rib,
        ce1.vp.sampling_rate,
        1,
        &pipeline::PipelineConfig::default(),
    );
    let summary = analysis::summarize("CE1", &r.dark, &w.net);
    assert!(summary.ases > 10, "ASes {}", summary.ases);
    assert!(summary.countries > 5, "countries {}", summary.countries);
    let matrix = analysis::TypeContinentMatrix::build(&r.dark, &w.net);
    assert_eq!(matrix.total(), summary.blocks);
}
