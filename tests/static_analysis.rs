//! The workspace must stay clean under its own static analysis.
//!
//! This is the second of mt-check's three run modes (binary, test, CI):
//! `cargo test` on the umbrella crate re-runs every rule over the
//! workspace sources and fails — printing the full human-readable
//! report — if any rule fires. Suppressions require a
//! `// check: allow(<rule>, "<reason>")` pragma at the violation site,
//! so a red run here means either fix the code or argue the invariant
//! in writing next to it.

use std::path::Path;

#[test]
fn workspace_is_clean_under_mt_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mt_check::check_root(root).expect("workspace sources are readable");
    assert!(
        report.files_scanned > 0,
        "mt-check scanned nothing; workspace layout changed?"
    );
    assert!(
        report.is_clean(),
        "mt-check found violations:\n\n{}",
        report.render_human()
    );
}

#[test]
fn report_schema_carries_all_rules_and_the_suppression_inventory() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mt_check::check_root(root).expect("workspace sources are readable");

    assert_eq!(report.schema_version, 2, "schema bumps must be deliberate");
    assert_eq!(
        report.rules.len(),
        mt_check::RULE_IDS.len(),
        "every rule reports, even at zero"
    );
    for id in mt_check::RULE_IDS {
        assert!(
            report.rules.iter().any(|r| r.id == id),
            "rule `{id}` missing from the report"
        );
    }

    // The suppression inventory must carry a real site and a real
    // reason for every silenced violation — that is the whole point of
    // making suppressions diffable across PRs.
    assert!(
        !report.suppressions.is_empty(),
        "this workspace carries reasoned pragmas; an empty inventory means the plumbing broke"
    );
    for s in &report.suppressions {
        assert!(
            mt_check::RULE_IDS.contains(&s.rule.as_str()),
            "unknown rule `{}` in suppression inventory",
            s.rule
        );
        assert!(!s.path.is_empty() && !s.reason.is_empty() && s.line > 0);
    }
    let per_rule: usize = report.rules.iter().map(|r| r.suppressed).sum();
    assert_eq!(
        report.suppressions.len(),
        per_rule,
        "inventory and per-rule counts must agree"
    );

    assert!(
        report.render_json().contains("\"schema_version\": 2"),
        "JSON document must carry the bumped version"
    );
}

#[test]
fn test_trees_are_scanned_with_the_test_role() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = mt_check::Workspace::from_root(root).expect("workspace sources are readable");
    assert!(
        ws.files
            .iter()
            .any(|f| f.rel_path == "tests/static_analysis.rs"),
        "umbrella tests/ must be scanned"
    );
    assert!(
        ws.files.iter().any(|f| f.rel_path.contains("/tests/")),
        "crates/*/tests must be scanned"
    );
}
