//! The workspace must stay clean under its own static analysis.
//!
//! This is the second of mt-check's three run modes (binary, test, CI):
//! `cargo test` on the umbrella crate re-runs every rule over the
//! workspace sources and fails — printing the full human-readable
//! report — if any rule fires. Suppressions require a
//! `// check: allow(<rule>, "<reason>")` pragma at the violation site,
//! so a red run here means either fix the code or argue the invariant
//! in writing next to it.

use std::path::Path;

#[test]
fn workspace_is_clean_under_mt_check() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mt_check::check_root(root).expect("workspace sources are readable");
    assert!(
        report.files_scanned > 0,
        "mt-check scanned nothing; workspace layout changed?"
    );
    assert!(
        report.is_clean(),
        "mt-check found violations:\n\n{}",
        report.render_human()
    );
}
