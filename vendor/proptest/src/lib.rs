//! Vendored minimal stand-in for `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / `Just` /
//! union strategies, `collection::vec`, `any::<T>()`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros.
//!
//! Differences from the real crate, chosen for a zero-dependency build:
//! values come from a deterministic splitmix64 stream (reproducible runs,
//! no `RUST_PROPTEST_*` env handling), failures panic immediately with no
//! shrinking, and range strategies bias toward their endpoints with
//! probability ~1/8 each to keep edge-case coverage.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Generates one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    match rng.next_u64() % 16 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => {
                            let span = (self.end as u64).wrapping_sub(self.start as u64);
                            self.start.wrapping_add(rng.below(span) as $t)
                        }
                    }
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    match rng.next_u64() % 16 {
                        0 => lo,
                        1 => hi,
                        _ => {
                            let span = (hi as u64).wrapping_sub(lo as u64);
                            if span == u64::MAX {
                                rng.next_u64() as $t
                            } else {
                                lo.wrapping_add(rng.below(span + 1) as $t)
                            }
                        }
                    }
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            match rng.next_u64() % 16 {
                0 => self.start,
                _ => self.start + rng.unit_f64() * (self.end - self.start),
            }
        }
    }

    impl Strategy for ::std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            match rng.next_u64() % 16 {
                0 => lo,
                1 => hi,
                _ => lo + rng.unit_f64() * (hi - lo),
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L),
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector of `size.into()` elements generated by `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default 3:1 Some:None weighting.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Test-runner configuration and the deterministic value stream.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 stream feeding all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed stream used by [`proptest!`](crate::proptest).
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            // Multiply-shift; the slight bias is irrelevant for tests.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(args in strategies) { body }`
/// becomes a `#[test]` running `body` once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut __proptest_rng = $crate::test_runner::TestRng::deterministic();
            for __proptest_case in 0..config.cases {
                let _ = __proptest_case;
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly picks one of several strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        #[test]
        fn ranges_stay_in_bounds(
            a in 3u8..10,
            b in 5u64..=5,
            c in 0.0f64..=1.0,
            v in crate::collection::vec(1u16..4, 2..5),
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert_eq!(b, 5);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|x| (1..4).contains(x)));
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(1u8), Just(7)],
            y in (0u16..100, any::<bool>()).prop_map(|(n, flip)| if flip { n + 1 } else { n }),
        ) {
            prop_assert!(x == 1 || x == 7);
            prop_assert!(y <= 100);
        }
    }

    #[test]
    fn endpoints_are_hit() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = 0u32..=9;
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            match crate::strategy::Strategy::generate(&strat, &mut rng) {
                0 => seen_lo = true,
                9 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi, "edge bias should hit both endpoints");
    }
}
