//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API surface it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`]
//! constructor trait, and the [`RngExt`] extension trait providing
//! `random::<T>()` and `random_range(..)`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — high-quality,
//! fast, and fully deterministic for a given seed, which is all the
//! simulation needs. It makes no cryptographic claims.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG.
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is negligible for the
/// simulation-scale bounds used in this workspace.
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Extension methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            let r = rng.random_range(3u32..10);
            assert!((3..10).contains(&r));
            let ri = rng.random_range(0u8..=255);
            let _ = ri;
        }
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.random_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((480.0..520.0).contains(&mean), "mean {mean}");
    }
}
