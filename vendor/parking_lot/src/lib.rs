//! Vendored minimal stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std lock is unwrapped
//! into its inner value, matching parking_lot's "no poisoning" model).

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
