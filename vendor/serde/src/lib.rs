//! Vendored minimal stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors a small value-tree serialization model instead of real
//! serde's visitor architecture:
//!
//! - [`Serialize`] converts a value into a [`Value`] tree;
//! - [`Deserialize`] reconstructs a value from a [`Value`] tree;
//! - the `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//!   proc macros supporting structs with named fields, transparent
//!   newtype structs, and unit-variant enums — exactly the shapes this
//!   workspace uses.
//!
//! `serde_json` (also vendored) prints and parses [`Value`] as JSON.
//! The derive macros accept (and ignore beyond `transparent`) the
//! `#[serde(...)]` attribute for source compatibility.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// An order-preserving string-keyed map (the `Object` payload).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing any previous value for it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as u64, coercing from other numeric shapes when lossless.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as i64, coercing when lossless.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// The value as f64 (any numeric shape).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as &str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($({
                            let _ = $n;
                            $t::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                        },)+);
                        if it.next().is_some() {
                            return Err(Error::msg("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    _ => Err(Error::msg("expected array for tuple")),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

/// Serializes a map key: string keys pass through, anything else is
/// JSON-encoded compactly (real serde_json rejects non-string keys; this
/// stub is deliberately more permissive).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => crate::json::print_compact(&other),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    let parsed = crate::json::parse(key)?;
    K::from_value(&parsed)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// JSON printing and parsing over [`Value`] (used by the vendored
/// `serde_json` facade and for non-string map keys).
pub mod json {
    use super::{Error, Map, Value};
    use std::fmt::Write as _;

    /// Prints a value as compact JSON.
    pub fn print_compact(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, None, 0);
        out
    }

    /// Prints a value as 2-space-indented JSON.
    pub fn print_pretty(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, Some(2), 0);
        out
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no NaN/Inf; emit null like permissive encoders.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a JSON document into a [`Value`].
    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg("trailing characters after JSON value"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::msg(format!(
                    "expected '{}' at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::String),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg("expected ',' or ']'")),
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut map = Map::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                map.insert(key, value);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::msg("expected ',' or '}'")),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::msg("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::msg("bad \\u escape"))?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(Error::msg)?,
                                    16,
                                )
                                .map_err(Error::msg)?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("bad \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                            _ => return Err(Error::msg("bad escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest).map_err(Error::msg)?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
            if !is_float {
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::U64(u));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::I64(i));
                }
            }
            text.parse::<f64>().map(Value::F64).map_err(Error::msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null).unwrap(),
            None::<u32>
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        assert_eq!(
            HashMap::<String, u64>::from_value(&m.to_value()).unwrap(),
            m
        );
        let t = (3u16, "x".to_string());
        assert_eq!(<(u16, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn tuple_keyed_map_roundtrips_via_json_keys() {
        let mut m = HashMap::new();
        m.insert((1u16, 2u8), 3u64);
        let v = m.to_value();
        assert_eq!(HashMap::<(u16, u8), u64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn json_print_and_parse() {
        let mut map = Map::new();
        map.insert("n".into(), Value::U64(42));
        map.insert("s".into(), Value::String("a\"b".into()));
        map.insert(
            "a".into(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let v = Value::Object(map);
        let compact = json::print_compact(&v);
        assert_eq!(compact, r#"{"n":42,"s":"a\"b","a":[true,null]}"#);
        assert_eq!(json::parse(&compact).unwrap(), v);
        let pretty = json::print_pretty(&v);
        assert_eq!(json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers_parse_with_right_shapes() {
        assert_eq!(json::parse("42").unwrap(), Value::U64(42));
        assert_eq!(json::parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(json::parse("2.5").unwrap(), Value::F64(2.5));
        assert_eq!(json::parse("1e3").unwrap(), Value::F64(1000.0));
    }
}
