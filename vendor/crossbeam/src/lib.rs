//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented over
//! `std::thread::scope` (stable since Rust 1.63), mirroring crossbeam's
//! API shape: the spawn closure receives the scope so that workers can
//! themselves spawn, and `scope` returns a `Result` like crossbeam's.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, as in
        /// crossbeam, so nested spawning works.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Unlike crossbeam, a panicking child propagates
    /// its panic at join time (std semantics); the `Result` is kept for
    /// API compatibility and is always `Ok` on normal return.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let total = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        super::thread::scope(|s| {
            for chunk in data.chunks(30) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), (0..100).sum::<u64>());
    }

    #[test]
    fn nested_spawn_works() {
        let hit = AtomicU64::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hit.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hit.into_inner(), 1);
    }
}
