//! Vendored minimal stand-in for `criterion`.
//!
//! Mirrors the subset of the API the workspace benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`), with wall-clock
//! measurement instead of criterion's statistical machinery.
//!
//! Bench binaries are built with `harness = false` and also run by
//! `cargo test`; following real criterion, full measurement only happens
//! when `--bench` is on the command line (as `cargo bench` passes), and
//! every other invocation runs each benchmark once as a smoke test.

use std::time::{Duration, Instant};

/// Per-iteration work volume, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let measure = self.measure;
        run_benchmark(name, 100, None, measure, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (scales measurement time here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work volume for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.measure,
            f,
        );
        self
    }

    /// Ends the group (reporting happens per benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    /// How many times `iter`'s routine should run.
    iters: u64,
    /// Time spent inside the measured routine.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, running it as many times as this pass needs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    measure: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !measure {
        // Smoke-test mode (`cargo test` on a harness = false bench target).
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Calibration pass: one iteration to estimate per-iter cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Aim for ~sample_size iterations but cap the wall-clock budget so
    // slow benchmarks stay responsive.
    let budget = Duration::from_millis(500);
    let by_budget = (budget.as_nanos() / per_iter.as_nanos()).max(1);
    let iters = (sample_size as u128).min(by_budget).max(1) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 * 1e9 / mean_ns),
        Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 * 1e9 / mean_ns),
    });
    println!(
        "bench {name}: {:.1} ns/iter over {iters} iters{}",
        mean_ns,
        rate.unwrap_or_default()
    );
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark() {
        let mut c = Criterion { measure: false };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .throughput(Throughput::Elements(4))
                .bench_function("a", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1, "smoke-test mode runs the routine once");
    }

    #[test]
    fn measured_mode_iterates() {
        let mut c = Criterion { measure: true };
        let mut runs = 0u64;
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert!(runs >= 2, "calibration plus measurement passes");
    }
}
