//! Vendored derive macros for the vendored `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input
//! token stream is walked by hand and the impl is emitted as source text
//! parsed back into a `TokenStream`. Supported shapes — the only ones
//! this workspace uses:
//!
//! - structs with named fields → JSON object keyed by field name;
//! - single-field tuple structs → transparent newtype (inner value);
//! - enums whose variants all carry no data → variant-name string.
//!
//! `#[serde(...)]` attributes are accepted for source compatibility but
//! carry no extra behavior (newtypes are transparent by default here).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with exactly one field.
    Newtype,
    /// Enum with unit variants only.
    UnitEnum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode)
            .parse()
            .expect("serde_derive: generated code failed to parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("serde_derive: error emission failed to parse"),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected type name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored derive"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = count_tuple_fields(g.stream());
                if fields == 1 {
                    Ok((name, Shape::Newtype))
                } else {
                    Err(format!(
                        "serde_derive: tuple struct `{name}` must have exactly one field \
                         ({fields} found)"
                    ))
                }
            }
            _ => Err(format!(
                "serde_derive: unit struct `{name}` is not supported"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(g.stream(), &name)?;
                Ok((name, Shape::UnitEnum(variants)))
            }
            _ => Err(format!("serde_derive: malformed enum `{name}`")),
        },
        other => Err(format!("serde_derive: unsupported item kind `{other}`")),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-field body, honoring that commas
/// inside `<...>` generic arguments do not separate fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde_derive: expected field name, found `{other}`"
                ))
            }
        };
        fields.push(field);
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err("serde_derive: expected `:` after field name".into());
        }
        i += 1;
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts top-level fields of a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    fields += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

/// Extracts variant names from an enum body, rejecting data-carrying
/// variants (out of scope for the vendored derive).
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!(
                    "serde_derive: expected variant name in `{enum_name}`, found `{other}`"
                ))
            }
        };
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
            return Err(format!(
                "serde_derive: variant `{enum_name}::{variant}` carries data, which the \
                 vendored derive does not support"
            ));
        }
        variants.push(variant);
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match (shape, mode) {
        (Shape::Named(fields), Mode::Serialize) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "map.insert({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut map = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(map)\n\
                     }}\n\
                 }}\n"
            )
        }
        (Shape::Named(fields), Mode::Deserialize) => {
            let reads: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             map.get({f:?}).unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| ::serde::Error(\
                                 format!(\"{name}.{f}: {{}}\", e.0)))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Object(map) => Ok({name} {{\n\
                                 {reads}\
                             }}),\n\
                             _ => Err(::serde::Error::msg(\
                                 \"expected object for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
        (Shape::Newtype, Mode::Serialize) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}\n"
        ),
        (Shape::Newtype, Mode::Deserialize) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     ::serde::Deserialize::from_value(v).map({name})\n\
                 }}\n\
             }}\n"
        ),
        (Shape::UnitEnum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n\
                             {arms}\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
        (Shape::UnitEnum(variants), Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => Err(::serde::Error(format!(\
                                     \"unknown {name} variant: {{other}}\"))),\n\
                             }},\n\
                             _ => Err(::serde::Error::msg(\
                                 \"expected string for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
