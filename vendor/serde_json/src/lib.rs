//! Vendored minimal stand-in for `serde_json`.
//!
//! A thin facade over the value model and JSON codec that live in the
//! vendored `serde` crate: [`to_string`] / [`to_string_pretty`] go
//! through `Serialize::to_value` and print the tree; [`from_str`]
//! parses into a tree and runs `Deserialize::from_value`.

pub use serde::{Error, Map, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::print_compact(&value.to_value()))
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::print_pretty(&value.to_value()))
}

/// Deserializes a value from a JSON document.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(input)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    #[serde(transparent)]
    struct Transparent(u16);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        name: String,
        count: u64,
        ratio: f64,
        inner: Inner,
        kind: Kind,
        tags: Vec<Transparent>,
        maybe: Option<i32>,
        pair: std::collections::HashMap<String, u8>,
        code: [u8; 2],
    }

    #[test]
    fn derived_struct_roundtrips() {
        let mut pair = std::collections::HashMap::new();
        pair.insert("x".to_string(), 9u8);
        let outer = Outer {
            name: "t".into(),
            count: 7,
            ratio: 0.5,
            inner: Inner(3),
            kind: Kind::Beta,
            tags: vec![Transparent(1), Transparent(2)],
            maybe: None,
            pair,
            code: [65, 66],
        };
        let json = super::to_string(&outer).unwrap();
        let back: Outer = super::from_str(&json).unwrap();
        assert_eq!(back, outer);
        // Newtype fields serialize transparently, enums as variant names.
        assert!(json.contains("\"inner\":3"), "json: {json}");
        assert!(json.contains("\"kind\":\"Beta\""), "json: {json}");
        assert!(json.contains("\"tags\":[1,2]"), "json: {json}");
    }

    #[test]
    fn pretty_output_reparses() {
        let v = super::Value::Array(vec![super::Value::U64(1), super::Value::Null]);
        let pretty = super::to_string_pretty(&v).unwrap();
        let back: super::Value = super::from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unknown_enum_variant_errors() {
        assert!(super::from_str::<Kind>("\"Gamma\"").is_err());
    }
}
