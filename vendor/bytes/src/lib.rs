//! Vendored minimal stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`]/[`BufMut`] trait subset the IPFIX codec uses:
//! big-endian integer accessors over `&[u8]` (reading) and `Vec<u8>`
//! (writing). Reads panic on underflow, matching the real crate.

/// Read access to a contiguous byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, n: usize) {
        assert!(self.len() >= n, "buffer underflow");
        *self = &self[n..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_big_endian() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(7);
        v.put_u16(0x1234);
        v.put_u32(0xdead_beef);
        v.put_u64(42);
        v.put_slice(b"xy");
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 42);
        r.advance(1);
        assert_eq!(r, b"y");
    }
}
