//! Syntax-layer totality properties, mirroring the lexer proptests.
//!
//! The concurrency rules lean on two structural guarantees: `build`
//! never panics on anything the lexer tokenized (which is anything at
//! all), and the scope tree *tiles* — every byte offset has a unique
//! innermost scope, and the set of scopes containing an offset is
//! exactly that scope's parent chain. Both are exercised on random
//! concatenations of adversarial fragments, not well-formed Rust: the
//! analyzer scans files mid-edit, mid-merge-conflict, and mid-macro.

use mt_check::lexer::lex;
use mt_check::syntax::SyntaxIndex;
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragments biased toward scope/call machinery edge cases.
const FRAGMENTS: &[&str] = &[
    "fn main() {}",
    "fn f(a: u32) -> u32 { a }",
    "fn nested() { fn inner() {} inner(); }",
    "let x = m.lock();",
    "let mut g = crate::sync::lock(&q.m);",
    "drop(g);",
    "x.a.b.c(1, 2)",
    "v[i].push(w)",
    "m!(not_a_call)",
    "if (x) { y(); }",
    "while x { { } }",
    "match x { _ => {} }",
    "{",
    "}",
    "{{{",
    "}}}",
    "{ } }{",
    "(",
    ")",
    "(}",
    "{)",
    "fn unterminated(",
    "fn bodyless();",
    "trait T { fn m(&self); }",
    "impl T for U { fn m(&self) {} }",
    "\"a string with { braces } and (parens)\"",
    "// a comment with fn fake() {\n",
    "/* { */",
    "'{'",
    "b'{'",
    "r#\"{ raw \"#",
    "#[cfg(test)]",
    "mod tests {",
    "let c = || { x() };",
    "cv.wait(g)",
    "Ordering::Relaxed",
    ";",
    "=",
    ".",
    ": :",
    "é{中}🦀",
    "\n\t ",
];

fn soup(indices: Vec<u8>) -> String {
    indices
        .into_iter()
        .map(|i| FRAGMENTS[i as usize % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #[test]
    fn build_is_total_on_fragment_soups(indices in vec(any::<u8>(), 0..64)) {
        let src = soup(indices);
        // Reaching the assertions at all is half the property: build
        // must not panic on unbalanced braces, stray parens, or tokens
        // hiding inside strings.
        let ix = SyntaxIndex::build(&src, &lex(&src));

        // Structural sanity on whatever came back.
        prop_assert!(!ix.scopes.is_empty(), "root scope always exists");
        prop_assert_eq!(ix.scopes[0].start, 0);
        prop_assert_eq!(ix.scopes[0].end, src.len());
        for (i, s) in ix.scopes.iter().enumerate().skip(1) {
            prop_assert!(s.start < s.end.max(s.start + 1), "scope {i} is ordered");
            let p = s.parent.expect("non-root scopes have parents");
            prop_assert!(p < i, "parents precede children");
            prop_assert!(
                ix.scopes[p].start <= s.start && s.end <= ix.scopes[p].end.max(s.end),
                "child {i} nests inside parent {p}"
            );
        }
        for c in &ix.calls {
            prop_assert!(c.idx < ix.code.len());
            prop_assert!(c.close < ix.code.len());
            prop_assert!(c.idx < c.close, "callee precedes its close paren");
        }
    }

    #[test]
    fn innermost_scope_tiles_the_file(indices in vec(any::<u8>(), 0..48)) {
        let src = soup(indices);
        let ix = SyntaxIndex::build(&src, &lex(&src));
        for t in &ix.code {
            let inner = ix.innermost_scope(t.start);

            // Total: some scope claims every offset.
            let s = ix.scopes[inner];
            prop_assert!(
                s.start <= t.start && t.start < s.end.max(s.start + 1),
                "innermost scope contains the offset"
            );

            // Tiling: the scopes containing this offset are exactly the
            // innermost scope's parent chain (including itself).
            let mut chain = vec![inner];
            let mut cur = inner;
            while let Some(p) = ix.scopes[cur].parent {
                chain.push(p);
                cur = p;
            }
            let containing: Vec<usize> = ix
                .scopes
                .iter()
                .enumerate()
                .filter(|(_, s)| s.start <= t.start && t.start < s.end.max(s.start + 1))
                .map(|(i, _)| i)
                .collect();
            let mut chain_sorted = chain.clone();
            chain_sorted.sort_unstable();
            prop_assert_eq!(
                chain_sorted, containing,
                "containing scopes must be exactly the parent chain at {} of {:?}",
                t.start, src
            );
        }
    }

    #[test]
    fn statement_bounds_stay_in_range(indices in vec(any::<u8>(), 0..48)) {
        let src = soup(indices);
        let ix = SyntaxIndex::build(&src, &lex(&src));
        for c in &ix.calls {
            let start = ix.statement_start(c.idx, &src);
            prop_assert!(start <= c.idx, "statement start precedes the call");
            let end = ix.statement_end(c.close, &src);
            prop_assert!(end <= src.len(), "statement end stays inside the file");
            prop_assert!(c.offset(&ix) < end, "call precedes its statement end");
        }
    }
}
