//! Proof that every rule is live.
//!
//! For each of the six rules, a bad fixture mounted at an in-scope path
//! must make the rule fire, and its pragma'd twin must suppress it
//! (counted, never silent). If a rule rots into a no-op — a refactor
//! drops its token pattern, the catalogue markers change — one of these
//! tests goes red, not just the workspace scan.
//!
//! Fixture sources live in `crates/check/fixtures/`, outside any `src/`
//! tree, so the real workspace scan never sees them.

use mt_check::{run_all, Report, Workspace};

fn check_one(path: &str, text: &str) -> Report {
    run_all(&Workspace::in_memory(vec![(path, text.to_owned())], None))
}

/// A DESIGN.md stand-in whose catalogue lists exactly one metric.
fn design_with_catalogue(names: &str) -> String {
    format!(
        "# Design\n\n<!-- mt-check:metrics-catalogue:begin -->\n\n\
         | Metric | Kind |\n|---|---|\n| `{names}` | counter |\n\n\
         <!-- mt-check:metrics-catalogue:end -->\n"
    )
}

#[test]
fn atomics_ordering_fires_and_suppresses() {
    let bad = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/atomics_bad.rs"),
    );
    assert_eq!(bad.count("atomics_ordering"), 1, "{}", bad.render_human());

    let sup = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/atomics_suppressed.rs"),
    );
    assert_eq!(sup.count("atomics_ordering"), 0, "{}", sup.render_human());
    assert_eq!(
        suppressed(&sup, "atomics_ordering"),
        1,
        "counted, not silent"
    );

    let ok = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/atomics_justified.rs"),
    );
    assert_eq!(ok.count("atomics_ordering"), 0, "{}", ok.render_human());
    assert_eq!(
        suppressed(&ok, "atomics_ordering"),
        0,
        "an `// ordering:` justification satisfies the rule outright"
    );
}

#[test]
fn no_panic_fires_and_suppresses() {
    let bad = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/no_panic_bad.rs"),
    );
    assert_eq!(bad.count("no_panic"), 1, "{}", bad.render_human());

    let sup = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/no_panic_suppressed.rs"),
    );
    assert_eq!(sup.count("no_panic"), 0, "{}", sup.render_human());
    assert_eq!(suppressed(&sup, "no_panic"), 1);
}

#[test]
fn empty_reason_does_not_suppress() {
    let bad = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/no_panic_empty_reason.rs"),
    );
    assert_eq!(
        bad.count("no_panic"),
        1,
        "a reasonless pragma must not suppress:\n{}",
        bad.render_human()
    );
}

#[test]
fn no_panic_ignores_bins_and_tests() {
    let text = include_str!("../fixtures/no_panic_bad.rs");
    let bin = check_one("crates/demo/src/bin/tool.rs", text);
    assert_eq!(bin.count("no_panic"), 0, "bin targets may unwrap");

    let in_test = format!("#[cfg(test)]\nmod tests {{\n{text}\n}}\n");
    let tst = check_one("crates/demo/src/a.rs", &in_test);
    assert_eq!(tst.count("no_panic"), 0, "test regions may unwrap");
}

#[test]
fn crate_hygiene_fires_and_suppresses() {
    let text = include_str!("../fixtures/hygiene_bad.rs");
    let bad = check_one("crates/demo/src/lib.rs", text);
    assert_eq!(
        bad.count("crate_hygiene"),
        2,
        "both attrs missing:\n{}",
        bad.render_human()
    );

    let elsewhere = check_one("crates/demo/src/util.rs", text);
    assert_eq!(
        elsewhere.count("crate_hygiene"),
        0,
        "only crate roots are held to the attr requirement"
    );

    let sup = check_one(
        "crates/demo/src/lib.rs",
        include_str!("../fixtures/hygiene_suppressed.rs"),
    );
    assert_eq!(sup.count("crate_hygiene"), 0, "{}", sup.render_human());
    assert_eq!(
        suppressed(&sup, "crate_hygiene"),
        2,
        "file-scoped pragma counts"
    );
}

#[test]
fn crate_hygiene_deny_needs_a_pragma() {
    let bad = check_one(
        "crates/demo/src/lib.rs",
        include_str!("../fixtures/hygiene_deny_bad.rs"),
    );
    assert_eq!(
        bad.count("crate_hygiene"),
        1,
        "a silent downgrade to deny(unsafe_code) must fire:\n{}",
        bad.render_human()
    );

    let sup = check_one(
        "crates/demo/src/lib.rs",
        include_str!("../fixtures/hygiene_deny_suppressed.rs"),
    );
    assert_eq!(sup.count("crate_hygiene"), 0, "{}", sup.render_human());
    assert_eq!(
        suppressed(&sup, "crate_hygiene"),
        1,
        "the reasoned escape hatch is counted, not silent"
    );
}

#[test]
fn unsafe_without_safety_comment_fires() {
    let text = include_str!("../fixtures/unsafe_safety_bad.rs");
    let bad = check_one("crates/demo/src/util.rs", text);
    assert_eq!(
        bad.count("crate_hygiene"),
        1,
        "a bare `unsafe` must fire in any lib file:\n{}",
        bad.render_human()
    );

    let bin = check_one("crates/demo/src/bin/tool.rs", text);
    assert_eq!(bin.count("crate_hygiene"), 0, "bins are out of audit scope");

    let in_test = format!("#[cfg(test)]\nmod tests {{\n{text}\n}}\n");
    let tst = check_one("crates/demo/src/util.rs", &in_test);
    assert_eq!(tst.count("crate_hygiene"), 0, "test regions are exempt");

    let ok = check_one(
        "crates/demo/src/util.rs",
        include_str!("../fixtures/unsafe_safety_justified.rs"),
    );
    assert_eq!(ok.count("crate_hygiene"), 0, "{}", ok.render_human());
    assert_eq!(
        suppressed(&ok, "crate_hygiene"),
        0,
        "a `// safety:` comment satisfies the audit outright"
    );

    let sup = check_one(
        "crates/demo/src/util.rs",
        include_str!("../fixtures/unsafe_safety_suppressed.rs"),
    );
    assert_eq!(sup.count("crate_hygiene"), 0, "{}", sup.render_human());
    assert_eq!(suppressed(&sup, "crate_hygiene"), 1);
}

#[test]
fn hash_policy_fires_and_suppresses() {
    let text = include_str!("../fixtures/hash_policy_bad.rs");
    let bad = check_one("crates/flow/src/fix.rs", text);
    assert!(
        bad.count("hash_policy") >= 1,
        "std HashMap in a hot-path crate must fire:\n{}",
        bad.render_human()
    );

    let cold = check_one("crates/netmodel/src/fix.rs", text);
    assert_eq!(
        cold.count("hash_policy"),
        0,
        "the policy binds only the hot-path crates"
    );

    let sup = check_one(
        "crates/flow/src/fix.rs",
        include_str!("../fixtures/hash_policy_suppressed.rs"),
    );
    assert_eq!(sup.count("hash_policy"), 0, "{}", sup.render_human());
    assert!(suppressed(&sup, "hash_policy") >= 1);
}

#[test]
fn columnar_policy_fires_and_suppresses() {
    let text = include_str!("../fixtures/columnar_policy_bad.rs");
    let bad = check_one("crates/flow/src/fix.rs", text);
    assert_eq!(
        bad.count("columnar_policy"),
        1,
        "a u32-keyed FxHashMap in mt-flow lib code must fire:\n{}",
        bad.render_human()
    );

    let elsewhere = check_one("crates/stream/src/fix.rs", text);
    assert_eq!(
        elsewhere.count("columnar_policy"),
        0,
        "the policy binds only mt-flow"
    );

    let bin = check_one("crates/flow/src/bin/tool.rs", text);
    assert_eq!(
        bin.count("columnar_policy"),
        0,
        "binaries and tests are out of scope"
    );

    let sup = check_one(
        "crates/flow/src/fix.rs",
        include_str!("../fixtures/columnar_policy_suppressed.rs"),
    );
    assert_eq!(sup.count("columnar_policy"), 0, "{}", sup.render_human());
    assert_eq!(suppressed(&sup, "columnar_policy"), 1);
}

#[test]
fn determinism_fires_and_suppresses() {
    let text = include_str!("../fixtures/determinism_bad.rs");
    let bad = check_one("crates/core/src/fix.rs", text);
    assert_eq!(bad.count("determinism"), 1, "{}", bad.render_human());

    let exempt = check_one("crates/obs/src/fix.rs", text);
    assert_eq!(
        exempt.count("determinism"),
        0,
        "mt-obs owns wall-clock reads"
    );

    let sup = check_one(
        "crates/core/src/fix.rs",
        include_str!("../fixtures/determinism_suppressed.rs"),
    );
    assert_eq!(sup.count("determinism"), 0, "{}", sup.render_human());
    assert_eq!(suppressed(&sup, "determinism"), 1);
}

#[test]
fn metric_names_fires_both_directions_and_suppresses() {
    let code = include_str!("../fixtures/metric_names_bad.rs");

    // Code registers a metric the catalogue does not list.
    let ws = Workspace::in_memory(
        vec![("crates/demo/src/a.rs", code.to_owned())],
        Some(design_with_catalogue("mt_fixture_ghost_total")),
    );
    let report = run_all(&ws);
    assert_eq!(
        report.count("metric_names"),
        2,
        "one uncatalogued registration + one code-less catalogue entry:\n{}",
        report.render_human()
    );

    // A matching catalogue is clean.
    let ws = Workspace::in_memory(
        vec![("crates/demo/src/a.rs", code.to_owned())],
        Some(design_with_catalogue("mt_fixture_unlisted_total")),
    );
    let report = run_all(&ws);
    assert_eq!(report.count("metric_names"), 0, "{}", report.render_human());

    // Without catalogue markers the rule stands down rather than guess.
    let ws = Workspace::in_memory(
        vec![("crates/demo/src/a.rs", code.to_owned())],
        Some("# Design\nno catalogue here\n".to_owned()),
    );
    let report = run_all(&ws);
    assert_eq!(report.count("metric_names"), 0);

    // The registration-site violation is pragma-suppressible.
    let ws = Workspace::in_memory(
        vec![(
            "crates/demo/src/a.rs",
            include_str!("../fixtures/metric_names_suppressed.rs").to_owned(),
        )],
        Some(design_with_catalogue("mt_fixture_unlisted_total")),
    );
    let report = run_all(&ws);
    assert_eq!(report.count("metric_names"), 0, "{}", report.render_human());
}

#[test]
fn catalogue_brace_expansion_matches_each_name() {
    let code = r#"
/// Registers two series.
pub fn register(reg: &mt_obs::MetricsRegistry) {
    reg.counter("mt_fx_read_total", "reads");
    reg.counter("mt_fx_write_total", "writes");
}
"#;
    let ws = Workspace::in_memory(
        vec![("crates/demo/src/a.rs", code.to_owned())],
        Some(design_with_catalogue("mt_fx_{read,write}_total")),
    );
    let report = run_all(&ws);
    assert_eq!(report.count("metric_names"), 0, "{}", report.render_human());
}

fn suppressed(report: &Report, rule: &str) -> usize {
    report
        .rules
        .iter()
        .find(|r| r.id == rule)
        .map_or(0, |r| r.suppressed)
}

/// A DESIGN.md stand-in whose lock-order catalogue lists `names` in
/// the given (declared) acquisition order.
fn design_with_lock_catalogue(names: &[&str]) -> String {
    let rows: String = names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("| {} | `{n}` | fixture |\n", i + 1))
        .collect();
    format!(
        "# Design\n\n<!-- mt-check:lock-catalogue:begin -->\n\n\
         | # | Lock | Protects |\n|---|---|---|\n{rows}\n\
         <!-- mt-check:lock-catalogue:end -->\n"
    )
}

#[test]
fn lock_order_fires_on_unannotated_sites_and_suppresses() {
    let bad = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/lock_order_bad.rs"),
    );
    assert_eq!(bad.count("lock_order"), 1, "{}", bad.render_human());

    let sup = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/lock_order_suppressed.rs"),
    );
    assert_eq!(sup.count("lock_order"), 0, "{}", sup.render_human());
    assert_eq!(suppressed(&sup, "lock_order"), 1, "counted, not silent");
}

#[test]
fn lock_order_flags_cycles() {
    let report = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/lock_order_cycle.rs"),
    );
    assert_eq!(
        report.count("lock_order"),
        1,
        "one back edge, one potential deadlock: {}",
        report.render_human()
    );
    assert!(
        report.violations[0].message.contains("cycle"),
        "{}",
        report.render_human()
    );
}

#[test]
fn lock_order_verifies_the_catalogue_both_directions() {
    let code = include_str!("../fixtures/lock_order_named.rs");
    let check = |catalogue: &[&str]| {
        run_all(&Workspace::in_memory(
            vec![("crates/demo/src/a.rs", code.to_owned())],
            Some(design_with_lock_catalogue(catalogue)),
        ))
    };

    let ok = check(&["fixture.outer", "fixture.inner"]);
    assert_eq!(ok.count("lock_order"), 0, "{}", ok.render_human());

    let reversed = check(&["fixture.inner", "fixture.outer"]);
    assert_eq!(
        reversed.count("lock_order"),
        1,
        "the observed outer→inner edge contradicts the declared order: {}",
        reversed.render_human()
    );

    let missing = check(&["fixture.outer"]);
    assert_eq!(
        missing.count("lock_order"),
        1,
        "fixture.inner is acquired but uncatalogued: {}",
        missing.render_human()
    );

    let stale = check(&["fixture.outer", "fixture.inner", "fixture.ghost"]);
    assert_eq!(
        stale.count("lock_order"),
        1,
        "fixture.ghost is catalogued but never acquired: {}",
        stale.render_human()
    );
    assert_eq!(stale.violations[0].path, "DESIGN.md");
}

#[test]
fn atomic_protocol_fires_and_suppresses() {
    let bad = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/atomic_protocol_bad.rs"),
    );
    assert_eq!(bad.count("atomic_protocol"), 1, "{}", bad.render_human());

    let sup = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/atomic_protocol_suppressed.rs"),
    );
    assert_eq!(sup.count("atomic_protocol"), 0, "{}", sup.render_human());
    assert_eq!(
        suppressed(&sup, "atomic_protocol"),
        1,
        "counted, not silent"
    );

    let ok = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/atomic_protocol_paired.rs"),
    );
    assert_eq!(
        ok.count("atomic_protocol"),
        0,
        "both halves present — a whole protocol: {}",
        ok.render_human()
    );
}

#[test]
fn blocking_under_lock_fires_and_suppresses() {
    let bad = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/blocking_under_lock_bad.rs"),
    );
    assert_eq!(
        bad.count("blocking_under_lock"),
        1,
        "{}",
        bad.render_human()
    );

    let sup = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/blocking_under_lock_suppressed.rs"),
    );
    assert_eq!(
        sup.count("blocking_under_lock"),
        0,
        "{}",
        sup.render_human()
    );
    assert_eq!(
        suppressed(&sup, "blocking_under_lock"),
        1,
        "counted, not silent"
    );

    let ok = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/blocking_under_lock_condvar.rs"),
    );
    assert_eq!(
        ok.count("blocking_under_lock"),
        0,
        "a condvar wait consuming its own guard is exempt: {}",
        ok.render_human()
    );
}

#[test]
fn suppression_inventory_carries_rule_site_and_reason() {
    let sup = check_one(
        "crates/demo/src/a.rs",
        include_str!("../fixtures/lock_order_suppressed.rs"),
    );
    assert_eq!(sup.suppressions.len(), 1, "{}", sup.render_human());
    let s = &sup.suppressions[0];
    assert_eq!(s.rule, "lock_order");
    assert_eq!(s.path, "crates/demo/src/a.rs");
    assert!(s.line > 0);
    assert_eq!(s.reason, "fixture: name intentionally omitted");
}
