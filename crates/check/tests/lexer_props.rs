//! Lexer totality properties.
//!
//! The whole tool rests on `lex` being *total* and *lossless*: any byte
//! soup a source file could contain must come back as a token stream
//! that tiles the input exactly, with every boundary on a char
//! boundary. These properties are exercised on random concatenations of
//! adversarial fragments — unterminated strings, nested block comments,
//! raw-string fences of varying arity, char literals hiding `//`, and
//! multibyte text — rather than on well-formed Rust only.

use mt_check::lexer::lex;
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragments chosen to sit on the lexer's decision boundaries.
const FRAGMENTS: &[&str] = &[
    "fn main() {}",
    "let x = 1;",
    "\"",
    "\\\"",
    "\"a string\"",
    "\"unterminated",
    "r\"raw\"",
    "r#\"fenced\"#",
    "r##\"double\"##",
    "r#\"missing fence",
    "r#ident",
    "b\"bytes\"",
    "b\"unterminated bytes",
    "b\"esc \\\" quote\"",
    "br#\"raw bytes\"#",
    "br##\"double fence\"##",
    "br#\"missing byte fence",
    "b'q'",
    "b'\\''",
    "b'",
    "'c'",
    "'\\''",
    "'\\\\'",
    "'lifetime",
    "'static ",
    "<'a>",
    "//",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper */ still open",
    "*/",
    "/*! inner doc */",
    "/// doc with \"quote\"\n",
    "'a' // '",
    "\n",
    "\t ",
    "0x1f_u64",
    "1e9",
    "Ordering::Relaxed",
    ".unwrap()",
    "é",
    "中文",
    "🦀",
    "\u{0}",
    "#![forbid(unsafe_code)]",
    "// check: allow(no_panic, \"reason\")",
    "{",
    "}",
];

fn soup(indices: Vec<u8>) -> String {
    indices
        .into_iter()
        .map(|i| FRAGMENTS[i as usize % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #[test]
    fn tokens_tile_arbitrary_fragment_soups(indices in vec(any::<u8>(), 0..64)) {
        let src = soup(indices);
        // `lex` must not panic on anything — reaching the assertions at
        // all is half the property.
        let tokens = lex(&src);

        let mut pos = 0usize;
        for t in &tokens {
            prop_assert_eq!(
                t.start, pos,
                "gap or overlap at byte {} of {:?}", pos, src
            );
            prop_assert!(t.end > t.start, "empty token at {} of {:?}", pos, src);
            prop_assert!(
                src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
                "token splits a char at {}..{} of {:?}", t.start, t.end, src
            );
            // text() slices by the recorded range; it must not panic and
            // must round-trip the exact bytes.
            prop_assert_eq!(t.text(&src), &src[t.start..t.end]);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len(), "tokens must cover {:?} entirely", src);
        prop_assert_eq!(tokens.is_empty(), src.is_empty());
    }

    #[test]
    fn lexing_is_deterministic(indices in vec(any::<u8>(), 0..48)) {
        let src = soup(indices);
        prop_assert_eq!(lex(&src), lex(&src));
    }

    #[test]
    fn byte_literal_kinds_carry_their_prefix(indices in vec(any::<u8>(), 0..64)) {
        use mt_check::lexer::TokKind;
        let src = soup(indices);
        for t in lex(&src) {
            let text = t.text(&src);
            match t.kind {
                TokKind::ByteStrLit | TokKind::ByteCharLit => {
                    prop_assert!(text.starts_with('b'), "{text:?} lexed as a byte literal");
                }
                TokKind::RawByteStrLit => {
                    prop_assert!(text.starts_with("br"), "{text:?} lexed as a raw byte string");
                }
                TokKind::StrLit => prop_assert!(text.starts_with('"'), "{text:?}"),
                TokKind::RawStrLit => prop_assert!(text.starts_with('r'), "{text:?}"),
                TokKind::CharLit => prop_assert!(text.starts_with('\''), "{text:?}"),
                _ => {}
            }
        }
    }
}
