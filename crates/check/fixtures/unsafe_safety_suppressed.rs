//! Fixture: an unjustified `unsafe` block silenced by pragma.

/// Reads the first byte of a raw pointer.
pub fn first_byte(p: *const u8) -> u8 {
    // check: allow(crate_hygiene, "fixture: suppression path under test")
    unsafe { *p }
}
