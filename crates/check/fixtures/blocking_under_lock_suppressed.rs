//! blocking_under_lock fixture: the pragma'd twin of
//! `blocking_under_lock_bad.rs`.

use std::sync::Mutex;
use std::thread::JoinHandle;

/// Joins the worker under the lock, with the hazard argued away.
pub fn stop(state: &Mutex<u64>, worker: JoinHandle<()>) {
    let g = state.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.state
    // check: allow(blocking_under_lock, "fixture: worker never takes fixture.state")
    let _ = worker.join();
    drop(g);
}
