//! Fixture: a std `HashMap` in a hot-path crate.
use std::collections::HashMap;

/// Builds a SipHash map on the hot path (and trips hash_policy).
pub fn table() -> HashMap<u32, u64> {
    HashMap::new()
}
