//! Fixture: a pragma with an empty reason must NOT suppress.

/// Unwraps under a reasonless pragma (still trips the rule).
pub fn first(v: &[u32]) -> u32 {
    // check: allow(no_panic, "")
    *v.first().unwrap()
}
