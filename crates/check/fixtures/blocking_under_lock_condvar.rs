//! blocking_under_lock fixture: a condvar wait that consumes its own
//! guard is the one blocking call that must NOT fire — atomically
//! releasing the guard is the whole point of a condvar.

use std::sync::{Condvar, Mutex};

/// Blocks until the cell is nonzero.
pub fn wait_nonzero(m: &Mutex<u64>, cv: &Condvar) -> u64 {
    let mut g = m.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.cell
    while *g == 0 {
        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
    *g
}
