//! Fixture: an `unsafe` block with no safety argument.

/// Reads the first byte of a raw pointer.
pub fn first_byte(p: *const u8) -> u8 {
    unsafe { *p }
}
