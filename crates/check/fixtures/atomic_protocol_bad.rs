//! atomic_protocol fixture: a Release publish nobody ever acquires.

use std::sync::atomic::{AtomicBool, Ordering};

/// A readiness latch with a missing reader.
pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    /// Publishes readiness; no Acquire load pairs with this anywhere.
    pub fn publish(&self) {
        // ordering: Release publish for the (missing) Acquire reader.
        self.ready.store(true, Ordering::Release);
    }
}
