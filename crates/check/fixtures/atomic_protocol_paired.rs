//! atomic_protocol fixture: a whole Release/Acquire protocol — both
//! sides present on the same symbol — must not fire.

use std::sync::atomic::{AtomicBool, Ordering};

/// A readiness latch with both halves of the protocol.
pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    /// Publishes readiness.
    pub fn publish(&self) {
        // ordering: Release pairs with the Acquire in `is_ready`.
        self.ready.store(true, Ordering::Release);
    }

    /// Observes the publish.
    pub fn is_ready(&self) -> bool {
        // ordering: Acquire pairs with the Release in `publish`.
        self.ready.load(Ordering::Acquire)
    }
}
