//! Fixture: an uncatalogued metric, suppressed at the registration site.

/// Registers an experimental series under an explicit suppression.
pub fn register(reg: &mt_obs::MetricsRegistry) {
    // check: allow(metric_names, "fixture: experimental series, not yet part of the documented surface")
    reg.counter("mt_fixture_unlisted_total", "not in the catalogue");
}
