//! Fixture: the same site, suppressed by pragma.
use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps the counter under an explicit suppression.
pub fn bump(c: &AtomicU64) {
    // check: allow(atomics_ordering, "fixture: ordering argued in the suite, not inline")
    c.fetch_add(1, Ordering::Relaxed);
}
