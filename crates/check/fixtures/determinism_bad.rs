//! Fixture: a wall-clock read inside pipeline code.
use std::time::Instant;

/// Reads the clock in pipeline code (and trips the determinism rule).
pub fn stamp() -> Instant {
    Instant::now()
}
