//! Fixture: a per-/24 keyed map creeping back into mt-flow.
use mt_types::FxHashMap;

/// Accumulates per-block counters in a hashmap (and trips
/// columnar_policy: this state belongs in the columnar store).
pub fn per_block_counters() -> FxHashMap<u32, u64> {
    FxHashMap::default()
}
