//! Fixture: a crate root taking the deny-level escape hatch silently.
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// A public item so the file is a plausible crate root.
pub fn answer() -> u32 {
    42
}
