//! lock_order fixture: the pragma'd twin of `lock_order_bad.rs`.

use std::sync::Mutex;

/// Counts things behind a lock nobody named, with the omission argued.
pub fn bump(m: &Mutex<u64>) {
    // check: allow(lock_order, "fixture: name intentionally omitted")
    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
    *g += 1;
}
