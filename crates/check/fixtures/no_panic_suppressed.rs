//! Fixture: the same unwrap, suppressed with a stated invariant.

/// Unwraps under an explicit suppression.
pub fn first(v: &[u32]) -> u32 {
    // check: allow(no_panic, "fixture: callers guarantee a non-empty slice")
    *v.first().unwrap()
}
