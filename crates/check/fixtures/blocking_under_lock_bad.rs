//! blocking_under_lock fixture: joining a thread while holding a lock.

use std::sync::Mutex;
use std::thread::JoinHandle;

/// Joins the worker with the state lock still held — every other taker
/// of `fixture.state` now waits on the worker too.
pub fn stop(state: &Mutex<u64>, worker: JoinHandle<()>) {
    let g = state.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.state
    let _ = worker.join();
    drop(g);
}
