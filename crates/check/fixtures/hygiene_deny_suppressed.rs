//! Fixture: the deny-level escape hatch, taken with a stated reason.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// check: allow(crate_hygiene, "fixture: one audited sys module needs scoped unsafe for FFI")

/// A public item so the file is a plausible crate root.
pub fn answer() -> u32 {
    42
}
