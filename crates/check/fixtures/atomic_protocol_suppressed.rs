//! atomic_protocol fixture: the pragma'd twin of `atomic_protocol_bad.rs`.

use std::sync::atomic::{AtomicBool, Ordering};

/// A readiness latch whose reader lives outside the workspace.
pub struct Flag {
    ready: AtomicBool,
}

impl Flag {
    /// Publishes readiness for an out-of-tree reader.
    pub fn publish(&self) {
        // ordering: Release publish for the out-of-tree Acquire reader.
        // check: allow(atomic_protocol, "fixture: the reader is out of tree")
        self.ready.store(true, Ordering::Release);
    }
}
