//! Fixture: a crate root missing both hygiene attributes.

/// A public item so the file is a plausible crate root.
pub fn answer() -> u32 {
    42
}
