//! lock_order fixture: an acquisition with no `// lock:` name fires.

use std::sync::Mutex;

/// Counts things behind a lock nobody named.
pub fn bump(m: &Mutex<u64>) {
    let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
    *g += 1;
}
