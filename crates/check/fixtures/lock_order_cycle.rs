//! lock_order fixture: two locks taken in both orders — a textbook
//! deadlock the cycle detector must flag exactly once.

use std::sync::Mutex;

/// Two locks with no agreed order.
pub struct Pair {
    /// First lock.
    pub a: Mutex<u64>,
    /// Second lock.
    pub b: Mutex<u64>,
}

/// Takes `fixture.a` then `fixture.b`.
pub fn ab(p: &Pair) {
    let ga = p.a.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.a
    let gb = p.b.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.b
    drop(gb);
    drop(ga);
}

/// Takes `fixture.b` then `fixture.a`.
pub fn ba(p: &Pair) {
    let gb = p.b.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.b
    let ga = p.a.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.a
    drop(ga);
    drop(gb);
}
