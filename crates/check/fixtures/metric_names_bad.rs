//! Fixture: registers a metric the catalogue does not list.

/// Registers `mt_fixture_unlisted_total` (and trips metric_names).
pub fn register(reg: &mt_obs::MetricsRegistry) {
    reg.counter("mt_fixture_unlisted_total", "not in the catalogue");
}
