//! Fixture: a std `HashMap` allowed where DoS-resistance matters.
// check: allow(hash_policy, "fixture: keys are attacker-controlled here, SipHash is the point")
use std::collections::HashMap;

/// Builds a SipHash map deliberately.
pub fn size() -> usize {
    // check: allow(hash_policy, "fixture: keys are attacker-controlled here, SipHash is the point")
    let m: HashMap<u32, u64> = HashMap::new();
    m.len()
}
