//! lock_order fixture: a clean outer-then-inner nesting, fully
//! annotated, for exercising the catalogue checks in both directions.

use std::sync::Mutex;

/// A pair of locks with a declared order.
pub struct Nest {
    /// Taken first.
    pub outer: Mutex<u64>,
    /// Taken second, under `outer`.
    pub inner: Mutex<u64>,
}

/// Takes `fixture.outer` then `fixture.inner`, in that order.
pub fn nested(n: &Nest) {
    let go = n.outer.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.outer
    let gi = n.inner.lock().unwrap_or_else(|e| e.into_inner()); // lock: fixture.inner
    drop(gi);
    drop(go);
}
