//! Fixture: the same site, satisfied by an `// ordering:` comment.
use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps the counter with its ordering argued inline.
pub fn bump(c: &AtomicU64) {
    // ordering: Relaxed — fixture counter; single monotone cell, nothing published.
    c.fetch_add(1, Ordering::Relaxed);
}
