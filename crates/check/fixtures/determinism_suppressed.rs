//! Fixture: a wall-clock read argued to be output-inert.
use std::time::Instant;

/// Reads the clock under an explicit suppression.
pub fn stamp() -> Instant {
    // check: allow(determinism, "fixture: feeds a progress metric only; no output reads it")
    Instant::now()
}
