//! Fixture: a crate root opting out of the hygiene attrs by pragma.
// check: allow(crate_hygiene, "fixture: demo crate intentionally ships without the attrs")

/// A public item so the file is a plausible crate root.
pub fn answer() -> u32 {
    42
}
