//! Fixture: `.unwrap()` in library code.

/// Unwraps in a library path (and trips the no_panic rule).
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
