//! Fixture: a deliberate sparse per-/24 map with a pragma.
use mt_types::FxHashMap;

/// Builds a sparse side table deliberately.
pub fn sparse_side_table() -> usize {
    // check: allow(columnar_policy, "fixture: a genuinely sparse side table, dense rows would waste the whole column")
    let m: FxHashMap<u32, u64> = FxHashMap::default();
    m.len()
}
