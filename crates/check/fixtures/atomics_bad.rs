//! Fixture: an `Ordering` site with no adjacent justification.
use std::sync::atomic::{AtomicU64, Ordering};

/// Bumps the counter (and trips the atomics_ordering rule).
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
