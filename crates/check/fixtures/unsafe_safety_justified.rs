//! Fixture: an `unsafe` block carrying its safety argument.

/// Reads the first byte of a raw pointer.
pub fn first_byte(p: *const u8) -> u8 {
    // safety: the caller guarantees `p` is valid for reads of one byte.
    unsafe { *p }
}
