//! The ten project-specific rules.
//!
//! Each rule exists because this codebase's headline guarantee —
//! exactness under concurrency — has already been threatened by the
//! class of defect the rule targets (see DESIGN.md §"Static analysis"
//! for the full rationale). Seven token-level rules live here; the
//! three concurrency analyses (`lock_order`, `atomic_protocol`,
//! `blocking_under_lock`) live in [`crate::concurrency`] because they
//! need the [`crate::syntax`] scope/call layer. Every rule honours the
//! `// check: allow(<rule>, <reason>)` pragma on the violating line or
//! the line directly above; file-scoped rules accept the pragma
//! anywhere in the file. A pragma with an empty reason never
//! suppresses: the reason *is* the point.

use crate::report::{Report, RuleSummary};
use crate::workspace::{Role, SourceFile, Workspace};

/// Stable rule identifiers, as used in pragmas and the JSON report.
pub const RULE_IDS: [&str; 10] = [
    "atomics_ordering",
    "no_panic",
    "crate_hygiene",
    "hash_policy",
    "determinism",
    "metric_names",
    "columnar_policy",
    "lock_order",
    "atomic_protocol",
    "blocking_under_lock",
];

/// One-line description per rule, in [`RULE_IDS`] order.
pub const RULE_DESCRIPTIONS: [&str; 10] = [
    "every std::sync::atomic Ordering use site carries an adjacent `// ordering:` justification",
    "no unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test, non-bench library code",
    "crate roots declare #![warn(missing_docs)] and forbid unsafe code (or deny it with a pragma); every `unsafe` token needs an adjacent `// safety:` comment",
    "std HashMap/HashSet are forbidden in mt-flow/mt-types/mt-stream library code; use FxHashMap",
    "SystemTime::now/Instant::now are forbidden outside mt-obs and bench code (bit-identical replay)",
    "metric names registered in code and DESIGN.md's catalogue must match exactly, both directions",
    "u32-keyed FxHashMaps in mt-flow library code need a pragma; the columnar store is the default",
    "every lock acquisition carries a `// lock: <name>` annotation; the nested-acquisition graph is acyclic and matches DESIGN.md's lock-order catalogue, both directions",
    "Release/AcqRel writes and Acquire/AcqRel reads of each atomic symbol pair up workspace-wide; half-fenced protocols are flagged on the present side",
    "no blocking call (queue push, condvar wait, io/socket syscalls, JoinHandle::join) while a lock guard is live in an enclosing scope",
];

/// Crates whose library code must use `FxHashMap` on hot paths.
const HASH_POLICY_CRATES: [&str; 3] = ["flow", "types", "stream"];

/// Crates allowed to read wall clocks (the observability layer times
/// spans; the bench harness times everything).
const CLOCK_EXEMPT_CRATES: [&str; 2] = ["obs", "bench"];

/// Crates exempt from the no-panic rule (the bench harness is
/// operator-facing tooling, not pipeline code).
const PANIC_EXEMPT_CRATES: [&str; 1] = ["bench"];

/// Runs every rule over the workspace and assembles the report.
pub fn run_all(ws: &Workspace) -> Report {
    let mut report = Report::new(&ws.root, ws.files.len());
    for file in &ws.files {
        atomics_ordering(file, &mut report);
        no_panic(file, &mut report);
        crate_hygiene(file, &mut report);
        hash_policy(file, &mut report);
        determinism(file, &mut report);
        columnar_policy(file, &mut report);
    }
    metric_names(ws, &mut report);
    crate::concurrency::check(ws, &mut report);
    report.finish();
    report
}

/// Returns the summaries for all ten rules with zero counts — the
/// schema skeleton the report starts from.
pub fn rule_summaries() -> Vec<RuleSummary> {
    RULE_IDS
        .iter()
        .zip(RULE_DESCRIPTIONS.iter())
        .map(|(id, d)| RuleSummary {
            id: (*id).to_owned(),
            description: (*d).to_owned(),
            violations: 0,
            suppressed: 0,
        })
        .collect()
}

/// The atomic-ordering variants of `std::sync::atomic::Ordering`.
const ORDERING_VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule 1: every `Ordering::<variant>` use site must carry an
/// `// ordering:` justification on the same line or in the contiguous
/// comment block directly above.
///
/// Relaxed atomics next to claims like "consistent snapshots" are
/// exactly how silent accounting drift starts; writing the argument
/// down next to the operation keeps it honest and reviewable.
fn atomics_ordering(file: &SourceFile, report: &mut Report) {
    let code: Vec<_> = file.code_tokens().collect();
    let mut flagged_lines = Vec::new();
    for w in code.windows(4) {
        let [a, b, c, d] = w else { continue };
        if a.text(&file.text) != "Ordering"
            || b.text(&file.text) != ":"
            || c.text(&file.text) != ":"
            || !ORDERING_VARIANTS.contains(&d.text(&file.text))
        {
            continue;
        }
        if file.in_test_region(a.start) {
            continue;
        }
        let (line, col) = file.line_col(a.start);
        if flagged_lines.contains(&line) {
            continue; // one justification covers the whole line
        }
        flagged_lines.push(line);
        if has_adjacent_comment(file, line, "ordering:") {
            continue;
        }
        report.record(
            file,
            "atomics_ordering",
            line,
            col,
            format!(
                "Ordering::{} without an adjacent `// ordering:` justification comment",
                d.text(&file.text)
            ),
        );
    }
}

/// Whether `line` (1-based) has a comment starting with `marker` on the
/// line itself or in the run of comment-only lines directly above it.
fn has_adjacent_comment(file: &SourceFile, line: usize, marker: &str) -> bool {
    let line_has = |l: usize| {
        file.comments_on_line(l)
            .iter()
            .any(|c| c.starts_with(marker))
    };
    if line_has(line) {
        return true;
    }
    let mut l = line;
    while l > 1 && file.line_is_comment_only(l - 1) {
        l -= 1;
        if line_has(l) {
            return true;
        }
    }
    false
}

/// Method names that panic on the error/none path.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
/// Macros that panic unconditionally when reached.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Rule 2: library code must not contain panic-family calls.
///
/// The pipeline's contract is that malformed input surfaces as counted
/// errors (decode-error counters, `WireError` values), never as a dead
/// ingest worker: a panicking worker silently breaks the accounting
/// identities every equivalence suite relies on. A retained call needs
/// a pragma stating the invariant that makes the panic unreachable.
fn no_panic(file: &SourceFile, report: &mut Report) {
    if file.role != Role::Lib || PANIC_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code: Vec<_> = file.code_tokens().collect();
    for (i, t) in code.iter().enumerate() {
        let text = t.text(&file.text);
        let next = code.get(i + 1).map(|n| n.text(&file.text));
        let prev = i.checked_sub(1).map(|p| code[p].text(&file.text));
        let is_panic_method =
            PANIC_METHODS.contains(&text) && prev == Some(".") && next == Some("(");
        let is_panic_macro = PANIC_MACROS.contains(&text) && next == Some("!");
        if !(is_panic_method || is_panic_macro) {
            continue;
        }
        if file.in_test_region(t.start) {
            continue;
        }
        let (line, col) = file.line_col(t.start);
        let shown = if is_panic_macro {
            format!("{text}!")
        } else {
            format!(".{text}()")
        };
        report.record(
            file,
            "no_panic",
            line,
            col,
            format!(
                "`{shown}` in library code; return an error or add a pragma stating the invariant"
            ),
        );
    }
}

/// Rule 3: crate roots must forbid unsafe code and warn on missing
/// docs, so the guarantees hold workspace-wide by construction.
///
/// One escape hatch exists for code that genuinely needs FFI (mt-serve's
/// `sys` module wraps epoll): a crate root may downgrade to
/// `#![deny(unsafe_code)]` — which, unlike `forbid`, an inner module can
/// override with `#[allow(unsafe_code)]` — but only with a file-scoped
/// pragma stating why, and then every `unsafe` token in the workspace's
/// library code must carry an adjacent `// safety:` comment arguing the
/// invariant that makes it sound.
fn crate_hygiene(file: &SourceFile, report: &mut Report) {
    unsafe_safety_audit(file, report);
    let is_crate_root = file.rel_path == "src/lib.rs"
        || (file.rel_path.starts_with("crates/") && file.rel_path.ends_with("/src/lib.rs"));
    if !is_crate_root {
        return;
    }
    let mut missing_attr = |needle: &str| {
        if let Some(p) = file.suppression_anywhere_for("crate_hygiene") {
            let (line, reason) = (p.line, p.reason.clone());
            report.suppress_site("crate_hygiene", &file.rel_path, line, &reason);
        } else {
            report.record_unsuppressable(
                file,
                "crate_hygiene",
                1,
                1,
                format!("crate root is missing `{needle}`"),
            );
        }
    };
    if !crate_root_has_attr(file, "#![warn(missing_docs)]") {
        missing_attr("#![warn(missing_docs)]");
    }
    if !crate_root_has_attr(file, "#![forbid(unsafe_code)]") {
        if !crate_root_has_attr(file, "#![deny(unsafe_code)]") {
            missing_attr("#![forbid(unsafe_code)]");
        } else if let Some(p) = file.suppression_anywhere_for("crate_hygiene") {
            // The deny-level escape hatch is deliberate and reasoned.
            let (line, reason) = (p.line, p.reason.clone());
            report.suppress_site("crate_hygiene", &file.rel_path, line, &reason);
        } else {
            report.record_unsuppressable(
                file,
                "crate_hygiene",
                1,
                1,
                "crate root downgrades to `#![deny(unsafe_code)]` without a pragma stating why"
                    .to_owned(),
            );
        }
    }
}

/// The `unsafe`-audit half of rule 3: every `unsafe` token in non-test
/// library code needs a `// safety:` justification on its line or in
/// the comment block directly above — the argument for why the compiler
/// can't check this one is part of the code, reviewable where it bites.
fn unsafe_safety_audit(file: &SourceFile, report: &mut Report) {
    if file.role != Role::Lib {
        return;
    }
    let mut flagged_lines = Vec::new();
    for t in file.code_tokens() {
        if t.text(&file.text) != "unsafe" || file.in_test_region(t.start) {
            continue;
        }
        let (line, col) = file.line_col(t.start);
        if flagged_lines.contains(&line) {
            continue; // one justification covers the whole line
        }
        flagged_lines.push(line);
        if has_adjacent_comment(file, line, "safety:") {
            continue;
        }
        report.record(
            file,
            "crate_hygiene",
            line,
            col,
            "`unsafe` without an adjacent `// safety:` justification comment".to_owned(),
        );
    }
}

/// Whether the crate root declares the given inner attribute, compared
/// token-wise so formatting cannot defeat the check.
fn crate_root_has_attr(file: &SourceFile, attr: &str) -> bool {
    let want: Vec<String> = crate::lexer::lex(attr)
        .iter()
        .map(|t| t.text(attr).to_owned())
        .collect();
    let code: Vec<_> = file.code_tokens().collect();
    code.windows(want.len())
        .any(|w| w.iter().zip(&want).all(|(t, s)| t.text(&file.text) == *s))
}

/// Rule 4: hot-path crates must not fall back to `std::collections`
/// maps — `mt_types::FxHashMap`/`FxHashSet` (PR 4) are the standard
/// there, and a stray SipHash map on the ingest path is a silent 2×
/// regression the benches only catch after the fact.
fn hash_policy(file: &SourceFile, report: &mut Report) {
    if file.role != Role::Lib || !HASH_POLICY_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code: Vec<_> = file.code_tokens().collect();
    for t in &code {
        let text = t.text(&file.text);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        if file.in_test_region(t.start) {
            continue;
        }
        let (line, col) = file.line_col(t.start);
        report.record(
            file,
            "hash_policy",
            line,
            col,
            format!("std `{text}` in a hot-path crate; use mt_types::Fx{text} (or pragma the definition site)"),
        );
    }
}

/// Rule 5: pipeline crates must not read wall clocks.
///
/// Streamed, sharded, and instrumented runs are bit-identical to the
/// serial batch *because* all time is simulated (`SimTime` watermarks);
/// a single `Instant::now` influencing control flow would make replay
/// runs diverge unreproducibly.
fn determinism(file: &SourceFile, report: &mut Report) {
    if CLOCK_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let code: Vec<_> = file.code_tokens().collect();
    for w in code.windows(4) {
        let [a, b, c, d] = w else { continue };
        let base = a.text(&file.text);
        if (base != "Instant" && base != "SystemTime")
            || b.text(&file.text) != ":"
            || c.text(&file.text) != ":"
            || d.text(&file.text) != "now"
        {
            continue;
        }
        if file.in_test_region(a.start) {
            continue;
        }
        let (line, col) = file.line_col(a.start);
        report.record(
            file,
            "determinism",
            line,
            col,
            format!("`{base}::now` in pipeline code breaks bit-identical replay; use SimTime, or pragma if the value never reaches pipeline output"),
        );
    }
}

/// Rule 7: per-/24 keyed hashmaps in mt-flow library code must be
/// deliberate.
///
/// Since the columnar refactor, the scalable representation of
/// per-block aggregates is the slot-indexed `ColumnarStats` store;
/// `FxHashMap<u32, ...>` is kept only as the proptest oracle and for
/// genuinely sparse side tables. A new block-keyed map quietly
/// reintroduces per-entry overheads the refactor removed, so each one
/// must carry a pragma stating why a map is the right shape.
fn columnar_policy(file: &SourceFile, report: &mut Report) {
    if file.role != Role::Lib || file.crate_name != "flow" {
        return;
    }
    let code: Vec<_> = file.code_tokens().collect();
    for w in code.windows(3) {
        let [a, b, c] = w else { continue };
        if a.text(&file.text) != "FxHashMap"
            || b.text(&file.text) != "<"
            || c.text(&file.text) != "u32"
        {
            continue;
        }
        if file.in_test_region(a.start) {
            continue;
        }
        let (line, col) = file.line_col(a.start);
        report.record(
            file,
            "columnar_policy",
            line,
            col,
            "u32-keyed FxHashMap in mt-flow library code; per-/24 state belongs in ColumnarStats — pragma the site if a sparse map is deliberate".to_owned(),
        );
    }
}

/// Registration methods on `mt_obs::MetricsRegistry`; the first string
/// argument is the metric name.
const REGISTRATION_METHODS: [&str; 6] = [
    "counter",
    "counter_with",
    "gauge",
    "gauge_with",
    "histogram",
    "histogram_with",
];

/// Rule 6: the metric-name catalogue in DESIGN.md and the names
/// actually registered in code must agree, both directions, so the
/// documented observability surface can never drift from the real one.
fn metric_names(ws: &Workspace, report: &mut Report) {
    let Some(design) = &ws.design_md else {
        return; // fixture workspaces without a DESIGN.md skip this rule
    };
    let Some(catalogue) = parse_catalogue(design) else {
        return;
    };

    // Code side: every lexical registration site. Test-role files are
    // skipped: a throwaway metric registered inside a test does not
    // belong in the documented observability surface.
    let mut registered: Vec<(usize, usize, usize, String)> = Vec::new(); // (file, line, col, name)
    for (fi, file) in ws.files.iter().enumerate() {
        if file.role == Role::Test {
            continue;
        }
        let code: Vec<_> = file.code_tokens().collect();
        for (i, t) in code.iter().enumerate() {
            if !REGISTRATION_METHODS.contains(&t.text(&file.text))
                || i == 0
                || code[i - 1].text(&file.text) != "."
                || code.get(i + 1).map(|n| n.text(&file.text)) != Some("(")
            {
                continue;
            }
            let Some(arg) = code.get(i + 2) else { continue };
            let arg_text = arg.text(&file.text);
            let Some(name) = arg_text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
                continue; // name passed through a variable; out of lexical reach
            };
            if !name.starts_with("mt_") || file.in_test_region(t.start) {
                continue;
            }
            let (line, col) = file.line_col(arg.start);
            registered.push((fi, line, col, name.to_owned()));
        }
    }

    for (fi, line, col, name) in &registered {
        if !catalogue.names.iter().any(|(n, _)| n == name) {
            report.record(
                &ws.files[*fi],
                "metric_names",
                *line,
                *col,
                format!(
                    "metric `{name}` is registered in code but missing from DESIGN.md's catalogue"
                ),
            );
        }
    }
    for (name, design_line) in &catalogue.names {
        let in_code = registered.iter().any(|(_, _, _, n)| n == name)
            || ws.files.iter().any(|f| {
                f.tokens.iter().any(|t| {
                    matches!(t.kind, crate::lexer::TokKind::StrLit)
                        && !f.in_test_region(t.start)
                        && t.text(&f.text).trim_matches('"') == name
                })
            });
        if !in_code {
            report.record_doc(
                "DESIGN.md",
                "metric_names",
                *design_line,
                format!("catalogue metric `{name}` does not appear anywhere in scanned code"),
            );
        }
    }
}

struct Catalogue {
    /// `(name, 1-based DESIGN.md line)`.
    names: Vec<(String, usize)>,
}

/// Parses the metric catalogue table between the
/// `<!-- mt-check:metrics-catalogue:begin/end -->` markers: every
/// backtick span in the first column, with `{a,b,c}` alternation
/// expanded (`mt_stream_{bytes,messages}_total` → two names).
fn parse_catalogue(design: &str) -> Option<Catalogue> {
    let mut names = Vec::new();
    let mut inside = false;
    for (i, line) in design.lines().enumerate() {
        if line.contains("mt-check:metrics-catalogue:begin") {
            inside = true;
            continue;
        }
        if line.contains("mt-check:metrics-catalogue:end") {
            inside = false;
            continue;
        }
        if !inside || !line.trim_start().starts_with('|') {
            continue;
        }
        let first_cell = line.trim_start().trim_start_matches('|');
        let Some(cell) = first_cell.split('|').next() else {
            continue;
        };
        let mut rest = cell;
        while let Some(tick) = rest.find('`') {
            let after = &rest[tick + 1..];
            let Some(close) = after.find('`') else { break };
            let span = &after[..close];
            for name in expand_braces(span) {
                if name.starts_with("mt_")
                    && name
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
                {
                    names.push((name, i + 1));
                }
            }
            rest = &after[close + 1..];
        }
    }
    if names.is_empty() {
        None
    } else {
        Some(Catalogue { names })
    }
}

/// Expands one `{a,b,c}` alternation group, e.g.
/// `mt_q_{pushed,popped}_total` → `[mt_q_pushed_total, mt_q_popped_total]`.
fn expand_braces(span: &str) -> Vec<String> {
    match (span.find('{'), span.find('}')) {
        (Some(o), Some(c)) if o < c => {
            let (head, tail) = (&span[..o], &span[c + 1..]);
            span[o + 1..c]
                .split(',')
                .map(|alt| format!("{head}{}{tail}", alt.trim()))
                .collect()
        }
        _ => vec![span.to_owned()],
    }
}
