//! mt-check: workspace-native static analysis for the meta-telescope.
//!
//! The pipeline's headline guarantee — sharded, streamed, and
//! instrumented runs stay *bit-identical* to the serial batch — rests
//! on invariants no stock lint knows about: atomics whose orderings
//! must be argued, library code that must never panic mid-ingest,
//! hot-path crates that must not regress to SipHash maps, pipeline
//! code that must never read a wall clock, a documented metric
//! catalogue that must match what the code registers, and — since the
//! multi-lane rework — the concurrency protocols themselves: a
//! machine-checked lock-order catalogue, whole release/acquire
//! protocols, and no blocking calls under a live guard. This crate
//! enforces all of that offline, with a hand-rolled lexer plus a
//! lightweight brace-matched syntax layer (crates.io, and therefore
//! `syn`, is unavailable here) and no I/O beyond reading the
//! workspace.
//!
//! Three enforcement points share this library:
//!
//! - the `mt-check` binary (`cargo run -p mt-check`) for humans and CI,
//!   with `--json PATH` emitting the validated report document;
//! - the umbrella crate's `tests/static_analysis.rs`, which fails
//!   `cargo test` on any violation and prints the human report;
//! - the CI job, which validates `check_report.json` the same way the
//!   hotpath bench document is validated.
//!
//! Violations are suppressed — never silently — with
//! `// check: allow(<rule>, <reason>)` on the offending line or the
//! line above; an empty reason does not suppress. See DESIGN.md
//! §"Static analysis" for each rule's rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod syntax;
pub mod workspace;

pub use report::{Report, RuleSummary, Suppression, Violation};
pub use rules::{run_all, RULE_DESCRIPTIONS, RULE_IDS};
pub use workspace::{SourceFile, Workspace};

/// Checks the workspace rooted at `root` and returns the report.
pub fn check_root(root: &std::path::Path) -> std::io::Result<Report> {
    Ok(run_all(&Workspace::from_root(root)?))
}
