//! The `mt-check` binary: run the workspace rules from the command line.
//!
//! ```text
//! mt-check [--root DIR] [--json PATH] [--quiet]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 on violations, 2 on usage or
//! I/O errors. `--json` writes the machine-readable report document
//! (the one CI validates) in addition to the human output.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a path"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: mt-check [--root DIR] [--json PATH] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    // Default to the workspace root even when invoked from a crate dir
    // (cargo run sets the cwd to the invocation dir, not the root).
    if root.as_os_str() == "." && !root.join("Cargo.toml").exists() {
        if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
            if let Some(ws) = PathBuf::from(manifest_dir)
                .parent()
                .and_then(|p| p.parent())
            {
                root = ws.to_path_buf();
            }
        }
    }

    let report = match mt_check::check_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mt-check: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("mt-check: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet || !report.is_clean() {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("mt-check: {msg}");
    eprintln!("usage: mt-check [--root DIR] [--json PATH] [--quiet]");
    ExitCode::from(2)
}
