//! The three concurrency analyses: `lock_order`, `atomic_protocol`,
//! and `blocking_under_lock`.
//!
//! These rules exist because the multi-lane ingest architecture (mt-serve
//! sharded loops feeding `MultiStreamService` through a shared window
//! gate) put real lock and atomic protocols on the hot path, and the
//! defect classes they target — lock-order inversion, half-fenced
//! publishes, syscalls made with a guard held — do not announce
//! themselves in any single line of code. All three are *lexical*
//! analyses over the [`crate::syntax`] layer: no type information, no
//! alias analysis. The deal that makes that sound enough to enforce is
//! the `// lock: <name>` annotation discipline — every acquisition site
//! names the lock it takes, the analyzer builds the workspace
//! acquisition graph from names, and DESIGN.md declares the legal total
//! order between `mt-check:lock-catalogue` markers. What the lexical
//! scan cannot see (a lock taken behind a method call, a guard smuggled
//! through a struct field) is out of scope by construction and
//! documented as such in DESIGN.md §10.
//!
//! Heuristics, stated plainly:
//!
//! - An **acquisition** is `.lock(...)`, an empty-argument `.read()` /
//!   `.write()` (RwLock), `sync::lock(...)` (the mt-stream poisoning
//!   helpers), or a bare call named `lock` / `lock_*`.
//! - A **guard** is live from just after the acquisition's closing `)`
//!   until: the end of the statement (temporaries, including
//!   `lock(x).field` projections); or, for `let [mut] g = <acq>;`
//!   bindings, until `drop(g)` or the end of the innermost enclosing
//!   scope.
//! - **Edges** come from an acquisition inside a live guard's range, and
//!   from *bare* calls inside a live guard's range to same-crate
//!   functions whose bodies (transitively, through bare calls) acquire
//!   named locks. Method and path calls deliberately contribute no
//!   summaries: resolving `x.take()` by name alone would invent edges.
//! - The reserved name `generic` marks a helper whose lock identity
//!   varies per caller (`mt_stream::sync::lock`'s own `.lock()` call);
//!   such sites satisfy the annotation requirement but join no graph.
//! - Condvar waits (`wait`, `wait_while`, ...) that receive the guard
//!   variable as an argument atomically release it, so that guard is
//!   exempt at that site; every other blocking call under any live
//!   guard fires `blocking_under_lock`.

use crate::report::Report;
use crate::syntax::{CallKind, CallSite, SyntaxIndex};
use crate::workspace::{Role, SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// The reserved `// lock:` name for helpers whose lock identity varies
/// per caller; satisfies the annotation rule, joins no graph.
pub const GENERIC_LOCK_NAME: &str = "generic";

/// One lock-acquisition site with its resolved guard extent.
struct Acq {
    /// Byte offset of the callee identifier.
    offset: usize,
    /// Byte offset one past the closing `)` — the guard exists from
    /// here.
    acquired: usize,
    /// Byte offset where the guard dies.
    end: usize,
    /// 1-based line/col of the site.
    line: usize,
    col: usize,
    /// The `// lock:` annotation, when present and well-formed.
    name: Option<String>,
    /// The `let`-bound guard variable, when the site binds one.
    var: Option<String>,
}

impl Acq {
    fn named(&self) -> Option<&str> {
        match self.name.as_deref() {
            Some(GENERIC_LOCK_NAME) | None => None,
            s => s,
        }
    }
}

/// Per-file analysis state shared by the three rules.
struct FileAnalysis {
    ix: SyntaxIndex,
    acqs: Vec<Acq>,
}

/// One nested-acquisition edge in the workspace lock graph.
struct Edge {
    from: String,
    to: String,
    /// File index, 1-based line/col of the inner site.
    fi: usize,
    line: usize,
    col: usize,
}

/// Runs the three concurrency rules over the workspace.
pub fn check(ws: &Workspace, report: &mut Report) {
    let analyses: Vec<FileAnalysis> = ws.files.iter().map(analyze_file).collect();
    check_lock_order(ws, &analyses, report);
    atomic_protocol(ws, &analyses, report);
    blocking_under_lock(ws, &analyses, report);
}

/// Whether a call site is a lock acquisition.
fn is_acquisition(c: &CallSite) -> bool {
    match c.kind {
        CallKind::Method => {
            c.callee == "lock" || ((c.callee == "read" || c.callee == "write") && c.empty_args)
        }
        CallKind::Path => c.callee == "lock" && c.receiver == "sync",
        CallKind::Bare => c.callee == "lock" || c.callee.starts_with("lock_"),
    }
}

/// Builds the per-file syntax index and acquisition list.
fn analyze_file(file: &SourceFile) -> FileAnalysis {
    let ix = SyntaxIndex::build(&file.text, &file.tokens);
    let mut acqs = Vec::new();
    for c in ix.calls.iter() {
        if !is_acquisition(c) {
            continue;
        }
        let offset = c.offset(&ix);
        if file.in_test_region(offset) {
            continue;
        }
        let acquired = c.close_offset(&ix);
        let (line, col) = file.line_col(offset);
        let name = annotated_lock_name(file, line);

        // Guard binding: `let [mut] g = <acquisition>;` binds a guard
        // variable living to drop(g) or end of scope; anything else is
        // a temporary dying at the end of its statement. Poison-handling
        // adapters chained onto the acquisition (`.expect(...)`,
        // `.unwrap()`, `.unwrap_or_else(|e| e.into_inner())`) still
        // yield the guard, so the chain is skipped before looking for
        // the `;`; any other projection (`.tracker`, `.pop()`) means
        // the guard itself dies with the statement.
        let mut k = c.close + 1;
        loop {
            let is_adapter = ix.code.get(k).map(|t| t.text(&file.text)) == Some(".")
                && ix.code.get(k + 1).is_some_and(|t| {
                    matches!(t.text(&file.text), "unwrap" | "expect" | "unwrap_or_else")
                })
                && ix.code.get(k + 2).map(|t| t.text(&file.text)) == Some("(");
            if !is_adapter {
                break;
            }
            let mut depth = 0usize;
            k += 2;
            while let Some(t) = ix.code.get(k) {
                match t.text(&file.text) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let after = ix.code.get(k).map(|t| t.text(&file.text));
        let mut var = None;
        if after == Some(";") {
            let s = ix.statement_start(c.idx, &file.text);
            if ix.code.get(s).map(|t| t.text(&file.text)) == Some("let") {
                let mut vi = s + 1;
                if ix.code.get(vi).map(|t| t.text(&file.text)) == Some("mut") {
                    vi += 1;
                }
                let is_ident = ix
                    .code
                    .get(vi)
                    .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident);
                if is_ident
                    && ix.code.get(vi + 1).map(|t| t.text(&file.text)) == Some("=")
                    && vi < c.idx
                {
                    var = Some(ix.code[vi].text(&file.text).to_owned());
                }
            }
        }
        let end = match &var {
            Some(v) => {
                let scope = ix.innermost_scope(offset);
                let mut end = ix.scopes[scope].end;
                for d in &ix.calls {
                    let doff = d.offset(&ix);
                    if d.kind == CallKind::Bare
                        && d.callee == "drop"
                        && doff > acquired
                        && doff < end
                        && d.arg_idents.len() == 1
                        && d.arg_idents[0] == *v
                    {
                        end = doff;
                    }
                }
                end
            }
            None => ix.statement_end(c.close, &file.text),
        };
        acqs.push(Acq {
            offset,
            acquired,
            end,
            line,
            col,
            name,
            var,
        });
    }
    FileAnalysis { ix, acqs }
}

/// The `// lock: <name>` annotation for `line`, from the line itself or
/// the comment block directly above. Malformed names (anything outside
/// `[a-z0-9_.]`) count as missing.
fn annotated_lock_name(file: &SourceFile, line: usize) -> Option<String> {
    let get = |l: usize| {
        file.comments_on_line(l).iter().find_map(|c| {
            c.strip_prefix("lock:")
                .map(|r| r.split_whitespace().next().unwrap_or("").to_owned())
        })
    };
    let valid = |n: String| {
        let ok = !n.is_empty()
            && n.bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.');
        ok.then_some(n)
    };
    if let Some(n) = get(line) {
        return valid(n);
    }
    let mut l = line;
    while l > 1 && file.line_is_comment_only(l - 1) {
        l -= 1;
        if let Some(n) = get(l) {
            return valid(n);
        }
    }
    None
}

// ---------------------------------------------------------------- lock_order

/// Rule 8: every acquisition names its lock; the nested-acquisition
/// graph is acyclic and agrees with DESIGN.md's lock-order catalogue,
/// both directions.
fn check_lock_order(ws: &Workspace, analyses: &[FileAnalysis], report: &mut Report) {
    // 1. Annotation discipline: unannotated sites are violations and
    //    join no graph.
    for (fi, fa) in analyses.iter().enumerate() {
        let file = &ws.files[fi];
        for a in &fa.acqs {
            if a.name.is_none() {
                report.record(
                    file,
                    "lock_order",
                    a.line,
                    a.col,
                    "lock acquisition without a `// lock: <name>` annotation naming the lock"
                        .to_owned(),
                );
            }
        }
    }

    // 2. Function summaries: which named locks does each fn acquire,
    //    directly or through bare calls (fixpoint, per crate)?
    let mut summaries: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for (fi, fa) in analyses.iter().enumerate() {
        let crate_name = &ws.files[fi].crate_name;
        for a in &fa.acqs {
            let Some(name) = a.named() else { continue };
            if let Some(f) = fa.ix.enclosing_fn(a.offset) {
                summaries
                    .entry((crate_name.clone(), f.name.clone()))
                    .or_default()
                    .insert(name.to_owned());
            }
        }
    }
    loop {
        let mut changed = false;
        for (fi, fa) in analyses.iter().enumerate() {
            let crate_name = &ws.files[fi].crate_name;
            for c in &fa.ix.calls {
                if c.kind != CallKind::Bare || is_acquisition(c) {
                    continue;
                }
                let Some(callee_locks) = summaries
                    .get(&(crate_name.clone(), c.callee.clone()))
                    .cloned()
                else {
                    continue;
                };
                let Some(f) = fa.ix.enclosing_fn(c.offset(&fa.ix)) else {
                    continue;
                };
                if f.name == c.callee {
                    continue;
                }
                let entry = summaries
                    .entry((crate_name.clone(), f.name.clone()))
                    .or_default();
                for n in callee_locks {
                    changed |= entry.insert(n);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Edges: a named acquisition or a summarised bare call inside a
    //    live named guard.
    let mut edges: Vec<Edge> = Vec::new();
    for (fi, fa) in analyses.iter().enumerate() {
        let file = &ws.files[fi];
        let crate_name = &file.crate_name;
        for a in &fa.acqs {
            let Some(from) = a.named() else { continue };
            for b in &fa.acqs {
                let Some(to) = b.named() else { continue };
                if b.offset > a.acquired && b.offset < a.end {
                    edges.push(Edge {
                        from: from.to_owned(),
                        to: to.to_owned(),
                        fi,
                        line: b.line,
                        col: b.col,
                    });
                }
            }
            for c in &fa.ix.calls {
                let off = c.offset(&fa.ix);
                if c.kind != CallKind::Bare
                    || is_acquisition(c)
                    || c.callee == "drop"
                    || off <= a.acquired
                    || off >= a.end
                    || file.in_test_region(off)
                {
                    continue;
                }
                let Some(callee_locks) = summaries.get(&(crate_name.clone(), c.callee.clone()))
                else {
                    continue;
                };
                let (line, col) = file.line_col(off);
                for to in callee_locks {
                    edges.push(Edge {
                        from: from.to_owned(),
                        to: to.clone(),
                        fi,
                        line,
                        col,
                    });
                }
            }
        }
    }

    // 4. Cycles: DFS over the deduplicated name graph; each back edge
    //    is one potential deadlock, reported at its first site.
    let mut adj: BTreeMap<&str, Vec<(&str, &Edge)>> = BTreeMap::new();
    let mut seen_pairs = BTreeSet::new();
    for e in &edges {
        if seen_pairs.insert((e.from.as_str(), e.to.as_str())) {
            adj.entry(e.from.as_str())
                .or_default()
                .push((e.to.as_str(), e));
        }
    }
    for e in find_back_edges(&adj) {
        report.record(
            &ws.files[e.fi],
            "lock_order",
            e.line,
            e.col,
            format!(
                "acquiring `{}` while holding `{}` closes a lock-order cycle (potential deadlock)",
                e.to, e.from
            ),
        );
    }

    // 5. Catalogue, both directions, metric_names-style: every lock
    //    named in non-test code must appear in DESIGN.md's catalogue,
    //    every catalogue row must correspond to a real acquisition, and
    //    every edge must respect the declared order.
    let Some(catalogue) = ws.design_md.as_deref().and_then(parse_lock_catalogue) else {
        return;
    };
    let pos = |name: &str| catalogue.iter().position(|(n, _)| n == name);

    let mut first_site: BTreeMap<&str, (usize, usize, usize)> = BTreeMap::new();
    let mut observed_anywhere: BTreeSet<&str> = BTreeSet::new();
    for (fi, fa) in analyses.iter().enumerate() {
        for a in &fa.acqs {
            let Some(name) = a.named() else { continue };
            observed_anywhere.insert(name);
            if ws.files[fi].role != Role::Test {
                first_site.entry(name).or_insert((fi, a.line, a.col));
            }
        }
    }
    for (name, &(fi, line, col)) in &first_site {
        if pos(name).is_none() {
            report.record(
                &ws.files[fi],
                "lock_order",
                line,
                col,
                format!("lock `{name}` is acquired in code but missing from DESIGN.md's lock-order catalogue"),
            );
        }
    }
    for (name, design_line) in &catalogue {
        if !observed_anywhere.contains(name.as_str()) {
            report.record_doc(
                "DESIGN.md",
                "lock_order",
                *design_line,
                format!("catalogue lock `{name}` is not acquired anywhere in scanned code"),
            );
        }
    }
    for e in &edges {
        let (Some(pf), Some(pt)) = (pos(&e.from), pos(&e.to)) else {
            continue;
        };
        if pf > pt {
            report.record(
                &ws.files[e.fi],
                "lock_order",
                e.line,
                e.col,
                format!(
                    "acquires `{}` while holding `{}`, contradicting the order declared in DESIGN.md's lock-order catalogue",
                    e.to, e.from
                ),
            );
        }
    }
}

/// Returns one representative edge per cycle found by iterative DFS
/// (every edge into a node on the current stack).
fn find_back_edges<'a>(adj: &BTreeMap<&str, Vec<(&str, &'a Edge)>>) -> Vec<&'a Edge> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = adj.keys().map(|&k| (k, Color::White)).collect();
    for targets in adj.values() {
        for (to, _) in targets {
            color.entry(to).or_insert(Color::White);
        }
    }
    let mut back = Vec::new();
    let names: Vec<&str> = color.keys().copied().collect();
    for start in names {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        color.insert(start, Color::Gray);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next < children.len() {
                let (to, edge) = children[*next];
                *next += 1;
                match color[to] {
                    Color::Gray => back.push(edge),
                    Color::White => {
                        color.insert(to, Color::Gray);
                        stack.push((to, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
            }
        }
    }
    back
}

/// Parses the lock-order catalogue between the
/// `<!-- mt-check:lock-catalogue:begin/end -->` markers: the first
/// backtick span of each table row is a lock name; row order *is* the
/// declared acquisition order, outermost first.
fn parse_lock_catalogue(design: &str) -> Option<Vec<(String, usize)>> {
    let mut names = Vec::new();
    let mut inside = false;
    for (i, line) in design.lines().enumerate() {
        if line.contains("mt-check:lock-catalogue:begin") {
            inside = true;
            continue;
        }
        if line.contains("mt-check:lock-catalogue:end") {
            inside = false;
            continue;
        }
        if !inside || !line.trim_start().starts_with('|') {
            continue;
        }
        let Some(tick) = line.find('`') else { continue };
        let after = &line[tick + 1..];
        let Some(close) = after.find('`') else {
            continue;
        };
        let name = &after[..close];
        if !name.is_empty()
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'.')
        {
            names.push((name.to_owned(), i + 1));
        }
    }
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

// ------------------------------------------------------------ atomic_protocol

/// Atomic methods that read.
const ATOMIC_LOADS: [&str; 1] = ["load"];
/// Atomic methods that write.
const ATOMIC_STORES: [&str; 1] = ["store"];
/// Atomic read-modify-write methods (both sides of a protocol).
const ATOMIC_RMW: [&str; 12] = [
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Orderings that release on the store side.
const RELEASE_SIDE: [&str; 3] = ["Release", "AcqRel", "SeqCst"];
/// Orderings that acquire on the load side.
const ACQUIRE_SIDE: [&str; 3] = ["Acquire", "AcqRel", "SeqCst"];

/// Rule 9: release/acquire protocols must be whole. A Release-ordered
/// store on an atomic symbol with no Acquire-ordered load anywhere in
/// the workspace fences nothing (and vice versa) — exactly the mt-obs
/// publish-order bug class PR 5 fixed by hand.
///
/// Symbols are receiver chains (`self.shutdown`, `core.count`), grouped
/// workspace-wide; a field renamed on one side of the protocol shows up
/// as two half-fenced symbols.
fn atomic_protocol(ws: &Workspace, analyses: &[FileAnalysis], report: &mut Report) {
    struct Side {
        releases: Vec<(usize, usize, usize)>, // (file, line, col)
        acquires: Vec<(usize, usize, usize)>,
    }
    let mut symbols: BTreeMap<String, Side> = BTreeMap::new();
    for (fi, fa) in analyses.iter().enumerate() {
        let file = &ws.files[fi];
        for c in &fa.ix.calls {
            if c.kind != CallKind::Method || c.receiver.is_empty() {
                continue;
            }
            let is_load = ATOMIC_LOADS.contains(&c.callee.as_str());
            let is_store = ATOMIC_STORES.contains(&c.callee.as_str());
            let is_rmw = ATOMIC_RMW.contains(&c.callee.as_str());
            if !(is_load || is_store || is_rmw) {
                continue;
            }
            let orderings: Vec<&str> = c
                .arg_idents
                .iter()
                .map(|s| s.as_str())
                .filter(|s| ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"].contains(s))
                .collect();
            if orderings.is_empty() {
                continue; // not an atomic call (same-named method elsewhere)
            }
            let off = c.offset(&fa.ix);
            if file.in_test_region(off) {
                continue;
            }
            let (line, col) = file.line_col(off);
            let side = symbols.entry(c.receiver.clone()).or_insert(Side {
                releases: Vec::new(),
                acquires: Vec::new(),
            });
            if (is_store || is_rmw) && orderings.iter().any(|o| RELEASE_SIDE.contains(o)) {
                side.releases.push((fi, line, col));
            }
            if (is_load || is_rmw) && orderings.iter().any(|o| ACQUIRE_SIDE.contains(o)) {
                side.acquires.push((fi, line, col));
            }
        }
    }
    for (sym, side) in &symbols {
        if !side.releases.is_empty() && side.acquires.is_empty() {
            for &(fi, line, col) in &side.releases {
                report.record(
                    &ws.files[fi],
                    "atomic_protocol",
                    line,
                    col,
                    format!(
                        "Release-ordered write publishes `{sym}` but no Acquire-ordered read observes it anywhere in the workspace (half-fenced protocol)"
                    ),
                );
            }
        }
        if !side.acquires.is_empty() && side.releases.is_empty() {
            for &(fi, line, col) in &side.acquires {
                report.record(
                    &ws.files[fi],
                    "atomic_protocol",
                    line,
                    col,
                    format!(
                        "Acquire-ordered read of `{sym}` has no Release-ordered write paired with it anywhere in the workspace (half-fenced protocol)"
                    ),
                );
            }
        }
    }
}

// -------------------------------------------------------- blocking_under_lock

/// Condvar wait methods: they atomically release a guard passed as an
/// argument, so that guard is exempt at the site.
const WAIT_METHODS: [&str; 4] = ["wait", "wait_while", "wait_timeout", "wait_timeout_while"];

/// Methods that can block on io, sockets, or channels regardless of
/// arguments.
const BLOCKING_IO_METHODS: [&str; 14] = [
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_all",
    "write_fmt",
    "flush",
    "recv",
    "recv_from",
    "recv_timeout",
    "send",
    "send_to",
    "accept",
    "connect",
];

/// Rule 10: no blocking call while a lock guard is live in an enclosing
/// scope. A worker parked on io or a condvar while holding a shared
/// lock stalls every lane behind that lock — the exact shape of the
/// multi-lane architecture's worst-case pileup.
fn blocking_under_lock(ws: &Workspace, analyses: &[FileAnalysis], report: &mut Report) {
    for (fi, fa) in analyses.iter().enumerate() {
        let file = &ws.files[fi];
        for c in &fa.ix.calls {
            let blocking = blocking_kind(c);
            let Some(what) = blocking else { continue };
            let off = c.offset(&fa.ix);
            if file.in_test_region(off) {
                continue;
            }
            let is_wait = matches!(
                (c.kind, c.callee.as_str()),
                (CallKind::Method, m) if WAIT_METHODS.contains(&m)
            ) || (c.kind == CallKind::Path && c.receiver == "sync");
            for a in &fa.acqs {
                if off <= a.acquired || off >= a.end {
                    continue;
                }
                // The condvar contract: the guard handed to the wait is
                // released for the duration, not held across it.
                if is_wait
                    && a.var
                        .as_ref()
                        .is_some_and(|v| c.arg_idents.iter().any(|i| i == v))
                {
                    continue;
                }
                let (line, col) = file.line_col(off);
                let lock = a.name.as_deref().unwrap_or("<unannotated>");
                report.record(
                    file,
                    "blocking_under_lock",
                    line,
                    col,
                    format!(
                        "{what} can block while lock `{lock}` (acquired at line {}) is still held",
                        a.line
                    ),
                );
            }
        }
    }
}

/// Whether a call belongs to the blocking surface; returns the display
/// form for the message.
fn blocking_kind(c: &CallSite) -> Option<String> {
    match c.kind {
        CallKind::Method => {
            let m = c.callee.as_str();
            if WAIT_METHODS.contains(&m) {
                return Some(format!("condvar `.{m}(...)`"));
            }
            if BLOCKING_IO_METHODS.contains(&m) {
                return Some(format!("`.{m}(...)`"));
            }
            if (m == "read" || m == "write") && !c.empty_args {
                return Some(format!("io `.{m}(...)`"));
            }
            if m == "join" && c.empty_args {
                return Some("`JoinHandle::join()`".to_owned());
            }
            if (m == "push" || m == "push_lane") && c.receiver.rsplit('.').next() == Some("queue") {
                return Some(format!("bounded-queue `.{m}(...)`"));
            }
            None
        }
        CallKind::Path => {
            if c.receiver == "sync" && (c.callee == "wait" || c.callee == "wait_while") {
                return Some(format!("condvar `sync::{}(...)`", c.callee));
            }
            None
        }
        CallKind::Bare => None,
    }
}
