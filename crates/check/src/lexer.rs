//! A hand-rolled Rust lexer that preserves byte offsets.
//!
//! mt-check cannot use `syn` (crates.io is unavailable in the build
//! environment), and it does not need a parse tree: every rule in
//! [`crate::rules`] works on a flat token stream plus line geometry.
//! What the rules *do* need, non-negotiably, is for the lexer to know
//! exactly what is code and what is not — a `// check: allow(...)`
//! pragma inside a string literal must not suppress anything, and an
//! `unwrap` inside a doc-comment example must not fire the no-panic
//! rule. So the lexer's contract is:
//!
//! - **total**: any byte sequence lexes; malformed input degrades to
//!   reasonable tokens (an unterminated string swallows the rest of the
//!   file as that string) and never panics;
//! - **lossless**: tokens tile the input exactly — `start..end` ranges
//!   are contiguous, the first starts at 0, the last ends at
//!   `src.len()` — so every diagnostic can be mapped back to a precise
//!   line and column (pinned by a proptest in `tests/lexer_props.rs`);
//! - **comment-exact**: nested block comments, raw strings with
//!   arbitrary `#` fences, char literals containing `//`, lifetimes,
//!   and raw identifiers are all distinguished, because these are
//!   precisely the cases where a naive regex scanner misclassifies
//!   code as comment or vice versa.

/// What a lexed span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Spaces, tabs, newlines, and other whitespace.
    Whitespace,
    /// `// ...` to end of line, including `///` and `//!` doc forms.
    LineComment,
    /// `/* ... */`, nesting-aware, including `/** */` doc forms.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A character literal: `'x'`, `'\''`.
    CharLit,
    /// A byte-character literal: `b'x'`, `b'\n'`.
    ByteCharLit,
    /// A string literal: `"..."`.
    StrLit,
    /// A byte-string literal: `b"..."`.
    ByteStrLit,
    /// A raw string literal: `r"..."`, `r#"..."#`.
    RawStrLit,
    /// A raw byte-string literal: `br"..."`, `br#"..."#`.
    RawByteStrLit,
    /// A numeric literal (integer part only; `1.5` lexes as
    /// number-punct-number, which is fine for offset-preserving scans).
    Number,
    /// Any other single character: punctuation, operators, stray bytes.
    Punct,
}

/// One lexed span: `kind` over `src[start..end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the span is.
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unconsumed char.
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a lossless token stream.
///
/// Never panics; the returned tokens tile `src` exactly.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src, pos: 0 };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let start = cur.pos;
        let kind = next_kind(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
        });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>) -> TokKind {
    let Some(c) = cur.bump() else {
        return TokKind::Whitespace; // unreachable: caller checks pos < len
    };
    match c {
        c if c.is_whitespace() => {
            cur.eat_while(|c| c.is_whitespace());
            TokKind::Whitespace
        }
        '/' => match cur.peek() {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                TokKind::LineComment
            }
            Some('*') => {
                cur.bump();
                block_comment(cur);
                TokKind::BlockComment
            }
            _ => TokKind::Punct,
        },
        '\'' => char_or_lifetime(cur),
        '"' => {
            string_body(cur);
            TokKind::StrLit
        }
        'r' => raw_prefixed(cur, false),
        'b' => byte_prefixed(cur),
        c if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
        c if c.is_ascii_digit() => {
            // Digits plus alphanumeric suffix/base chars (0x1f, 1_000u64,
            // 1e3). The dot of a float is left to punct — offsets matter
            // here, numeric values never do.
            cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
            TokKind::Number
        }
        _ => TokKind::Punct,
    }
}

/// After the opening `/*`: consume through the matching `*/`, tracking
/// nesting. Unterminated comments swallow the rest of the file.
fn block_comment(cur: &mut Cursor<'_>) {
    let mut depth = 1usize;
    while depth > 0 {
        match cur.bump() {
            None => return,
            Some('*') if cur.peek() == Some('/') => {
                cur.bump();
                depth -= 1;
            }
            Some('/') if cur.peek() == Some('*') => {
                cur.bump();
                depth += 1;
            }
            Some(_) => {}
        }
    }
}

/// After an opening `'`: decide between a char literal and a lifetime.
///
/// `'a'` is a char, `'a` is a lifetime, `'\''` is a char, `'abc'` (not
/// valid Rust, but we must not panic) lexes as a char-ish span.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> TokKind {
    match cur.peek() {
        // Escape: definitely a char literal.
        Some('\\') => {
            cur.bump();
            cur.bump(); // the escaped char (may be None at EOF)
                        // Consume up to the closing quote (handles \u{...}).
            char_tail(cur);
            TokKind::CharLit
        }
        Some(c) if is_ident_start(c) => {
            // Could be a lifetime ('a) or a char ('a'). Consume the
            // ident run, then look for a closing quote.
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokKind::CharLit
            } else {
                TokKind::Lifetime
            }
        }
        // `''` or `'.'` or `'/'` etc.: a (possibly empty) char literal.
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::CharLit
        }
        None => TokKind::Punct,
    }
}

/// Consumes the remainder of a char literal up to and including the
/// closing `'`, giving up at end of line or file (malformed input).
fn char_tail(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.peek() {
        if c == '\n' {
            return;
        }
        cur.bump();
        if c == '\'' {
            return;
        }
        if c == '\\' {
            cur.bump();
        }
    }
}

/// Consumes a non-raw string body after the opening `"`, honouring
/// backslash escapes. Unterminated strings swallow the rest of the file.
fn string_body(cur: &mut Cursor<'_>) {
    while let Some(c) = cur.bump() {
        match c {
            '"' => return,
            '\\' => {
                cur.bump();
            }
            _ => {}
        }
    }
}

/// After an initial `r` (or the `r` of `br`): raw string, raw
/// identifier, or a plain identifier starting with `r`.
fn raw_prefixed(cur: &mut Cursor<'_>, after_b: bool) -> TokKind {
    match (cur.peek(), cur.peek2()) {
        (Some('"'), _) => {
            cur.bump();
            raw_string_body(cur, 0);
            TokKind::RawStrLit
        }
        (Some('#'), Some('"' | '#')) => {
            let mut hashes = 0usize;
            while cur.peek() == Some('#') {
                cur.bump();
                hashes += 1;
            }
            if cur.peek() == Some('"') {
                cur.bump();
                raw_string_body(cur, hashes);
                TokKind::RawStrLit
            } else {
                // `r##foo` — not valid Rust; the hashes already lexed
                // as part of this span, keep it a punct-ish blob.
                TokKind::Punct
            }
        }
        (Some('#'), Some(c2)) if !after_b && is_ident_start(c2) => {
            // Raw identifier r#type.
            cur.bump();
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
        (Some(c), _) if is_ident_continue(c) => {
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
        _ => TokKind::Ident, // bare `r`
    }
}

/// Consumes a raw string body after the opening quote: through `"` plus
/// `hashes` `#` characters. Unterminated bodies swallow the file.
fn raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return;
            }
        }
    }
}

/// After an initial `b`: byte string, byte char, raw byte string, or a
/// plain identifier starting with `b`.
fn byte_prefixed(cur: &mut Cursor<'_>) -> TokKind {
    match cur.peek() {
        Some('"') => {
            cur.bump();
            string_body(cur);
            TokKind::ByteStrLit
        }
        Some('\'') => {
            cur.bump();
            // A byte literal is never a lifetime; reuse the char path
            // but coerce the result to the byte-char kind.
            match char_or_lifetime(cur) {
                TokKind::Lifetime | TokKind::CharLit => TokKind::ByteCharLit,
                k => k,
            }
        }
        Some('r') if matches!(cur.peek2(), Some('"' | '#')) => {
            cur.bump();
            match raw_prefixed(cur, true) {
                TokKind::RawStrLit => TokKind::RawByteStrLit,
                k => k,
            }
        }
        Some(c) if is_ident_continue(c) => {
            cur.eat_while(is_ident_continue);
            TokKind::Ident
        }
        _ => TokKind::Ident, // bare `b`
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "tokens must be contiguous in {src:?}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens must cover {src:?}");
    }

    #[test]
    fn line_and_block_comments() {
        let src = "a // line\nb /* block /* nested */ still */ c";
        tiles(src);
        let k = kinds(src);
        assert!(k.contains(&(TokKind::LineComment, "// line")));
        assert!(k.contains(&(TokKind::BlockComment, "/* block /* nested */ still */")));
        assert!(k.contains(&(TokKind::Ident, "c")));
    }

    #[test]
    fn comment_markers_inside_strings_are_code() {
        let src = r#"let s = "// not a comment /*";"#;
        tiles(src);
        assert!(kinds(src)
            .iter()
            .all(|(k, _)| !matches!(k, TokKind::LineComment | TokKind::BlockComment)));
    }

    #[test]
    fn char_with_slashes_is_not_a_comment() {
        let src = "let c = '/'; let d = '/';";
        tiles(src);
        assert!(kinds(src).contains(&(TokKind::CharLit, "'/'")));
        assert!(!kinds(src).iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let q = 'q'; let e = '\\''; }";
        tiles(src);
        let k = kinds(src);
        assert!(k.contains(&(TokKind::Lifetime, "'a")));
        assert!(k.contains(&(TokKind::CharLit, "'q'")));
        assert!(k.contains(&(TokKind::CharLit, "'\\''")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"has "quotes" and // slashes"#; done"###;
        tiles(src);
        let k = kinds(src);
        assert!(k.contains(&(
            TokKind::RawStrLit,
            r###"r#"has "quotes" and // slashes"#"###
        )));
        assert!(k.contains(&(TokKind::Ident, "done")));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let src = r##"let a = b"bytes"; let b2 = b'\n'; let c = br#"raw"#; let r#type = 1;"##;
        tiles(src);
        let k = kinds(src);
        assert!(k.contains(&(TokKind::ByteStrLit, "b\"bytes\"")));
        assert!(k.contains(&(TokKind::ByteCharLit, "b'\\n'")));
        assert!(k.contains(&(TokKind::RawByteStrLit, "br#\"raw\"#")));
        assert!(k.contains(&(TokKind::Ident, "r#type")));
    }

    #[test]
    fn byte_literal_kinds_are_distinct_from_text_kinds() {
        let src = r####"(b"s", "s", b'q', 'q', br"r", r"r", br##"f"##, b"x // y")"####;
        tiles(src);
        let k = kinds(src);
        assert!(k.contains(&(TokKind::ByteStrLit, "b\"s\"")));
        assert!(k.contains(&(TokKind::StrLit, "\"s\"")));
        assert!(k.contains(&(TokKind::ByteCharLit, "b'q'")));
        assert!(k.contains(&(TokKind::CharLit, "'q'")));
        assert!(k.contains(&(TokKind::RawByteStrLit, "br\"r\"")));
        assert!(k.contains(&(TokKind::RawStrLit, "r\"r\"")));
        assert!(k.contains(&(TokKind::RawByteStrLit, "br##\"f\"##")));
        // Comment markers inside a byte string stay string content.
        assert!(k.contains(&(TokKind::ByteStrLit, "b\"x // y\"")));
        assert!(!k.iter().any(|(kind, _)| *kind == TokKind::LineComment));
    }

    #[test]
    fn unterminated_forms_do_not_panic() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'",
            "b'",
            "r#",
            "let x = 'a",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn empty_and_unicode() {
        assert!(lex("").is_empty());
        tiles("let π = \"naïve\"; // ünïcode");
        tiles("🦀🦀🦀");
    }
}
