//! A minimal syntax layer over the lossless token stream.
//!
//! The concurrency rules (see [`crate::concurrency`]) need three things
//! no flat token scan provides: *where blocks begin and end* (a lock
//! guard lives to the end of its enclosing scope), *where functions
//! begin and end* (so acquisitions can be summarised per function and
//! propagated to call sites), and *what calls what* (so `close_window(...)`
//! under a held guard contributes the locks `close_window` itself
//! takes). This module recovers exactly that — a brace-matched scope
//! tree, `fn` item boundaries, and call sites with receiver chains and
//! argument identifiers — from the total lexer, with the same contract:
//!
//! - **total**: any token stream indexes without panicking; stray `}`
//!   are ignored, unclosed `{` scopes run to end of file;
//! - **tiling**: every byte offset has exactly one innermost scope, and
//!   the scopes containing an offset are precisely the parent chain of
//!   its innermost scope (pinned by proptests in
//!   `tests/syntax_props.rs`);
//! - **no parse tree**: this is deliberately not `syn` — it knows
//!   nothing about types or expressions, only about braces, parens,
//!   `fn` headers, and `a.b.c(...)` shapes, which is all the rules use.

use crate::lexer::{TokKind, Token};

/// A brace-delimited scope: index 0 is the whole-file root, every other
/// entry is one `{ ... }` block in source order of the opening brace.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Byte offset of the opening `{` (0 for the root).
    pub start: usize,
    /// Byte offset one past the closing `}` (file length for the root
    /// and for unterminated blocks).
    pub end: usize,
    /// Index of the enclosing scope (`None` for the root).
    pub parent: Option<usize>,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.callee(...)` — a method call.
    Method,
    /// `seg::callee(...)` — a path call.
    Path,
    /// `callee(...)` — a bare call (free function, tuple constructor).
    Bare,
}

/// One `callee(...)` site in code (comments/strings never produce one).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee identifier text.
    pub callee: String,
    /// Method, path, or bare.
    pub kind: CallKind,
    /// Index of the callee identifier in [`SyntaxIndex::code`].
    pub idx: usize,
    /// Index of the matching `)` in [`SyntaxIndex::code`] (the last
    /// code token when the argument list is unterminated).
    pub close: usize,
    /// For methods: the dotted receiver chain (`self.shared.queue`),
    /// with index expressions elided. For path calls: the path segment
    /// directly before the final `::`. Empty for bare calls and when
    /// the receiver is not a plain chain.
    pub receiver: String,
    /// Every identifier token appearing inside the argument list, in
    /// order (duplicates kept).
    pub arg_idents: Vec<String>,
    /// Whether the argument list holds no code tokens at all.
    pub empty_args: bool,
}

impl CallSite {
    /// Byte offset of the callee identifier.
    pub fn offset(&self, index: &SyntaxIndex) -> usize {
        index.code[self.idx].start
    }

    /// Byte offset one past the matching `)`.
    pub fn close_offset(&self, index: &SyntaxIndex) -> usize {
        index.code[self.close].end
    }
}

/// One `fn` item (or nested fn) boundary.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub offset: usize,
    /// Scope index of the body block; `None` for bodyless declarations
    /// (trait methods ending in `;`).
    pub body: Option<usize>,
}

/// The syntax index of one source file.
#[derive(Debug)]
pub struct SyntaxIndex {
    /// The code tokens (whitespace and comments filtered out).
    pub code: Vec<Token>,
    /// The scope tree; entry 0 is the file root.
    pub scopes: Vec<Scope>,
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnDef>,
}

/// Keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "match", "return", "for", "loop", "in", "let", "fn", "move", "mut", "ref",
    "box", "yield",
];

impl SyntaxIndex {
    /// Builds the index for `text` from its lossless token stream.
    pub fn build(text: &str, tokens: &[Token]) -> SyntaxIndex {
        let code: Vec<Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
                )
            })
            .copied()
            .collect();
        let scopes = build_scopes(text, &code);
        let calls = build_calls(text, &code);
        let fns = build_fns(text, &code, &scopes);
        SyntaxIndex {
            code,
            scopes,
            calls,
            fns,
        }
    }

    /// Text of a code token by index.
    pub fn text_of<'a>(&self, idx: usize, text: &'a str) -> &'a str {
        self.code[idx].text(text)
    }

    /// The innermost scope containing a byte offset. Total: the root
    /// scope contains every offset.
    pub fn innermost_scope(&self, offset: usize) -> usize {
        self.scopes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.start <= offset && offset < s.end.max(s.start + 1))
            .max_by_key(|(i, s)| (s.start, *i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The innermost `fn` whose body contains a byte offset.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| {
                f.body
                    .map(|b| self.scopes[b].start <= offset && offset < self.scopes[b].end)
                    .unwrap_or(false)
            })
            .max_by_key(|f| f.offset)
    }

    /// Index of the first code token of the statement containing
    /// `code[idx]`: walks back to just past the previous `;`, `{`, or
    /// `}` (or the start of file).
    pub fn statement_start(&self, idx: usize, text: &str) -> usize {
        let mut i = idx;
        while i > 0 {
            if matches!(self.code[i - 1].text(text), ";" | "{" | "}") {
                break;
            }
            i -= 1;
        }
        i
    }

    /// Byte offset where the statement containing `code[from]` ends:
    /// the next `;` at bracket depth zero (one past it), or the closing
    /// bracket of the enclosing group, or end of file.
    pub fn statement_end(&self, from: usize, text: &str) -> usize {
        let mut depth = 0usize;
        let mut k = from + 1;
        while k < self.code.len() {
            let t = self.code[k];
            match t.text(text) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return t.start;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return t.end,
                _ => {}
            }
            k += 1;
        }
        text.len()
    }
}

/// Builds the scope tree by matching `{`/`}` over code tokens.
fn build_scopes(text: &str, code: &[Token]) -> Vec<Scope> {
    let mut scopes = vec![Scope {
        start: 0,
        end: text.len(),
        parent: None,
    }];
    let mut stack = vec![0usize];
    for t in code {
        match t.text(text) {
            "{" => {
                let id = scopes.len();
                scopes.push(Scope {
                    start: t.start,
                    end: text.len(),
                    parent: stack.last().copied(),
                });
                stack.push(id);
            }
            // A stray `}` with only the root open is ignored: the
            // lexer is total, so the index must be too.
            "}" if stack.len() > 1 => {
                let id = stack.pop().unwrap_or(0);
                scopes[id].end = t.end;
            }
            _ => {}
        }
    }
    scopes
}

/// Extracts every `callee(...)` site, with kind, receiver chain, and
/// argument identifiers.
fn build_calls(text: &str, code: &[Token]) -> Vec<CallSite> {
    let tok = |i: usize| -> Option<&str> { code.get(i).map(|t| t.text(text)) };
    let mut calls = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident {
            continue;
        }
        let name = code[i].text(text);
        if NON_CALL_KEYWORDS.contains(&name) || tok(i + 1) != Some("(") {
            continue;
        }
        let prev = i.checked_sub(1).and_then(&tok);
        if prev == Some("fn") {
            continue; // a definition, not a call
        }
        let kind = if prev == Some(".") {
            CallKind::Method
        } else if prev == Some(":") && i >= 2 && tok(i - 2) == Some(":") {
            CallKind::Path
        } else {
            CallKind::Bare
        };
        let receiver = match kind {
            CallKind::Method => receiver_chain(text, code, i - 1),
            CallKind::Path => match i.checked_sub(3).map(|p| code[p]) {
                Some(t) if t.kind == TokKind::Ident => t.text(text).to_owned(),
                _ => String::new(),
            },
            CallKind::Bare => String::new(),
        };
        // Match the argument parens and collect identifiers inside.
        let open = i + 1;
        let mut depth = 1usize;
        let mut k = open + 1;
        let mut arg_idents = Vec::new();
        while k < code.len() && depth > 0 {
            match code[k].text(text) {
                "(" => depth += 1,
                ")" => depth -= 1,
                _ => {
                    if code[k].kind == TokKind::Ident {
                        arg_idents.push(code[k].text(text).to_owned());
                    }
                }
            }
            if depth == 0 {
                break;
            }
            k += 1;
        }
        let close = k.min(code.len().saturating_sub(1));
        calls.push(CallSite {
            callee: name.to_owned(),
            kind,
            idx: i,
            close,
            receiver,
            arg_idents,
            empty_args: close == open + 1,
        });
    }
    calls
}

/// Walks a dotted receiver chain backwards from the `.` at `dot` and
/// returns it in source order (`self.shared.queue`). Index expressions
/// (`pools[i]`) are elided; the walk stops at the first token that is
/// not part of a plain `a.b[c].d` chain, keeping whatever suffix was
/// collected (a call in the chain yields the partial chain after it).
fn receiver_chain(text: &str, code: &[Token], dot: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot; // index of the `.` before the current component
    while let Some(before) = j.checked_sub(1) {
        let mut c = before;
        // Skip one `[...]` index group, e.g. `pools[self.lane]`.
        if code[c].text(text) == "]" {
            let mut depth = 1usize;
            while depth > 0 {
                let Some(p) = c.checked_sub(1) else {
                    return join(&parts);
                };
                c = p;
                match code[c].text(text) {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            let Some(p) = c.checked_sub(1) else {
                return join(&parts);
            };
            c = p;
        }
        if !matches!(code[c].kind, TokKind::Ident | TokKind::Number) {
            break;
        }
        parts.push(code[c].text(text));
        match c.checked_sub(1) {
            Some(p) if code[p].text(text) == "." => j = p,
            _ => break,
        }
    }
    join(&parts)
}

fn join(parts: &[&str]) -> String {
    let mut out = String::new();
    for p in parts.iter().rev() {
        if !out.is_empty() {
            out.push('.');
        }
        out.push_str(p);
    }
    out
}

/// Finds every `fn` item and resolves its body to a scope: from the
/// header, the first `{` at paren depth zero opens the body; a `;`
/// first means a bodyless declaration.
fn build_fns(text: &str, code: &[Token], scopes: &[Scope]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    for i in 0..code.len() {
        if code[i].text(text) != "fn" {
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` pointer types etc.
        }
        let name = name_tok.text(text).to_owned();
        let mut depth = 0usize;
        let mut body = None;
        let mut k = i + 2;
        while k < code.len() {
            match code[k].text(text) {
                "(" => depth += 1,
                ")" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    let start = code[k].start;
                    body = scopes.iter().position(|s| s.start == start);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        fns.push(FnDef {
            name,
            offset: code[i].start,
            body,
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> SyntaxIndex {
        SyntaxIndex::build(src, &lex(src))
    }

    #[test]
    fn scopes_nest_and_close() {
        let src = "fn a() { if x { y(); } }\nfn b() { z(); }\n";
        let ix = index(src);
        assert_eq!(ix.scopes.len(), 4, "root + a + if + b");
        let y = src.find("y()").unwrap();
        let z = src.find("z()").unwrap();
        let sy = ix.innermost_scope(y);
        let sz = ix.innermost_scope(z);
        assert_ne!(sy, sz);
        assert_eq!(
            ix.scopes[sy].parent.and_then(|p| ix.scopes[p].parent),
            Some(0)
        );
        assert_eq!(ix.scopes[sz].parent, Some(0));
    }

    #[test]
    fn unbalanced_braces_do_not_panic() {
        for src in ["}", "}}}{", "fn a() {", "{ { }", ""] {
            let ix = index(src);
            for (i, s) in ix.scopes.iter().enumerate() {
                assert!(s.start <= s.end, "scope {i} inverted in {src:?}");
                if let Some(p) = s.parent {
                    assert!(p < i, "parent must precede child");
                }
            }
            let _ = ix.innermost_scope(0);
        }
    }

    #[test]
    fn call_kinds_and_receivers() {
        let src = "fn f(q: &Q) { self.shared.pools[self.lane].take(); crate::sync::lock(&q.m); close_window(a, b); m!(x); }";
        let ix = index(src);
        let take = ix.calls.iter().find(|c| c.callee == "take").unwrap();
        assert_eq!(take.kind, CallKind::Method);
        assert_eq!(take.receiver, "self.shared.pools");
        assert!(take.empty_args);

        let lock = ix.calls.iter().find(|c| c.callee == "lock").unwrap();
        assert_eq!(lock.kind, CallKind::Path);
        assert_eq!(lock.receiver, "sync");
        assert_eq!(lock.arg_idents, vec!["q".to_owned(), "m".to_owned()]);

        let cw = ix
            .calls
            .iter()
            .find(|c| c.callee == "close_window")
            .unwrap();
        assert_eq!(cw.kind, CallKind::Bare);
        assert_eq!(cw.arg_idents, vec!["a".to_owned(), "b".to_owned()]);

        assert!(
            !ix.calls.iter().any(|c| c.callee == "m"),
            "macro invocations are not calls"
        );
    }

    #[test]
    fn fn_bodies_resolve_to_scopes() {
        let src =
            "trait T { fn decl(&self) -> Result<(), E>; }\nfn has_body(x: u32) -> u32 { x }\n";
        let ix = index(src);
        let decl = ix.fns.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let hb = ix.fns.iter().find(|f| f.name == "has_body").unwrap();
        let b = hb.body.expect("body scope");
        let x = src.rfind("{ x }").unwrap();
        assert_eq!(ix.scopes[b].start, x);
        assert_eq!(
            ix.enclosing_fn(x + 2).map(|f| f.name.as_str()),
            Some("has_body")
        );
    }

    #[test]
    fn statement_boundaries() {
        let src = "fn f() { let g = m.lock(); g.push(1); }";
        let ix = index(src);
        let lock = ix.calls.iter().find(|c| c.callee == "lock").unwrap();
        let start = ix.statement_start(lock.idx, src);
        assert_eq!(ix.code[start].text(src), "let");
        let end = ix.statement_end(lock.close, src);
        assert_eq!(&src[end - 1..end], ";");
        assert!(end < src.find("g.push").unwrap());
    }
}
