//! Violation collection and the two report renderings.
//!
//! The JSON document follows the same validated-artifact pattern as
//! `BENCH_hotpath.json`: a self-describing envelope (`tool`,
//! `schema_version`), a scan summary, one entry per rule (present even
//! at zero, so CI can assert the full rule list is live), the flat
//! violation list, and — since schema version 2 — the suppression
//! inventory: every violation a reasoned pragma silenced, with its
//! rule, site, and stated reason, so CI artifacts can be diffed across
//! PRs and a quietly growing pile of `check: allow`s is as visible as
//! a failing rule. Suppressions do not affect exit codes. The human
//! rendering is `path:line:col: rule: message` — terse, clickable, and
//! printed verbatim by the umbrella-crate enforcement test when it
//! fails.

use crate::workspace::SourceFile;
use serde::Serialize;

/// One rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// The rule id (see [`crate::rules::RULE_IDS`]).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

/// One violation silenced by a reasoned `// check: allow` pragma.
#[derive(Debug, Clone, Serialize)]
pub struct Suppression {
    /// The rule id the pragma silenced.
    pub rule: String,
    /// Workspace-relative path of the suppressed site.
    pub path: String,
    /// 1-based line of the suppressed site (0 when the pragma is
    /// file-scoped and the rule reports no single line).
    pub line: usize,
    /// The reason the pragma stated.
    pub reason: String,
}

/// Per-rule outcome counts.
#[derive(Debug, Clone, Serialize)]
pub struct RuleSummary {
    /// The rule id.
    pub id: String,
    /// One-line description of what the rule enforces.
    pub description: String,
    /// Unsuppressed violations.
    pub violations: usize,
    /// Violations silenced by a reasoned pragma.
    pub suppressed: usize,
}

/// The full analysis result.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Always `"mt-check"`.
    pub tool: String,
    /// Document schema version.
    pub schema_version: u32,
    /// The workspace root that was scanned.
    pub root: String,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Sum of per-rule violation counts.
    pub total_violations: usize,
    /// One entry per rule, in [`crate::rules::RULE_IDS`] order.
    pub rules: Vec<RuleSummary>,
    /// Every unsuppressed violation, in file/line order.
    pub violations: Vec<Violation>,
    /// Every suppressed violation, in file/line order.
    pub suppressions: Vec<Suppression>,
}

impl Report {
    /// An empty report for a scan of `files_scanned` files.
    pub fn new(root: &str, files_scanned: usize) -> Report {
        Report {
            tool: "mt-check".to_owned(),
            schema_version: 2,
            root: root.to_owned(),
            files_scanned,
            total_violations: 0,
            rules: crate::rules::rule_summaries(),
            violations: Vec::new(),
            suppressions: Vec::new(),
        }
    }

    /// Records a violation of `rule` in `file`, honouring any
    /// suppression pragma on the line or the line above.
    pub fn record(
        &mut self,
        file: &SourceFile,
        rule: &str,
        line: usize,
        col: usize,
        message: String,
    ) {
        if let Some(p) = file.suppression_for(rule, line) {
            let reason = p.reason.clone();
            self.suppress_site(rule, &file.rel_path, line, &reason);
            return;
        }
        self.push(rule, &file.rel_path, line, col, message);
    }

    /// Records a violation whose suppression the rule already decided
    /// (file-scoped rules).
    pub fn record_unsuppressable(
        &mut self,
        file: &SourceFile,
        rule: &str,
        line: usize,
        col: usize,
        message: String,
    ) {
        self.push(rule, &file.rel_path, line, col, message);
    }

    /// Records a violation against a non-source document (DESIGN.md).
    pub fn record_doc(&mut self, path: &str, rule: &str, line: usize, message: String) {
        self.push(rule, path, line, 1, message);
    }

    /// Counts one suppressed violation for `rule` and records it in the
    /// suppression inventory.
    pub fn suppress_site(&mut self, rule: &str, path: &str, line: usize, reason: &str) {
        if let Some(r) = self.rules.iter_mut().find(|r| r.id == rule) {
            r.suppressed += 1;
        }
        self.suppressions.push(Suppression {
            rule: rule.to_owned(),
            path: path.to_owned(),
            line,
            reason: reason.to_owned(),
        });
    }

    fn push(&mut self, rule: &str, path: &str, line: usize, col: usize, message: String) {
        if let Some(r) = self.rules.iter_mut().find(|r| r.id == rule) {
            r.violations += 1;
        }
        self.violations.push(Violation {
            rule: rule.to_owned(),
            path: path.to_owned(),
            line,
            col,
            message,
        });
    }

    /// Sorts violations and fills in the totals; called once after all
    /// rules have run.
    pub fn finish(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule))
        });
        self.suppressions
            .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        self.total_violations = self.rules.iter().map(|r| r.violations).sum();
    }

    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// The count of violations for one rule id (0 for unknown ids).
    pub fn count(&self, rule: &str) -> usize {
        self.rules
            .iter()
            .find(|r| r.id == rule)
            .map_or(0, |r| r.violations)
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}:{}: {}: {}\n",
                v.path, v.line, v.col, v.rule, v.message
            ));
        }
        out.push_str(&format!(
            "mt-check: {} file(s) scanned, {} violation(s)",
            self.files_scanned, self.total_violations
        ));
        for r in &self.rules {
            out.push_str(&format!(
                "\n  {:<16} {:>3} violation(s), {:>3} suppressed",
                r.id, r.violations, r.suppressed
            ));
        }
        out.push('\n');
        out
    }

    /// Renders the machine-readable JSON document.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| {
            // The report type contains nothing unserializable; keep a
            // total fallback rather than a panic path in library code.
            "{\"tool\":\"mt-check\",\"error\":\"serialization failed\"}".to_owned()
        })
    }
}
