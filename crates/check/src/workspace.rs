//! The workspace model the rules run against.
//!
//! A [`Workspace`] is a set of lexed [`SourceFile`]s plus the design
//! document (for the metric-name catalogue rule). It can be built two
//! ways: [`Workspace::from_root`] walks a real checkout (this is what
//! the `mt-check` binary and the umbrella-crate enforcement test use),
//! and [`Workspace::in_memory`] assembles one from `(path, text)`
//! pairs (this is what the fixture tests use, so a deliberately-bad
//! snippet can be dropped into any crate/role without creating a real
//! crate on disk).
//!
//! Library and binary sources are scanned — `crates/*/src/**` and the
//! umbrella `src/**` — plus integration-test and example trees
//! (`crates/*/tests/**`, the umbrella `tests/**` and `examples/**`),
//! which carry the [`Role::Test`] role: `no_panic` and the registration
//! direction of `metric_names` exempt them, but determinism, atomics
//! discipline, and the concurrency rules apply — a test that deadlocks
//! or races hangs CI just as hard as library code. `vendor/` (offline
//! stand-ins for crates.io) and `target/` are out of scope.

use crate::lexer::{lex, TokKind, Token};
use std::path::{Path, PathBuf};

/// How a source file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Part of a crate's library (`src/**`, excluding `src/bin`).
    Lib,
    /// A binary target (`src/bin/**` or `src/main.rs`).
    Bin,
    /// An integration test or example (`tests/**`, `examples/**`).
    Test,
}

/// A recognised `// check: allow(<rule>, <reason>)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule id the pragma names (not yet validated against the
    /// rule set; unknown ids simply never match a violation).
    pub rule: String,
    /// The stated reason. Pragmas with an empty reason are inert: the
    /// whole point is to force the author to argue the invariant.
    pub reason: String,
    /// 1-based line the pragma comment starts on.
    pub line: usize,
}

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// The crate the file belongs to: the directory name under
    /// `crates/` (e.g. `types`), or `metatelescope` for the umbrella
    /// `src/` tree.
    pub crate_name: String,
    /// Library or binary code.
    pub role: Role,
    /// The file contents.
    pub text: String,
    /// The lossless token stream.
    pub tokens: Vec<Token>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items, in ascending order.
    test_regions: Vec<(usize, usize)>,
    /// All pragmas in the file, in line order.
    pub pragmas: Vec<Pragma>,
}

impl SourceFile {
    /// Builds a source file from its workspace-relative path and text.
    pub fn new(rel_path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let (crate_name, role) = classify(rel_path);
        let test_regions = find_test_regions(&text, &tokens);
        let mut file = SourceFile {
            rel_path: rel_path.to_owned(),
            crate_name,
            role,
            text,
            tokens,
            line_starts,
            test_regions,
            pragmas: Vec::new(),
        };
        file.pragmas = file.collect_pragmas();
        file
    }

    /// 1-based `(line, col)` of a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = self
            .line_starts
            .partition_point(|&s| s <= offset)
            .saturating_sub(1);
        let col = self.text[self.line_starts[line]..offset].chars().count() + 1;
        (line + 1, col)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_col(offset).0
    }

    /// Whether a byte offset falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| (s..e).contains(&offset))
    }

    /// Tokens that are code: everything except whitespace and comments.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
    }

    /// The comment text of every comment on the given 1-based line,
    /// with its leading `//`/`///`/`//!`/`/*` markers stripped.
    pub fn comments_on_line(&self, line: usize) -> Vec<&str> {
        if line == 0 || line > self.line_starts.len() {
            return Vec::new();
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.text.len());
        self.tokens
            .iter()
            .filter(|t| {
                matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
                    && t.start < end
                    && t.end > start
            })
            .map(|t| strip_comment_markers(t.text(&self.text)))
            .collect()
    }

    /// Whether the given 1-based line holds nothing but whitespace and
    /// comments (used to walk justification-comment blocks upward).
    pub fn line_is_comment_only(&self, line: usize) -> bool {
        if line == 0 || line > self.line_starts.len() {
            return false;
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.text.len());
        let mut saw_comment = false;
        for t in &self.tokens {
            if t.end <= start || t.start >= end {
                continue;
            }
            match t.kind {
                TokKind::Whitespace => {}
                TokKind::LineComment | TokKind::BlockComment => saw_comment = true,
                _ => return false,
            }
        }
        saw_comment
    }

    /// Whether a violation of `rule` at 1-based `line` is suppressed by
    /// a pragma on the same line or the line directly above.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        self.pragmas.iter().any(|p| {
            p.rule == rule && !p.reason.is_empty() && (p.line == line || p.line + 1 == line)
        })
    }

    /// Whether any pragma in the file suppresses `rule` (for
    /// file-scoped rules such as crate hygiene).
    pub fn suppressed_anywhere(&self, rule: &str) -> bool {
        self.suppression_anywhere_for(rule).is_some()
    }

    /// The pragma that [`SourceFile::suppressed`] would match for a
    /// violation of `rule` at `line`, for the suppression inventory.
    pub fn suppression_for(&self, rule: &str, line: usize) -> Option<&Pragma> {
        self.pragmas.iter().find(|p| {
            p.rule == rule && !p.reason.is_empty() && (p.line == line || p.line + 1 == line)
        })
    }

    /// The first effective pragma for `rule` anywhere in the file.
    pub fn suppression_anywhere_for(&self, rule: &str) -> Option<&Pragma> {
        self.pragmas
            .iter()
            .find(|p| p.rule == rule && !p.reason.is_empty())
    }

    fn collect_pragmas(&self) -> Vec<Pragma> {
        let mut out = Vec::new();
        for t in &self.tokens {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            let body = strip_comment_markers(t.text(&self.text));
            if let Some(p) = parse_pragma(body) {
                out.push(Pragma {
                    rule: p.0,
                    reason: p.1,
                    line: self.line_of(t.start),
                });
            }
        }
        out
    }
}

/// Strips `//`, `///`, `//!`, `/*`, `/**`, `*/` comment furniture and
/// surrounding whitespace from a comment token's text.
fn strip_comment_markers(text: &str) -> &str {
    let t = text
        .trim_start_matches("//!")
        .trim_start_matches("///")
        .trim_start_matches("//");
    let t = if let Some(inner) = t.strip_prefix("/*") {
        inner.strip_suffix("*/").unwrap_or(inner)
    } else {
        t
    };
    t.trim()
}

/// Parses `check: allow(<rule>, <reason>)` from a stripped comment
/// body. The reason may be bare words or a quoted string; surrounding
/// quotes are removed.
fn parse_pragma(body: &str) -> Option<(String, String)> {
    let rest = body.strip_prefix("check:")?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let rest = rest.strip_suffix(')')?;
    let (rule, reason) = rest.split_once(',')?;
    let reason = reason.trim().trim_matches('"').trim();
    Some((rule.trim().to_owned(), reason.to_owned()))
}

/// `(crate_name, role)` from a workspace-relative path.
fn classify(rel_path: &str) -> (String, Role) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, in_crate): (String, &[&str]) = if parts.first() == Some(&"crates") {
        (
            parts.get(1).copied().unwrap_or_default().to_owned(),
            parts.get(2..).unwrap_or_default(),
        )
    } else {
        ("metatelescope".to_owned(), &parts[..])
    };
    let role = if in_crate.first() == Some(&"tests") || in_crate.first() == Some(&"examples") {
        Role::Test
    } else if in_crate.get(1) == Some(&"bin") || in_crate == ["src", "main.rs"] {
        Role::Bin
    } else {
        Role::Lib
    };
    (crate_name, role)
}

/// Finds byte ranges of `#[cfg(test)]` items: the attribute tokens
/// through the close of the item's brace block. Works for `mod tests`
/// and for individually-gated items; attributes and doc comments
/// between the gate and the item are skipped.
fn find_test_regions(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let is = |i: usize, s: &str| code.get(i).is_some_and(|t| t.text(src) == s);
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        // #[cfg(test)]
        if is(i, "#") && is(i + 1, "[") && is(i + 2, "cfg") && is(i + 3, "(") && is(i + 4, "test") {
            // Find the attribute's closing ']'.
            let attr_start = code[i].start;
            let mut j = i + 2;
            let mut bracket_depth = 1usize;
            while j < code.len() && bracket_depth > 0 {
                match code[j].text(src) {
                    "[" => bracket_depth += 1,
                    "]" => bracket_depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            // Skip to the gated item's opening brace, then match it.
            while j < code.len() && !is(j, "{") {
                // A `;` before any `{` means the gated item has no
                // body (e.g. a gated `use`); the region ends there.
                if is(j, ";") {
                    break;
                }
                j += 1;
            }
            if is(j, "{") {
                let mut depth = 0usize;
                while j < code.len() {
                    match code[j].text(src) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            let end = code.get(j).map(|t| t.end).unwrap_or_else(|| src.len());
            regions.push((attr_start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

/// A set of source files plus the design document.
#[derive(Debug)]
pub struct Workspace {
    /// All scanned files, in path order.
    pub files: Vec<SourceFile>,
    /// `DESIGN.md` contents, when present.
    pub design_md: Option<String>,
    /// The root the workspace was loaded from (display only).
    pub root: String,
}

impl Workspace {
    /// Builds a workspace from `(relative_path, text)` pairs — the
    /// fixture-test entry point.
    pub fn in_memory(files: Vec<(&str, String)>, design_md: Option<String>) -> Workspace {
        let mut files: Vec<SourceFile> = files
            .into_iter()
            .map(|(p, text)| SourceFile::new(p, text))
            .collect();
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        Workspace {
            files,
            design_md,
            root: "<in-memory>".to_owned(),
        }
    }

    /// Walks a checkout: `crates/*/{src,tests}/**/*.rs`, the umbrella
    /// `src/**/*.rs`, `tests/**/*.rs`, and `examples/**/*.rs`, plus
    /// `DESIGN.md`.
    pub fn from_root(root: &Path) -> std::io::Result<Workspace> {
        let mut paths: Vec<PathBuf> = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let dir = entry?.path();
                for sub in ["src", "tests"] {
                    let tree = dir.join(sub);
                    if tree.is_dir() {
                        collect_rs(&tree, &mut paths)?;
                    }
                }
            }
        }
        for sub in ["src", "tests", "examples"] {
            let tree = root.join(sub);
            if tree.is_dir() {
                collect_rs(&tree, &mut paths)?;
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for p in paths {
            let text = std::fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::new(&rel, text));
        }
        let design_md = std::fs::read_to_string(root.join("DESIGN.md")).ok();
        Ok(Workspace {
            files,
            design_md,
            root: root.to_string_lossy().into_owned(),
        })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/types/src/lib.rs"),
            ("types".to_owned(), Role::Lib)
        );
        assert_eq!(
            classify("crates/bench/src/bin/repro.rs"),
            ("bench".to_owned(), Role::Bin)
        );
        assert_eq!(
            classify("src/lib.rs"),
            ("metatelescope".to_owned(), Role::Lib)
        );
        assert_eq!(
            classify("crates/stream/tests/queue.rs"),
            ("stream".to_owned(), Role::Test)
        );
        assert_eq!(
            classify("tests/static_analysis.rs"),
            ("metatelescope".to_owned(), Role::Test)
        );
        assert_eq!(
            classify("examples/profile.rs"),
            ("metatelescope".to_owned(), Role::Test)
        );
    }

    #[test]
    fn test_regions_cover_gated_mod() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn b() { y.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::new("crates/demo/src/lib.rs", src.to_owned());
        let a = src.find("x.unwrap").unwrap();
        let b = src.find("y.unwrap").unwrap();
        let c = src.find("fn c").unwrap();
        assert!(!f.in_test_region(a));
        assert!(f.in_test_region(b));
        assert!(!f.in_test_region(c));
    }

    #[test]
    fn cfg_test_in_string_is_ignored() {
        let src = "const S: &str = \"#[cfg(test)]\";\nfn f() {}\n";
        let f = SourceFile::new("crates/demo/src/lib.rs", src.to_owned());
        assert!(!f.in_test_region(src.find("fn f").unwrap()));
    }

    #[test]
    fn pragma_parsing() {
        let src = "// check: allow(no_panic, \"len checked above\")\nx.unwrap();\n// check: allow(no_panic, )\ny.unwrap();\n";
        let f = SourceFile::new("crates/demo/src/lib.rs", src.to_owned());
        assert!(f.suppressed("no_panic", 2), "pragma above covers line 2");
        assert!(f.suppressed("no_panic", 1), "and its own line");
        assert!(
            !f.suppressed("no_panic", 4),
            "empty reason does not suppress"
        );
        assert!(!f.suppressed("hash_policy", 2), "other rules unaffected");
    }

    #[test]
    fn pragma_inside_string_is_inert() {
        let src = "let s = \"check: allow(no_panic, fake)\";\nx.unwrap();\n";
        let f = SourceFile::new("crates/demo/src/lib.rs", src.to_owned());
        assert!(f.pragmas.is_empty());
    }

    #[test]
    fn comment_only_lines() {
        let src = "// just a comment\nlet x = 1; // trailing\n\n";
        let f = SourceFile::new("crates/demo/src/lib.rs", src.to_owned());
        assert!(f.line_is_comment_only(1));
        assert!(!f.line_is_comment_only(2));
        assert!(!f.line_is_comment_only(3));
    }
}
