//! Prometheus text-exposition conformance for the registry's renderer.
//!
//! `/metrics` is scraped by software, not read by people, so the output
//! must satisfy the text format (version 0.0.4) structurally: `# HELP`
//! then `# TYPE` exactly once per metric name and before its samples,
//! escaped HELP text and label values, cumulative non-decreasing
//! histogram buckets ending at `+Inf`, `_count` equal to the `+Inf`
//! bucket, every line well-formed, and a final trailing newline. These
//! tests walk the rendered document line by line instead of substring
//! probing, so a malformed line anywhere fails loudly.

use mt_obs::MetricsRegistry;

/// A registry exercising every sample shape the workspace produces.
fn busy_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    reg.counter("mt_plain_total", "a plain counter").add(3);
    reg.counter_with(
        "mt_labeled_total",
        &[("exporter", "udp:127.0.0.1:9000"), ("transport", "udp")],
        "a labeled counter",
    )
    .add(7);
    reg.counter_with(
        "mt_labeled_total",
        &[("exporter", "b"), ("transport", "tcp")],
        "dup help",
    )
    .inc();
    reg.gauge("mt_depth", "a gauge").set(5);
    reg.gauge("mt_helpless", "").set(1); // no HELP line, TYPE still present
    let h = reg.histogram("mt_lat_nanoseconds", &[10, 100, 1000], "a histogram");
    for v in [5, 50, 500, 5000] {
        h.observe(v);
    }
    reg
}

fn render(reg: &MetricsRegistry) -> String {
    reg.snapshot().render_prometheus_text()
}

/// Splits a sample line into (series, value) the way a scraper's lexer
/// does: the separator is the first space *outside* any quoted label
/// value, honouring backslash escapes — label values may legally
/// contain spaces, braces, and escaped quotes.
fn split_sample(line: &str) -> (String, u64) {
    let mut in_quotes = false;
    let mut escaped = false;
    let mut split_at = None;
    for (i, b) in line.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b' ' if !in_quotes => {
                split_at = Some(i);
                break;
            }
            _ => {}
        }
    }
    assert!(!in_quotes, "unterminated label value in {line:?}");
    let space = split_at.unwrap_or_else(|| panic!("no value separator in {line:?}"));
    let value = line[space + 1..]
        .parse()
        .unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
    (line[..space].to_owned(), value)
}

/// The metric name a series line belongs to, with histogram suffixes
/// and label blocks stripped.
fn base_name(series: &str) -> String {
    let name = series.split('{').next().unwrap_or(series);
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped.to_owned();
        }
    }
    name.to_owned()
}

#[test]
fn document_structure_is_scrape_clean() {
    let text = render(&busy_registry());
    assert!(text.ends_with('\n'), "final newline required");
    assert!(!text.contains("\n\n"), "no blank lines");

    let mut seen_help: Vec<String> = Vec::new();
    let mut seen_type: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().expect("HELP carries a name");
            assert!(
                !seen_help.contains(&name.to_owned()),
                "HELP repeated for {name}"
            );
            assert!(
                !seen_type.contains(&name.to_owned()),
                "HELP must precede TYPE for {name}"
            );
            seen_help.push(name.to_owned());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE carries a name");
            let kind = parts.next().expect("TYPE carries a kind");
            assert!(parts.next().is_none(), "extra tokens on TYPE line: {line}");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown kind {kind}"
            );
            assert!(
                !seen_type.contains(&name.to_owned()),
                "TYPE repeated for {name}"
            );
            seen_type.push(name.to_owned());
        } else {
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            let (series, _) = split_sample(line);
            let base = base_name(&series);
            assert!(
                seen_type.contains(&base),
                "sample {series} before its TYPE line"
            );
        }
    }
    // Every registered family got a TYPE header; HELP only where help
    // text was provided.
    for name in [
        "mt_plain_total",
        "mt_labeled_total",
        "mt_depth",
        "mt_helpless",
        "mt_lat_nanoseconds",
    ] {
        assert!(seen_type.contains(&name.to_owned()), "TYPE missing: {name}");
    }
    assert!(!seen_help.contains(&"mt_helpless".to_owned()));
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf() {
    let text = render(&busy_registry());
    let buckets: Vec<(String, u64)> = text
        .lines()
        .filter(|l| l.starts_with("mt_lat_nanoseconds_bucket"))
        .map(split_sample)
        .collect();
    assert_eq!(buckets.len(), 4, "3 bounds + +Inf");
    let les: Vec<&str> = buckets
        .iter()
        .map(|(s, _)| {
            s.split("le=\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .expect("le label present")
        })
        .collect();
    assert_eq!(les, ["10", "100", "1000", "+Inf"]);
    let counts: Vec<u64> = buckets.iter().map(|&(_, v)| v).collect();
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "cumulative");
    let (_, total) = split_sample(
        text.lines()
            .find(|l| l.starts_with("mt_lat_nanoseconds_count"))
            .expect("_count line"),
    );
    assert_eq!(counts.last(), Some(&total), "+Inf bucket == _count");
    let (_, sum) = split_sample(
        text.lines()
            .find(|l| l.starts_with("mt_lat_nanoseconds_sum"))
            .expect("_sum line"),
    );
    assert_eq!(sum, 5 + 50 + 500 + 5000);
}

#[test]
fn label_and_help_escaping() {
    let reg = MetricsRegistry::new();
    reg.counter_with(
        "mt_esc_total",
        &[("path", "a\\b"), ("msg", "line1\nline2\"q\"")],
        "helps with \\ and\nnewlines",
    )
    .inc();
    let text = render(&reg);
    assert!(
        text.contains("# HELP mt_esc_total helps with \\\\ and\\nnewlines\n"),
        "HELP escapes backslash and newline: {text}"
    );
    assert!(
        text.contains("path=\"a\\\\b\""),
        "label backslash escaped: {text}"
    );
    assert!(
        text.contains("msg=\"line1\\nline2\\\"q\\\"\""),
        "label newline and quotes escaped: {text}"
    );
    // The escaped document stays one-sample-per-line.
    assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 1);
}

#[test]
fn every_line_is_parseable_even_with_hostile_labels() {
    let reg = busy_registry();
    reg.counter_with("mt_hostile_total", &[("v", "}\" {=,\\")], "h")
        .inc();
    let text = render(&reg);
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, _) = split_sample(line);
        // A series is NAME or NAME{...} closing at the series end.
        if series.contains('{') {
            assert!(series.ends_with('}'), "unclosed label block in {series}");
        }
        let name = series.split('{').next().expect("name");
        assert!(
            name.bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':'),
            "illegal metric name {name}"
        );
    }
}
