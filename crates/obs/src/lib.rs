//! Unified observability for the meta-telescope stack.
//!
//! Every layer of the system keeps drop/decode/keep counters — the
//! collector's per-exporter decode errors, the bounded queue's
//! backpressure accounting, the window gate's late/dropped tallies, the
//! pipeline's per-stage funnel. The paper's §4.2 funnel and §7.2
//! spoofing-tolerance arguments are *accounting* arguments, and a
//! long-lived deployment (the Merit darknet retrospective's lesson)
//! lives or dies on being able to see, per stage, why traffic was kept
//! or dropped. This crate gives those scattered counters one substrate:
//!
//! - [`MetricsRegistry`] — a process-wide (or per-service) registry of
//!   named metrics. Registration takes a short lock; after that every
//!   update is a single atomic operation on a shared handle, so the hot
//!   paths (ingest workers, pipeline shards) never contend on the
//!   registry itself.
//! - [`Counter`] — a monotonic `u64`. For counters maintained *inside*
//!   the registry, use [`Counter::inc`]/[`Counter::add`]; for
//!   republishing totals that an existing struct (e.g. a
//!   `QueueStats`) already maintains, [`Counter::set_total`] mirrors
//!   the external value (call sites must keep it monotone).
//! - [`Gauge`] — a point-in-time `u64` (queue depth, open windows).
//! - [`Histogram`] — fixed upper-bound buckets with a total sum and
//!   count; [`Histogram::start_span`] returns a guard that observes the
//!   elapsed wall-clock nanoseconds on drop, which is how pipeline
//!   stage/run timings are recorded.
//! - [`Snapshot`] — a consistent read of every registered metric,
//!   rendered either as Prometheus text exposition format
//!   ([`Snapshot::render_prometheus_text`]) or as a JSON document
//!   ([`Snapshot::to_json`]) so a run can emit one machine-readable
//!   health document.
//!
//! # Naming scheme
//!
//! Metric names follow `mt_<subsystem>_<what>[_<unit>]` with Prometheus
//! conventions: monotonic counters end in `_total`, timings are
//! histograms in `_nanoseconds`, and variable dimensions (exporter,
//! stage, worker, day) are labels, never name fragments. See
//! `DESIGN.md` §"Observability" for the full catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod registry;

pub use expose::{render_prometheus_text, to_json};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSample, MetricKind, MetricsRegistry, Sample, SampleValue,
    Snapshot, SpanGuard, DEFAULT_TIME_BUCKETS,
};
