//! The metrics registry: registration, handles, and snapshots.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What kind of metric a registered name is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing count.
    Counter,
    /// A point-in-time value that may go up or down.
    Gauge,
    /// Fixed-bucket distribution with sum and count.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — hot-path increment of a single monotone cell;
        // no other memory is published with it. Cross-metric consistency
        // comes from snapshotting at quiescent points (under the registry
        // lock, after the flush barriers), not from per-op ordering.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Mirrors an externally maintained running total into the counter.
    ///
    /// This exists for *republishing*: several subsystems (queue stats,
    /// collector sessions, the window gate) already keep their own
    /// monotone totals, and the registry exposes them without making
    /// those structs depend on it. Callers own the monotonicity
    /// contract; the store saturates downward (a smaller value than the
    /// current one is ignored) so a stale republish cannot make a
    /// counter appear to regress. Republishing is a *publication*: a
    /// reader that observes the new total (via the `Acquire` load in
    /// [`Counter::get`]) also observes every write the publisher made
    /// before calling this.
    pub fn set_total(&self, total: u64) {
        // ordering: AcqRel — the Release half publishes the writes that
        // produced this total (pairs with the Acquire load in get());
        // the Acquire half orders chained republishes off the same cell.
        self.0.fetch_max(total, Ordering::AcqRel);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        // ordering: Acquire — pairs with the Release in set_total(), so a
        // reader seeing a republished total also sees the writes behind it.
        self.0.load(Ordering::Acquire)
    }
}

/// A gauge handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        // ordering: Release — gauges republish state owned elsewhere
        // (queue depth, window counts); pairing with the Acquire load in
        // get() makes the writes behind the published value visible too.
        self.0.store(v, Ordering::Release);
    }

    /// Sets the gauge to the maximum of its current value and `v`
    /// (high-water-mark upkeep).
    pub fn set_max(&self, v: u64) {
        // ordering: AcqRel — Release publishes like set(); Acquire orders
        // competing high-water-mark updates off the same cell.
        self.0.fetch_max(v, Ordering::AcqRel);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        // ordering: Acquire — pairs with the Release in set()/set_max().
        self.0.load(Ordering::Acquire)
    }
}

/// Default histogram bounds for wall-clock spans, in nanoseconds:
/// 1 µs … 10 s, one bucket per decade.
pub const DEFAULT_TIME_BUCKETS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

#[derive(Debug)]
struct HistogramCore {
    /// Ascending inclusive upper bounds; one implicit `+Inf` bucket
    /// follows.
    bounds: Vec<u64>,
    /// Per-bucket observation counts (`bounds.len() + 1` cells,
    /// non-cumulative; the snapshot accumulates).
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle. Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        let idx = core.bounds.partition_point(|&b| b < v);
        // ordering: Relaxed ×3 — hot-path increments of independent
        // monotone cells. bucket/sum/count agree with each other only at
        // quiescent points (see the registry docs); mid-run readers may
        // see a bucket ahead of the count, which exposition tolerates.
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed); // ordering: Relaxed — see above
        core.count.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — see above
    }

    /// Starts a span: the guard observes the elapsed wall-clock
    /// nanoseconds into this histogram when dropped.
    pub fn start_span(&self) -> SpanGuard {
        SpanGuard {
            histogram: self.clone(),
            started: Instant::now(),
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — meaningful reads happen after a quiescent
        // point (thread join / flush barrier) whose own synchronization
        // makes all prior observes visible; a mid-run read is a monotone
        // lower bound, which progress reporting tolerates.
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — same quiescent-point argument as count().
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// Times one span of work; observes elapsed nanoseconds on drop.
#[derive(Debug)]
pub struct SpanGuard {
    histogram: Histogram,
    started: Instant,
}

impl SpanGuard {
    /// Elapsed time so far, without ending the span.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.histogram.observe(self.elapsed_nanos());
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Slot {
    fn kind(&self) -> MetricKind {
        match self {
            Slot::Counter(_) => MetricKind::Counter,
            Slot::Gauge(_) => MetricKind::Gauge,
            Slot::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    slot: Slot,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<Entry>,
    /// `(name, labels)` → index into `entries`, for idempotent
    /// registration.
    index: HashMap<(String, Vec<(String, String)>), usize>,
}

/// A registry of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with`-labels
/// variants) takes a mutex briefly and is idempotent: asking for the
/// same `(name, labels)` again returns a handle to the same cell, so
/// independent subsystems can share series without coordination.
/// Updates through handles are single atomic operations and never touch
/// the registry lock. [`MetricsRegistry::snapshot`] reads every series
/// under the lock in one pass; because the system snapshots at its
/// quiescent points (window close barriers, end of run), the snapshot
/// is consistent across metrics there.
///
/// Memory ordering follows a two-tier discipline. Event-site updates
/// ([`Counter::add`], [`Histogram::observe`]) are `Relaxed`: each is a
/// single monotone cell, and cross-metric agreement is provided by the
/// quiescent-point synchronization (joins and flush barriers), not by
/// the atomics. Republishing ops ([`Counter::set_total`],
/// [`Gauge::set`], [`Gauge::set_max`]) are `Release` (or `AcqRel`) and
/// the scalar getters are `Acquire`, so a reader that observes a
/// republished value also observes every write the publisher made
/// before republishing — health snapshots taken off a live gauge can
/// trust what they see even between barriers.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self
            .inner
            .lock() // lock: obs.registry
            // check: allow(no_panic, "poisoning means a registrant panicked mid-registration; re-raising is the only honest report")
            .expect("registry lock poisoned")
            .entries
            .len();
        write!(f, "MetricsRegistry({n} series)")
    }
}

fn assert_valid_name(name: &str) {
    assert!(
        !name.is_empty()
            && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
            && !name.as_bytes()[0].is_ascii_digit(),
        "invalid metric name {name:?}: use [a-zA-Z_][a-zA-Z0-9_]*"
    );
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Slot,
    ) -> Slot {
        assert_valid_name(name);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        // check: allow(no_panic, "poisoning means a registrant panicked mid-registration; re-raising is the only honest report")
        let mut inner = self.inner.lock().expect("registry lock poisoned"); // lock: obs.registry
        let key = (name.to_owned(), labels.clone());
        if let Some(&i) = inner.index.get(&key) {
            let entry = &inner.entries[i];
            let slot = make();
            assert_eq!(
                entry.slot.kind(),
                slot.kind(),
                "metric {name:?} re-registered as a different kind"
            );
            return match &entry.slot {
                Slot::Counter(c) => Slot::Counter(c.clone()),
                Slot::Gauge(g) => Slot::Gauge(g.clone()),
                Slot::Histogram(h) => Slot::Histogram(h.clone()),
            };
        }
        let slot = make();
        let handle = match &slot {
            Slot::Counter(c) => Slot::Counter(c.clone()),
            Slot::Gauge(g) => Slot::Gauge(g.clone()),
            Slot::Histogram(h) => Slot::Histogram(h.clone()),
        };
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_owned(),
            labels,
            help: help.to_owned(),
            slot,
        });
        inner.index.insert(key, i);
        handle
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or retrieves) a counter with labels.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.register(name, labels, help, || {
            Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Slot::Counter(c) => c,
            // check: allow(no_panic, "register() returns the slot created by make (or an existing one it kind-checked against make's), so the variant always matches the constructor")
            _ => unreachable!("registered as counter"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or retrieves) a gauge with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.register(name, labels, help, || {
            Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0))))
        }) {
            Slot::Gauge(g) => g,
            // check: allow(no_panic, "register() returns the slot created by make (or an existing one it kind-checked against make's), so the variant always matches the constructor")
            _ => unreachable!("registered as gauge"),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram over the given
    /// ascending upper bounds (a `+Inf` bucket is implicit).
    pub fn histogram(&self, name: &str, bounds: &[u64], help: &str) -> Histogram {
        self.histogram_with(name, &[], bounds, help)
    }

    /// Registers (or retrieves) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
        help: &str,
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        match self.register(name, labels, help, || {
            Slot::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })))
        }) {
            Slot::Histogram(h) => h,
            // check: allow(no_panic, "register() returns the slot created by make (or an existing one it kind-checked against make's), so the variant always matches the constructor")
            _ => unreachable!("registered as histogram"),
        }
    }

    /// Reads every registered series into a [`Snapshot`], sorted by
    /// `(name, labels)` so exposition output is deterministic.
    pub fn snapshot(&self) -> Snapshot {
        // check: allow(no_panic, "poisoning means a registrant panicked mid-registration; re-raising is the only honest report")
        let inner = self.inner.lock().expect("registry lock poisoned"); // lock: obs.registry
        let mut samples: Vec<Sample> = inner
            .entries
            .iter()
            .map(|e| Sample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value: match &e.slot {
                    Slot::Counter(c) => SampleValue::Counter(c.get()),
                    Slot::Gauge(g) => SampleValue::Gauge(g.get()),
                    Slot::Histogram(h) => {
                        let core = &h.0;
                        SampleValue::Histogram(HistogramSample {
                            bounds: core.bounds.clone(),
                            // ordering: Relaxed ×3 — snapshots are taken at
                            // quiescent points; the barrier/join that made
                            // the system quiescent already ordered every
                            // observe before these loads.
                            buckets: core
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed)) // ordering: Relaxed — see above
                                .collect(),
                            sum: core.sum.load(Ordering::Relaxed), // ordering: Relaxed — see above
                            count: core.count.load(Ordering::Relaxed), // ordering: Relaxed — see above
                        })
                    }
                },
            })
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { samples }
    }
}

/// One series' value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram's buckets, sum, and count.
    Histogram(HistogramSample),
}

impl SampleValue {
    /// The metric kind this value belongs to.
    pub fn kind(&self) -> MetricKind {
        match self {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }

    /// The scalar value of a counter or gauge sample.
    pub fn as_scalar(&self) -> Option<u64> {
        match self {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => Some(*v),
            SampleValue::Histogram(_) => None,
        }
    }
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Ascending inclusive upper bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket counts, non-cumulative, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSample {
    /// Merges `other` into this sample bucket-wise: per-bucket counts,
    /// sum, and count all add. Both samples must have identical bounds
    /// — merging histograms bucketed differently would silently smear
    /// observations across bucket edges — so mismatched bounds are an
    /// error, not a guess.
    ///
    /// This is how per-loop ingest-latency histograms (one series per
    /// event loop) aggregate into one daemon-wide distribution for
    /// p50/p99 reporting: the per-loop series share their bounds, so
    /// the merged quantile estimates are exactly what one shared
    /// histogram would have reported.
    pub fn merge(&mut self, other: &HistogramSample) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds differ: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    /// The upper bound of the bucket containing quantile `q` (0..=1) —
    /// the standard bucketed-quantile estimate. Returns `None` for an
    /// empty histogram, and the largest finite bound when the quantile
    /// lands in the `+Inf` bucket.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // +Inf bucket: fall back to the largest finite bound,
                // as Prometheus's histogram_quantile does.
                return match self.bounds.get(i) {
                    Some(&b) => Some(b),
                    None => self.bounds.last().copied(),
                };
            }
        }
        self.bounds.last().copied()
    }
}

/// One registered series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The help string.
    pub help: String,
    /// The value read at snapshot time.
    pub value: SampleValue,
}

/// A consistent, deterministically ordered read of a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All series, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// The scalar value of the series with this exact name and labels.
    pub fn scalar(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .and_then(|s| s.value.as_scalar())
    }

    /// Merges every histogram series with this name (across all label
    /// sets) into one [`HistogramSample`], bucket-wise. `None` when the
    /// name has no histogram series; `Err` when two series disagree on
    /// bounds. The per-loop → daemon-wide aggregation path.
    pub fn merged_histogram(&self, name: &str) -> Result<Option<HistogramSample>, String> {
        let mut merged: Option<HistogramSample> = None;
        for s in &self.samples {
            let SampleValue::Histogram(h) = &s.value else {
                continue;
            };
            if s.name != name {
                continue;
            }
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => m.merge(h)?,
            }
        }
        Ok(merged)
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn render_prometheus_text(&self) -> String {
        crate::expose::render_prometheus_text(self)
    }

    /// Renders the snapshot as a JSON value tree.
    pub fn to_json(&self) -> serde::Value {
        crate::expose::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("mt_test_total", "a test counter");
        a.inc();
        a.add(4);
        let b = reg.counter("mt_test_total", "a test counter");
        b.inc();
        assert_eq!(a.get(), 6, "handles share one cell");
        assert_eq!(reg.snapshot().scalar("mt_test_total", &[]), Some(6));
    }

    #[test]
    fn set_total_never_regresses() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("mt_mirror_total", "republished");
        c.set_total(10);
        c.set_total(7);
        assert_eq!(c.get(), 10, "stale republish ignored");
        c.set_total(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn labels_separate_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("mt_flows_total", &[("exporter", "A")], "per-exporter");
        let b = reg.counter_with("mt_flows_total", &[("exporter", "B")], "per-exporter");
        a.add(3);
        b.add(5);
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("mt_flows_total", &[("exporter", "A")]), Some(3));
        assert_eq!(snap.scalar("mt_flows_total", &[("exporter", "B")]), Some(5));
    }

    #[test]
    fn histogram_buckets_and_span() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("mt_lat_nanoseconds", &[10, 100], "latency");
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1_000); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
        let snap = reg.snapshot();
        let SampleValue::Histogram(hs) = &snap.samples[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(hs.buckets, vec![2, 1, 1]);

        drop(h.start_span());
        assert_eq!(h.count(), 5, "span observed on drop");
    }

    #[test]
    fn gauge_set_and_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("mt_depth", "queue depth");
        g.set(4);
        g.set(2);
        assert_eq!(g.get(), 2);
        g.set_max(9);
        g.set_max(3);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn snapshot_is_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("mt_b_total", "");
        reg.counter("mt_a_total", "");
        reg.counter_with("mt_a_total", &[("x", "2")], "");
        reg.counter_with("mt_a_total", &[("x", "1")], "");
        let names: Vec<(String, Vec<(String, String)>)> = reg
            .snapshot()
            .samples
            .into_iter()
            .map(|s| (s.name, s.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_is_rejected() {
        let reg = MetricsRegistry::new();
        reg.counter("mt_x", "");
        reg.gauge("mt_x", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_is_rejected() {
        MetricsRegistry::new().counter("1bad-name", "");
    }

    /// Pins the Release/Acquire publish contract: a reader that
    /// observes counter `b`'s republished total must also observe the
    /// `a` republish that happened before it on the publisher thread.
    /// Under the old all-Relaxed scheme nothing ordered the two cells
    /// and a snapshot between barriers could see `b` ahead of `a`.
    #[test]
    fn republish_order_is_visible() {
        let reg = Arc::new(MetricsRegistry::new());
        let a = reg.counter("mt_pub_a_total", "");
        let b = reg.counter("mt_pub_b_total", "");
        let stop = Arc::new(AtomicU64::new(0));

        let publisher = {
            let (a, b, stop) = (a.clone(), b.clone(), stop.clone());
            std::thread::spawn(move || {
                for i in 1..=20_000u64 {
                    a.set_total(i);
                    b.set_total(i);
                }
                stop.store(1, Ordering::Release);
            })
        };
        // b is republished after a, so any observed b-total must be
        // matched or exceeded by the a-total read *after* it.
        // ordering: Acquire — test observes the publisher's stop flag.
        while stop.load(Ordering::Acquire) == 0 {
            let tb = b.get();
            let ta = a.get();
            assert!(ta >= tb, "saw b={tb} published but a={ta} behind it");
        }
        publisher.join().unwrap();
        assert_eq!(a.get(), 20_000);
        assert_eq!(b.get(), 20_000);
    }

    #[test]
    fn concurrent_updates_survive() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("mt_conc_total", "");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn histogram_quantile_upper_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("mt_q_test", &[10, 100, 1000], "");
        assert_eq!(histo_sample(&reg).quantile_upper_bound(0.5), None);
        for v in [5, 5, 5, 50, 50, 50, 50, 500, 500, 5000] {
            h.observe(v);
        }
        let s = histo_sample(&reg);
        assert_eq!(s.quantile_upper_bound(0.0), Some(10));
        assert_eq!(s.quantile_upper_bound(0.3), Some(10));
        assert_eq!(s.quantile_upper_bound(0.5), Some(100));
        assert_eq!(s.quantile_upper_bound(0.9), Some(1000));
        // The 10th observation sits in +Inf: report the top finite bound.
        assert_eq!(s.quantile_upper_bound(0.99), Some(1000));
        assert_eq!(s.quantile_upper_bound(1.0), Some(1000));
    }

    /// Merging two per-loop samples must yield exactly the quantile
    /// upper bounds one shared histogram over all observations reports.
    #[test]
    fn histogram_merge_matches_one_shared_histogram() {
        let bounds = [10u64, 100, 1000];
        let reg = MetricsRegistry::new();
        let a = reg.histogram_with("mt_m_test", &[("loop", "0")], &bounds, "");
        let b = reg.histogram_with("mt_m_test", &[("loop", "1")], &bounds, "");
        let shared = reg.histogram("mt_m_all", &bounds, "");
        let (loop0, loop1) = ([5u64, 50, 50, 500], [5u64, 5, 50, 5000]);
        for v in loop0 {
            a.observe(v);
            shared.observe(v);
        }
        for v in loop1 {
            b.observe(v);
            shared.observe(v);
        }
        let snap = reg.snapshot();
        let merged = snap.merged_histogram("mt_m_test").unwrap().unwrap();
        assert_eq!(merged.count, 8);
        assert_eq!(
            merged.sum,
            loop0.iter().sum::<u64>() + loop1.iter().sum::<u64>()
        );
        assert_eq!(merged.buckets, vec![3, 3, 1, 1]);
        let one = snap.merged_histogram("mt_m_all").unwrap().unwrap();
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(
                merged.quantile_upper_bound(q),
                one.quantile_upper_bound(q),
                "quantile {q} diverges from the shared histogram"
            );
        }
        // Pin the absolute estimates too: p50 of {5,5,5,50,50,50,500,5000}.
        assert_eq!(merged.quantile_upper_bound(0.5), Some(100));
        assert_eq!(merged.quantile_upper_bound(0.99), Some(1000));
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let reg = MetricsRegistry::new();
        reg.histogram_with("mt_mm_test", &[("loop", "0")], &[10, 100], "");
        reg.histogram_with("mt_mm_test", &[("loop", "1")], &[10, 200], "");
        let snap = reg.snapshot();
        assert!(snap.merged_histogram("mt_mm_test").is_err());
        assert_eq!(snap.merged_histogram("mt_absent").unwrap(), None);
    }

    fn histo_sample(reg: &MetricsRegistry) -> HistogramSample {
        match &reg
            .snapshot()
            .samples
            .iter()
            .find(|s| s.name == "mt_q_test")
            .expect("registered")
            .value
        {
            SampleValue::Histogram(h) => h.clone(),
            other => panic!("not a histogram: {other:?}"),
        }
    }
}
