//! Snapshot exposition: Prometheus text format and a JSON value tree.

use crate::registry::{Sample, SampleValue, Snapshot};
use serde::{Map, Value};
use std::fmt::Write as _;

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// HELP text escaping per the text exposition format: only backslash
/// and newline are escaped (quotes are legal in HELP, unlike labels).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// `{k1="v1",k2="v2"}`, or `""` when there are no labels.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers once per metric name,
/// one line per series, histograms expanded to cumulative
/// `_bucket{le=...}` lines plus `_sum` and `_count`.
pub fn render_prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snapshot.samples {
        if last_name != Some(s.name.as_str()) {
            if !s.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(&s.help));
            }
            let _ = writeln!(out, "# TYPE {} {}", s.name, s.value.kind().as_str());
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
            }
            SampleValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = match h.bounds.get(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_owned(),
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_block(&s.labels, Some(("le", &le))),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

fn sample_json(s: &Sample) -> Value {
    let mut obj = Map::new();
    obj.insert("name".into(), Value::String(s.name.clone()));
    obj.insert("kind".into(), Value::String(s.value.kind().as_str().into()));
    let mut labels = Map::new();
    for (k, v) in &s.labels {
        labels.insert(k.clone(), Value::String(v.clone()));
    }
    obj.insert("labels".into(), Value::Object(labels));
    match &s.value {
        SampleValue::Counter(v) | SampleValue::Gauge(v) => {
            obj.insert("value".into(), Value::U64(*v));
        }
        SampleValue::Histogram(h) => {
            let mut cumulative = 0u64;
            let buckets: Vec<Value> = h
                .buckets
                .iter()
                .enumerate()
                .map(|(i, count)| {
                    cumulative += count;
                    let mut b = Map::new();
                    let le = match h.bounds.get(i) {
                        Some(bound) => bound.to_string(),
                        None => "+Inf".to_owned(),
                    };
                    b.insert("le".into(), Value::String(le));
                    b.insert("count".into(), Value::U64(cumulative));
                    Value::Object(b)
                })
                .collect();
            obj.insert("buckets".into(), Value::Array(buckets));
            obj.insert("sum".into(), Value::U64(h.sum));
            obj.insert("count".into(), Value::U64(h.count));
        }
    }
    if !s.help.is_empty() {
        obj.insert("help".into(), Value::String(s.help.clone()));
    }
    Value::Object(obj)
}

/// Renders a snapshot as a JSON value tree:
/// `{"metrics": [{name, kind, labels, value|buckets+sum+count, help}]}`,
/// in the snapshot's deterministic `(name, labels)` order.
pub fn to_json(snapshot: &Snapshot) -> Value {
    let mut root = Map::new();
    root.insert(
        "metrics".into(),
        Value::Array(snapshot.samples.iter().map(sample_json).collect()),
    );
    Value::Object(root)
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn text_format_shape() {
        let reg = MetricsRegistry::new();
        reg.counter_with("mt_flows_total", &[("exporter", "A")], "flows decoded")
            .add(7);
        reg.gauge("mt_queue_depth", "current depth").set(3);
        let h = reg.histogram("mt_run_nanoseconds", &[10, 100], "run time");
        h.observe(5);
        h.observe(500);
        let text = reg.snapshot().render_prometheus_text();
        assert!(text.contains("# HELP mt_flows_total flows decoded\n"));
        assert!(text.contains("# TYPE mt_flows_total counter\n"));
        assert!(text.contains("mt_flows_total{exporter=\"A\"} 7\n"));
        assert!(text.contains("# TYPE mt_queue_depth gauge\n"));
        assert!(text.contains("mt_queue_depth 3\n"));
        assert!(text.contains("mt_run_nanoseconds_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("mt_run_nanoseconds_bucket{le=\"100\"} 1\n"));
        assert!(text.contains("mt_run_nanoseconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("mt_run_nanoseconds_sum 505\n"));
        assert!(text.contains("mt_run_nanoseconds_count 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("mt_x_total", &[("name", "a\"b\\c\nd")], "")
            .inc();
        let text = reg.snapshot().render_prometheus_text();
        assert!(text.contains("mt_x_total{name=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn json_round_trips_through_serde_json() {
        let reg = MetricsRegistry::new();
        reg.counter_with("mt_flows_total", &[("exporter", "B")], "flows")
            .add(2);
        reg.histogram("mt_t_nanoseconds", &[10], "t").observe(4);
        let json = reg.snapshot().to_json();
        let text = serde_json::to_string(&json).expect("serializes");
        let back = serde_json::from_str::<serde::Value>(&text).expect("parses back");
        assert_eq!(json, back);
        let serde::Value::Object(root) = &json else {
            panic!("expected object");
        };
        let serde::Value::Array(metrics) = root.get("metrics").unwrap() else {
            panic!("expected array");
        };
        assert_eq!(metrics.len(), 2);
    }
}
