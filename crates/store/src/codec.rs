//! Byte-level primitives for the store format: little-endian scalars,
//! LEB128 varints, delta-coded ascending id lists, and the FNV-1a
//! checksum. Every decode path is total — malformed input comes back
//! as a [`StoreError`], never a panic or a silent misread.

use crate::error::StoreError;

/// Appends a little-endian u16.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a strictly-ascending u32 list as count + first + deltas,
/// all varint. Deltas between consecutive ids are `id[i] - id[i-1]`,
/// which for dense slot lists makes most entries one byte.
pub fn put_delta_list(out: &mut Vec<u8>, ids: &[u32]) {
    put_varint(out, ids.len() as u64);
    let mut prev = 0u32;
    for (i, &id) in ids.iter().enumerate() {
        let delta = if i == 0 { id } else { id - prev };
        put_varint(out, u64::from(delta));
        prev = id;
    }
}

/// FNV-1a over a byte slice: the store's integrity checksum. Not
/// cryptographic — it guards against truncation and bit rot, not
/// adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A bounds-checked cursor over an encoded buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a LEB128 varint, rejecting encodings that overflow u64.
    pub fn varint(&mut self) -> Result<u64, StoreError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            let low = u64::from(byte & 0x7f);
            if shift >= 63 && low > 1 {
                return Err(StoreError::Corrupt("varint overflows u64"));
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(StoreError::Corrupt("varint longer than 10 bytes"));
            }
        }
    }

    /// Reads a varint that must fit a u32.
    pub fn varint_u32(&mut self) -> Result<u32, StoreError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| StoreError::Corrupt("value exceeds u32"))
    }

    /// Reads a varint that must fit a u16.
    pub fn varint_u16(&mut self) -> Result<u16, StoreError> {
        let v = self.varint()?;
        u16::try_from(v).map_err(|_| StoreError::Corrupt("value exceeds u16"))
    }

    /// Reads a length prefix that claims at most one element per
    /// remaining byte — a cheap cap that stops a corrupt count from
    /// driving a huge allocation before the inevitable `Truncated`.
    pub fn bounded_len(&mut self) -> Result<usize, StoreError> {
        let n = self.varint()?;
        let cap = self.remaining() as u64;
        if n > cap {
            return Err(StoreError::Truncated {
                needed: n as usize,
                available: self.remaining(),
            });
        }
        Ok(n as usize)
    }

    /// Reads a strictly-ascending delta-coded u32 list written by
    /// [`put_delta_list`].
    pub fn delta_list(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.bounded_len()?;
        let mut out = Vec::with_capacity(n);
        let mut prev = 0u32;
        for i in 0..n {
            let delta = self.varint_u32()?;
            let id = if i == 0 {
                delta
            } else {
                if delta == 0 {
                    return Err(StoreError::Corrupt("delta list not strictly ascending"));
                }
                prev.checked_add(delta)
                    .ok_or(StoreError::Corrupt("delta list overflows u32"))?
            };
            out.push(id);
            prev = id;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_overflow_is_rejected() {
        // 11 continuation bytes: longer than any valid u64 varint.
        let buf = [0xffu8; 11];
        assert!(matches!(
            Reader::new(&buf).varint(),
            Err(StoreError::Corrupt(_))
        ));
        // 10 bytes whose top bits overflow the 64th bit.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            Reader::new(&buf).varint(),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn delta_list_round_trips() {
        for ids in [vec![], vec![0], vec![5], vec![0, 1, 2, 900, u32::MAX]] {
            let mut buf = Vec::new();
            put_delta_list(&mut buf, &ids);
            assert_eq!(Reader::new(&buf).delta_list().unwrap(), ids);
        }
    }

    #[test]
    fn delta_list_rejects_repeats_and_mad_counts() {
        let mut buf = Vec::new();
        put_delta_list(&mut buf, &[3, 3]);
        // Encoding a repeat produces delta 0, which decode rejects.
        assert!(matches!(
            Reader::new(&buf).delta_list(),
            Err(StoreError::Corrupt(_))
        ));
        // A count far beyond the remaining bytes is Truncated, cheaply.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1 << 40);
        assert!(matches!(
            Reader::new(&buf).delta_list(),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn truncation_is_truncated_not_panic() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 77);
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(StoreError::Truncated { .. })));
    }
}
