//! The in-memory query side: a slot-indexed cache answering point
//! lookups and per-window range scans, cold-loadable from disk.
//!
//! The serve daemon keeps one [`QueryIndex`] per store: the running
//! summary (merged columns + combined verdicts + first-dark days)
//! plus each persisted window's verdict lists keyed by day. Point
//! queries binary-search the summary's sorted id lists; range scans
//! walk one window's verdict lists. Both are allocation-light and
//! total — unknown days and unroutable blocks are answers, not errors.

use crate::error::StoreError;
use crate::format::{SummaryData, Verdicts, WindowData};
use crate::store::ResultsStore;
use mt_core::PipelineResult;
use mt_types::{Block24, Day, Ipv4, Slot24Index};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What cold-loading a store cost.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ColdLoad {
    /// Window files loaded.
    pub windows: usize,
    /// Total bytes read and validated.
    pub bytes: u64,
}

/// The answer to a point lookup.
#[derive(Debug, Clone, Serialize)]
pub struct BlockReport {
    /// The /24 asked about, e.g. `20.1.2.0`.
    pub block: String,
    /// Whether the block is inside announced (slot-indexed) space.
    pub routed: bool,
    /// `dark`, `unclean`, `gray`, `active` (traffic but no verdict),
    /// or `unseen`.
    pub verdict: &'static str,
    /// First day the block was classified dark, if it ever was.
    pub since_day: Option<u32>,
    /// Windows merged into the summary answering this.
    pub windows: u32,
    /// Days spanned by the summary.
    pub span_days: u32,
    /// Traffic profile, when the block received anything.
    pub profile: Option<BlockProfile>,
    /// Top destination ports across the summary span (global, the
    /// store keeps port histograms per window, not per /24).
    pub top_ports: Vec<PortCount>,
}

/// Per-block traffic profile from the merged columns.
#[derive(Debug, Clone, Serialize)]
pub struct BlockProfile {
    /// Sampled TCP packets destined to the block.
    pub tcp_packets: u64,
    /// Sampled TCP octets.
    pub tcp_octets: u64,
    /// Sampled UDP packets.
    pub udp_packets: u64,
    /// Sampled ICMP packets.
    pub icmp_packets: u64,
    /// Sampled packets of other protocols.
    pub other_packets: u64,
    /// Distinct hosts that received any sampled packet.
    pub hosts: u32,
    /// Top TCP packet sizes by sampled count, at most five.
    pub top_sizes: Vec<SizeCount>,
}

/// One `(port, packets)` histogram entry.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PortCount {
    /// Destination port.
    pub port: u16,
    /// Sampled packets to that port.
    pub count: u64,
}

/// One `(size, packets)` histogram entry.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SizeCount {
    /// TCP packet size in octets.
    pub size: u16,
    /// Sampled packets of that size.
    pub count: u64,
}

/// One row of a range scan.
#[derive(Debug, Clone, Serialize)]
pub struct RangeEntry {
    /// The /24, e.g. `20.1.2.0`.
    pub block: String,
    /// `dark`, `unclean`, or `gray`.
    pub verdict: &'static str,
}

/// The answer to a per-window range scan.
#[derive(Debug, Clone, Serialize)]
pub struct RangeReport {
    /// The window day scanned.
    pub day: u32,
    /// First block of the requested range.
    pub from: String,
    /// Last block of the requested range.
    pub to: String,
    /// Verdicts in range before truncation.
    pub total: usize,
    /// True when the entry list was capped.
    pub truncated: bool,
    /// The verdicts, ascending by block.
    pub verdicts: Vec<RangeEntry>,
}

/// Range scans cap their entry list here and set `truncated` instead
/// of streaming unbounded JSON.
pub const RANGE_SCAN_CAP: usize = 4096;

/// The in-memory, slot-indexed cache the serve daemon queries.
#[derive(Debug)]
pub struct QueryIndex {
    slots: Arc<Slot24Index>,
    summary: SummaryData,
    windows: BTreeMap<Day, Verdicts>,
}

impl QueryIndex {
    /// An empty index over the given slot index.
    pub fn new(slots: Arc<Slot24Index>) -> QueryIndex {
        QueryIndex {
            slots,
            summary: SummaryData::empty(),
            windows: BTreeMap::new(),
        }
    }

    /// Loads everything the store has persisted: the summary plus each
    /// window's verdict lists. Every file is checksum-validated and
    /// fingerprint-gated on the way in.
    pub fn cold_load(store: &ResultsStore) -> Result<(QueryIndex, ColdLoad), StoreError> {
        let mut index = QueryIndex::new(Arc::clone(store.slots()));
        let mut bytes = 0u64;
        if let Some(summary) = store.read_summary()? {
            bytes += std::fs::metadata(store.summary_path()).map_or(0, |m| m.len());
            index.summary = summary;
        }
        let days = store.window_days()?;
        let windows = days.len();
        for day in days {
            let w = store.read_window(day)?;
            bytes += std::fs::metadata(store.window_path(day)).map_or(0, |m| m.len());
            index.windows.insert(day, w.verdicts);
        }
        Ok((index, ColdLoad { windows, bytes }))
    }

    /// Folds a freshly closed window into the cache: merges it into
    /// the running summary (typed errors on fingerprint/threshold/
    /// order mismatch), installs the combined verdicts, and records
    /// the window's own verdicts for range scans.
    pub fn apply_window(
        &mut self,
        w: &WindowData,
        combined: &PipelineResult,
    ) -> Result<(), StoreError> {
        self.summary.merge_window(w)?;
        self.summary
            .set_verdicts(Verdicts::from_result(combined, &self.slots));
        self.windows.insert(w.day, w.verdicts.clone());
        Ok(())
    }

    /// The running summary.
    pub fn summary(&self) -> &SummaryData {
        &self.summary
    }

    /// Days with a cached window, ascending.
    pub fn window_days(&self) -> impl Iterator<Item = Day> + '_ {
        self.windows.keys().copied()
    }

    /// Answers a point lookup for the /24 containing `addr`.
    pub fn point(&self, addr: Ipv4) -> BlockReport {
        let block = Block24::containing(addr);
        let slot = self.slots.slot_of(block);
        let v = &self.summary.verdicts;
        let (verdict_lists, since_list, key): (_, &[(u32, u32)], u32) = match slot {
            Some(s) => (
                [&v.dark_slots, &v.unclean_slots, &v.gray_slots],
                &self.summary.first_dark_slots,
                s,
            ),
            None => (
                [&v.dark_blocks, &v.unclean_blocks, &v.gray_blocks],
                &self.summary.first_dark_blocks,
                block.0,
            ),
        };
        let profile = self.profile_of(slot, block);
        let verdict = if verdict_lists[0].binary_search(&key).is_ok() {
            "dark"
        } else if verdict_lists[1].binary_search(&key).is_ok() {
            "unclean"
        } else if verdict_lists[2].binary_search(&key).is_ok() {
            "gray"
        } else if profile.is_some() {
            "active"
        } else {
            "unseen"
        };
        let since_day = since_list
            .binary_search_by_key(&key, |&(id, _)| id)
            .ok()
            .map(|i| since_list[i].1);
        BlockReport {
            block: block.base().to_string(),
            routed: slot.is_some(),
            verdict,
            since_day,
            windows: self.summary.windows,
            span_days: self.summary.span_days,
            profile,
            top_ports: top_ports(&self.summary.ports, 10),
        }
    }

    /// Scans one window's verdicts over `[from, to]`. `None` means the
    /// day has no persisted window (a 404, not an error).
    pub fn range(&self, day: Day, from: Block24, to: Block24) -> Option<RangeReport> {
        let v = self.windows.get(&day)?;
        let mut entries: Vec<(u32, &'static str)> = Vec::new();
        let mut collect_slots = |ids: &[u32], verdict: &'static str| {
            for &slot in ids {
                let b = self.slots.block_of(slot);
                if b >= from && b <= to {
                    entries.push((b.0, verdict));
                }
            }
        };
        collect_slots(&v.dark_slots, "dark");
        collect_slots(&v.unclean_slots, "unclean");
        collect_slots(&v.gray_slots, "gray");
        let mut collect_blocks = |ids: &[u32], verdict: &'static str| {
            for &id in ids {
                if id >= from.0 && id <= to.0 {
                    entries.push((id, verdict));
                }
            }
        };
        collect_blocks(&v.dark_blocks, "dark");
        collect_blocks(&v.unclean_blocks, "unclean");
        collect_blocks(&v.gray_blocks, "gray");
        entries.sort_unstable_by_key(|&(id, _)| id);
        let total = entries.len();
        let truncated = total > RANGE_SCAN_CAP;
        entries.truncate(RANGE_SCAN_CAP);
        Some(RangeReport {
            day: day.0,
            from: from.base().to_string(),
            to: to.base().to_string(),
            total,
            truncated,
            verdicts: entries
                .into_iter()
                .map(|(id, verdict)| RangeEntry {
                    block: Block24(id).base().to_string(),
                    verdict,
                })
                .collect(),
        })
    }

    fn profile_of(&self, slot: Option<u32>, block: Block24) -> Option<BlockProfile> {
        let c = &self.summary.columns;
        let row = match slot {
            Some(s) => c
                .dst
                .binary_search_by_key(&s, |&(id, _)| id)
                .ok()
                .map(|i| &c.dst[i].1),
            None => c
                .ovf_dst
                .binary_search_by_key(&block.0, |&(id, _)| id)
                .ok()
                .map(|i| &c.ovf_dst[i].1),
        }?;
        let view = row.as_view();
        let mut sizes: Vec<SizeCount> = row
            .tcp_sizes
            .iter()
            .map(|&(size, count)| SizeCount { size, count })
            .collect();
        sizes.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.size.cmp(&b.size)));
        sizes.truncate(5);
        Some(BlockProfile {
            tcp_packets: row.tcp_packets,
            tcp_octets: row.tcp_octets,
            udp_packets: row.udp_packets,
            icmp_packets: row.icmp_packets,
            other_packets: row.other_packets,
            hosts: view.received.len(),
            top_sizes: sizes,
        })
    }
}

/// Top `n` ports by count (count descending, port ascending on ties).
fn top_ports(ports: &[(u16, u64)], n: usize) -> Vec<PortCount> {
    let mut out: Vec<PortCount> = ports
        .iter()
        .map(|&(port, count)| PortCount { port, count })
        .collect();
    out.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.port.cmp(&b.port)));
    out.truncate(n);
    out
}
