//! Filesystem layout and atomic persistence for window and summary
//! files.
//!
//! One directory per telescope: `window-<day>.mtw` per closed day plus
//! a single `summary.mts` holding the running multi-day combination.
//! Writes go through a temp file and rename, so a crashed writer never
//! leaves a half-written file under a valid name. Reads re-validate
//! everything: checksums via decode, and the slot-index fingerprint
//! against the live index, so a store written under an old RIB is a
//! typed error instead of silently misaligned rows.

use crate::error::StoreError;
use crate::format::{SummaryData, WindowData};
use mt_types::{Day, Slot24Index};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where a store lives and which slot index its files must match.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the window and summary files.
    pub dir: PathBuf,
    /// The live slot index; persisted files must carry its
    /// fingerprint.
    pub slots: Arc<Slot24Index>,
}

/// A results store rooted at one directory.
#[derive(Debug)]
pub struct ResultsStore {
    cfg: StoreConfig,
}

impl ResultsStore {
    /// Opens (creating if needed) the store directory.
    pub fn open(cfg: StoreConfig) -> Result<ResultsStore, StoreError> {
        std::fs::create_dir_all(&cfg.dir)?;
        Ok(ResultsStore { cfg })
    }

    /// The live slot index this store validates files against.
    pub fn slots(&self) -> &Arc<Slot24Index> {
        &self.cfg.slots
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Path of one day's window file.
    pub fn window_path(&self, day: Day) -> PathBuf {
        self.cfg.dir.join(format!("window-{:05}.mtw", day.0))
    }

    /// Path of the running summary file.
    pub fn summary_path(&self) -> PathBuf {
        self.cfg.dir.join("summary.mts")
    }

    /// Persists one closed window atomically. Returns bytes written.
    pub fn write_window(&self, w: &WindowData) -> Result<u64, StoreError> {
        self.write_atomic(&self.window_path(w.day), &w.encode())
    }

    /// Persists the running summary atomically. Returns bytes written.
    pub fn write_summary(&self, s: &SummaryData) -> Result<u64, StoreError> {
        self.write_atomic(&self.summary_path(), &s.encode())
    }

    /// Loads and validates one day's window, gating on the live
    /// slot-index fingerprint.
    pub fn read_window(&self, day: Day) -> Result<WindowData, StoreError> {
        let bytes = std::fs::read(self.window_path(day))?;
        let w = WindowData::decode(&bytes)?;
        let expected = self.cfg.slots.fingerprint();
        if w.fingerprint != expected {
            return Err(StoreError::FingerprintMismatch {
                expected,
                found: w.fingerprint,
            });
        }
        Ok(w)
    }

    /// Loads the summary if one has been written, gating on the live
    /// slot-index fingerprint.
    pub fn read_summary(&self) -> Result<Option<SummaryData>, StoreError> {
        let path = self.summary_path();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let s = SummaryData::decode(&bytes)?;
        let expected = self.cfg.slots.fingerprint();
        if s.windows > 0 && s.fingerprint != expected {
            return Err(StoreError::FingerprintMismatch {
                expected,
                found: s.fingerprint,
            });
        }
        Ok(Some(s))
    }

    /// Days with a persisted window file, ascending.
    pub fn window_days(&self) -> Result<Vec<Day>, StoreError> {
        let mut days = Vec::new();
        for entry in std::fs::read_dir(&self.cfg.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_prefix("window-") else {
                continue;
            };
            let Some(stem) = stem.strip_suffix(".mtw") else {
                continue;
            };
            if let Ok(day) = stem.parse::<u32>() {
                days.push(Day(day));
            }
        }
        days.sort_unstable();
        Ok(days)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<u64, StoreError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }
}
