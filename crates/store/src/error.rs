//! Typed failures for the results store.
//!
//! Every way a persisted file can be wrong gets its own variant, so
//! callers (and tests) can tell a stale-RIB mismatch from a truncated
//! download from bit rot. Nothing in the store panics on bad input:
//! decode and merge paths return these instead.

use std::fmt;

/// Everything that can go wrong reading, decoding, or merging
/// persisted results.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the store magic — not ours.
    BadMagic,
    /// A format version this reader does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A window file where a summary was expected, or vice versa.
    WrongKind {
        /// The kind byte the caller expected.
        expected: u8,
        /// The kind byte in the header.
        found: u8,
    },
    /// The buffer ends before the encoding says it should.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Header or payload checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the bytes.
        found: u64,
    },
    /// Structurally invalid payload (non-monotone ids, impossible
    /// counts, varint overflow, ...).
    Corrupt(&'static str),
    /// The file was written against a different `Slot24Index` (stale
    /// RIB vs. persisted window): row ids would silently misalign.
    FingerprintMismatch {
        /// Fingerprint the live index carries.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// The file was accumulated under a different ingest size
    /// threshold, so size-class host sets are not comparable.
    ThresholdMismatch {
        /// Threshold the accumulator carries.
        expected: u16,
        /// Threshold recorded in the file.
        found: u16,
    },
    /// A window offered to the summary out of day order.
    WindowOrder {
        /// Last day already merged into the summary.
        last: u32,
        /// Day of the offered window.
        offered: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o: {e}"),
            StoreError::BadMagic => write!(f, "not a results-store file (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            StoreError::WrongKind { expected, found } => {
                write!(f, "wrong file kind: expected {expected}, found {found}")
            }
            StoreError::Truncated { needed, available } => {
                write!(f, "truncated file: needed {needed} bytes, have {available}")
            }
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, bytes hash to {found:#018x}"
            ),
            StoreError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            StoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "slot-index fingerprint mismatch: live index {expected:#018x}, file {found:#018x} \
                 (stale RIB?)"
            ),
            StoreError::ThresholdMismatch { expected, found } => write!(
                f,
                "size-threshold mismatch: accumulator {expected}, file {found}"
            ),
            StoreError::WindowOrder { last, offered } => write!(
                f,
                "window out of order: summary already holds day {last}, offered day {offered}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
