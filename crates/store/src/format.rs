//! The on-disk format: self-describing header plus delta/bitmap-coded
//! columnar payload.
//!
//! Every file starts with a fixed 64-byte header:
//!
//! ```text
//! offset  size  field
//!      0     8  magic          b"MTSTOR01"
//!      8     4  version        u32 LE, currently 1
//!     12     1  kind           1 = window, 2 = summary
//!     13     3  (padding, zero)
//!     16     4  day            u32 LE (window day / summary first day)
//!     20     4  span_days      u32 LE
//!     24     8  fingerprint    u64 LE, Slot24Index::fingerprint()
//!     32     4  num_slots      u32 LE
//!     36     2  size_threshold u16 LE
//!     38     2  (padding, zero)
//!     40     8  payload_len    u64 LE
//!     48     8  payload_fnv    FNV-1a over the payload bytes
//!     56     8  header_fnv     FNV-1a over header bytes 0..56
//! ```
//!
//! Readers check, in order: length, magic, header checksum, version,
//! kind, payload length, payload checksum — and only then decode. A
//! mismatched RIB fingerprint or size threshold is surfaced as a typed
//! [`StoreError`] by the merge/load paths rather than misaligning rows.
//!
//! Payload columns are laid out struct-of-arrays: ascending row ids as
//! varint delta lists, one varint array per counter column, host sets
//! as raw 256-bit bitmaps (four u64 words), TCP size histograms as a
//! sparse per-row section. Dense ascending slot ids make the deltas
//! mostly one byte each.

use crate::codec::{self, Reader};
use crate::error::StoreError;
use mt_core::PipelineResult;
use mt_flow::{ColumnSlices, DstRowExport, SrcRowExport, TrafficStats, TrafficView};
use mt_types::{Block24, Block24Set, Day, Slot24Index};

/// File magic: "MTSTOR" plus the two-digit major layout generation.
pub const MAGIC: [u8; 8] = *b"MTSTOR01";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header kind byte for a single-window file.
pub const KIND_WINDOW: u8 = 1;
/// Header kind byte for a running-summary file.
pub const KIND_SUMMARY: u8 = 2;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;

/// Per-/24 verdict id lists for one pipeline result, split into
/// in-index slots and out-of-index raw blocks. All six lists are
/// strictly ascending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdicts {
    /// Dark /24s inside the slot index, by slot id.
    pub dark_slots: Vec<u32>,
    /// Unclean /24s inside the slot index, by slot id.
    pub unclean_slots: Vec<u32>,
    /// Gray /24s inside the slot index, by slot id.
    pub gray_slots: Vec<u32>,
    /// Dark /24s outside the slot index, by raw `Block24` id.
    pub dark_blocks: Vec<u32>,
    /// Unclean /24s outside the slot index, by raw `Block24` id.
    pub unclean_blocks: Vec<u32>,
    /// Gray /24s outside the slot index, by raw `Block24` id.
    pub gray_blocks: Vec<u32>,
}

impl Verdicts {
    /// Splits a pipeline result's block sets into slot/overflow lists.
    pub fn from_result(result: &PipelineResult, slots: &Slot24Index) -> Verdicts {
        let mut v = Verdicts::default();
        split_set(&result.dark, slots, &mut v.dark_slots, &mut v.dark_blocks);
        split_set(
            &result.unclean,
            slots,
            &mut v.unclean_slots,
            &mut v.unclean_blocks,
        );
        split_set(&result.gray, slots, &mut v.gray_slots, &mut v.gray_blocks);
        v
    }

    /// Rebuilds the `(dark, unclean, gray)` block sets.
    pub fn to_sets(&self, slots: &Slot24Index) -> (Block24Set, Block24Set, Block24Set) {
        (
            join_set(&self.dark_slots, &self.dark_blocks, slots),
            join_set(&self.unclean_slots, &self.unclean_blocks, slots),
            join_set(&self.gray_slots, &self.gray_blocks, slots),
        )
    }

    /// Total /24s across all six lists.
    pub fn len(&self) -> usize {
        self.dark_slots.len()
            + self.unclean_slots.len()
            + self.gray_slots.len()
            + self.dark_blocks.len()
            + self.unclean_blocks.len()
            + self.gray_blocks.len()
    }

    /// True when no /24 carries any verdict.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_delta_list(out, &self.dark_slots);
        codec::put_delta_list(out, &self.unclean_slots);
        codec::put_delta_list(out, &self.gray_slots);
        codec::put_delta_list(out, &self.dark_blocks);
        codec::put_delta_list(out, &self.unclean_blocks);
        codec::put_delta_list(out, &self.gray_blocks);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Verdicts, StoreError> {
        Ok(Verdicts {
            dark_slots: r.delta_list()?,
            unclean_slots: r.delta_list()?,
            gray_slots: r.delta_list()?,
            dark_blocks: r.delta_list()?,
            unclean_blocks: r.delta_list()?,
            gray_blocks: r.delta_list()?,
        })
    }
}

fn split_set(
    set: &Block24Set,
    slots: &Slot24Index,
    into_slots: &mut Vec<u32>,
    into_blocks: &mut Vec<u32>,
) {
    for block in set.iter() {
        match slots.slot_of(block) {
            Some(slot) => into_slots.push(slot),
            None => into_blocks.push(block.0),
        }
    }
    // Block24Set iterates in address order and slot ids are monotone in
    // address, so both lists arrive sorted; keep that a guarantee.
    into_slots.sort_unstable();
    into_blocks.sort_unstable();
}

fn join_set(slot_ids: &[u32], block_ids: &[u32], slots: &Slot24Index) -> Block24Set {
    let mut set = Block24Set::new();
    for &slot in slot_ids {
        set.insert(slots.block_of(slot));
    }
    for &id in block_ids {
        set.insert(Block24(id));
    }
    set
}

/// One closed day window, ready to persist or just decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowData {
    /// The day this window covers.
    pub day: Day,
    /// Flow records ingested into the window.
    pub records: u64,
    /// Fingerprint of the `Slot24Index` the columns are keyed by.
    pub fingerprint: u64,
    /// Slot count of that index (row-space sanity bound).
    pub num_slots: u32,
    /// The traffic aggregates, slot-ordered.
    pub columns: ColumnSlices,
    /// The window's pipeline verdicts.
    pub verdicts: Verdicts,
    /// Destination-port histogram over the window's sampled flows,
    /// sorted by port.
    pub ports: Vec<(u16, u64)>,
}

impl WindowData {
    /// Snapshots a closed window from live state.
    pub fn build<V: TrafficView>(
        day: Day,
        records: u64,
        stats: &V,
        verdicts: Verdicts,
        ports: &[(u16, u64)],
        slots: &Slot24Index,
    ) -> WindowData {
        WindowData {
            day,
            records,
            fingerprint: slots.fingerprint(),
            num_slots: slots.num_slots(),
            columns: ColumnSlices::export(stats, slots),
            verdicts,
            ports: ports.to_vec(),
        }
    }

    /// Rebuilds a map-layout accumulator from the persisted columns.
    pub fn to_stats(&self, slots: &Slot24Index) -> TrafficStats {
        self.columns.to_stats(slots)
    }

    /// Serialises the window: header plus payload, checksummed.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + 64 * self.columns.rows());
        codec::put_varint(&mut payload, self.records);
        encode_columns(&mut payload, &self.columns);
        self.verdicts.encode(&mut payload);
        encode_ports(&mut payload, &self.ports);
        seal(
            KIND_WINDOW,
            self.day.0,
            1,
            self.fingerprint,
            self.num_slots,
            self.columns.size_threshold,
            payload,
        )
    }

    /// Decodes and fully validates a window file.
    pub fn decode(bytes: &[u8]) -> Result<WindowData, StoreError> {
        let h = Header::decode(bytes, KIND_WINDOW)?;
        let mut r = Reader::new(h.payload(bytes));
        let records = r.varint()?;
        let columns = decode_columns(&mut r, h.size_threshold, h.num_slots)?;
        let verdicts = Verdicts::decode(&mut r)?;
        let ports = decode_ports(&mut r)?;
        if !r.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes after window payload"));
        }
        Ok(WindowData {
            day: Day(h.day),
            records,
            fingerprint: h.fingerprint,
            num_slots: h.num_slots,
            columns,
            verdicts,
            ports,
        })
    }
}

/// The running multi-day combination, maintained by incremental merge
/// of each closed window — the store's replacement for re-merging all
/// windows from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryData {
    /// First merged day, `None` until the first window lands.
    pub first_day: Option<Day>,
    /// Last merged day.
    pub last_day: Option<Day>,
    /// Days spanned, inclusive (`last - first + 1`); 0 when empty.
    pub span_days: u32,
    /// Windows merged in.
    pub windows: u32,
    /// Flow records across all merged windows.
    pub records: u64,
    /// Fingerprint of the `Slot24Index` all windows must share.
    pub fingerprint: u64,
    /// Slot count of that index.
    pub num_slots: u32,
    /// Merged traffic aggregates.
    pub columns: ColumnSlices,
    /// Combined pipeline verdicts over the merged span (set via
    /// [`set_verdicts`](Self::set_verdicts); the store cannot run the
    /// pipeline itself).
    pub verdicts: Verdicts,
    /// First day each in-index /24 was seen dark: `(slot id, day)`,
    /// ascending by slot id.
    pub first_dark_slots: Vec<(u32, u32)>,
    /// First day each out-of-index /24 was seen dark: `(block id, day)`.
    pub first_dark_blocks: Vec<(u32, u32)>,
    /// Merged destination-port histogram, sorted by port.
    pub ports: Vec<(u16, u64)>,
}

impl SummaryData {
    /// A summary with nothing merged yet. The first merged window
    /// stamps the fingerprint, slot count, and size threshold.
    pub fn empty() -> SummaryData {
        SummaryData {
            first_day: None,
            last_day: None,
            span_days: 0,
            windows: 0,
            records: 0,
            fingerprint: 0,
            num_slots: 0,
            columns: ColumnSlices::empty(0),
            verdicts: Verdicts::default(),
            first_dark_slots: Vec::new(),
            first_dark_blocks: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Folds one closed window into the running summary.
    ///
    /// The first window adopts the summary's identity (fingerprint,
    /// slot count, size threshold). Every later window is gated: a
    /// disagreeing fingerprint (stale RIB vs. persisted window),
    /// disagreeing size threshold, or out-of-order day is a typed
    /// error and leaves the summary untouched — never a panic, never
    /// silently misaligned rows.
    pub fn merge_window(&mut self, w: &WindowData) -> Result<(), StoreError> {
        if self.windows == 0 {
            self.fingerprint = w.fingerprint;
            self.num_slots = w.num_slots;
            self.first_day = Some(w.day);
            self.columns = ColumnSlices::empty(w.columns.size_threshold);
        } else {
            if w.fingerprint != self.fingerprint {
                return Err(StoreError::FingerprintMismatch {
                    expected: self.fingerprint,
                    found: w.fingerprint,
                });
            }
            if w.columns.size_threshold != self.columns.size_threshold {
                return Err(StoreError::ThresholdMismatch {
                    expected: self.columns.size_threshold,
                    found: w.columns.size_threshold,
                });
            }
            if let Some(last) = self.last_day {
                if w.day <= last {
                    return Err(StoreError::WindowOrder {
                        last: last.0,
                        offered: w.day.0,
                    });
                }
            }
        }
        self.columns.merge(&w.columns);
        self.records += w.records;
        merge_ports(&mut self.ports, &w.ports);
        for &slot in &w.verdicts.dark_slots {
            if let Err(i) = self
                .first_dark_slots
                .binary_search_by_key(&slot, |&(s, _)| s)
            {
                self.first_dark_slots.insert(i, (slot, w.day.0));
            }
        }
        for &id in &w.verdicts.dark_blocks {
            if let Err(i) = self
                .first_dark_blocks
                .binary_search_by_key(&id, |&(b, _)| b)
            {
                self.first_dark_blocks.insert(i, (id, w.day.0));
            }
        }
        self.last_day = Some(w.day);
        self.windows += 1;
        self.span_days = match (self.first_day, self.last_day) {
            (Some(f), Some(l)) => l.0 - f.0 + 1,
            _ => 0,
        };
        Ok(())
    }

    /// Replaces the combined verdicts — called after each merge with
    /// the pipeline's multi-day result, which the store itself cannot
    /// compute.
    pub fn set_verdicts(&mut self, verdicts: Verdicts) {
        self.verdicts = verdicts;
    }

    /// Rebuilds a map-layout accumulator from the merged columns.
    pub fn to_stats(&self, slots: &Slot24Index) -> TrafficStats {
        self.columns.to_stats(slots)
    }

    /// Serialises the summary: header plus payload, checksummed.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + 64 * self.columns.rows());
        codec::put_varint(&mut payload, u64::from(self.windows));
        codec::put_varint(&mut payload, self.records);
        codec::put_u32(&mut payload, self.last_day.map_or(0, |d| d.0));
        encode_columns(&mut payload, &self.columns);
        self.verdicts.encode(&mut payload);
        encode_dated_list(&mut payload, &self.first_dark_slots);
        encode_dated_list(&mut payload, &self.first_dark_blocks);
        encode_ports(&mut payload, &self.ports);
        seal(
            KIND_SUMMARY,
            self.first_day.map_or(0, |d| d.0),
            self.span_days,
            self.fingerprint,
            self.num_slots,
            self.columns.size_threshold,
            payload,
        )
    }

    /// Decodes and fully validates a summary file.
    pub fn decode(bytes: &[u8]) -> Result<SummaryData, StoreError> {
        let h = Header::decode(bytes, KIND_SUMMARY)?;
        let mut r = Reader::new(h.payload(bytes));
        let windows = r.varint_u32()?;
        let records = r.varint()?;
        let last_day = r.u32()?;
        let columns = decode_columns(&mut r, h.size_threshold, h.num_slots)?;
        let verdicts = Verdicts::decode(&mut r)?;
        let first_dark_slots = decode_dated_list(&mut r)?;
        let first_dark_blocks = decode_dated_list(&mut r)?;
        let ports = decode_ports(&mut r)?;
        if !r.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes after summary payload"));
        }
        Ok(SummaryData {
            first_day: (windows > 0).then_some(Day(h.day)),
            last_day: (windows > 0).then_some(Day(last_day)),
            span_days: h.span_days,
            windows,
            records,
            fingerprint: h.fingerprint,
            num_slots: h.num_slots,
            columns,
            verdicts,
            first_dark_slots,
            first_dark_blocks,
            ports,
        })
    }
}

/// Decoded header fields.
struct Header {
    day: u32,
    span_days: u32,
    fingerprint: u64,
    num_slots: u32,
    size_threshold: u16,
    payload_len: u64,
}

impl Header {
    fn payload<'a>(&self, bytes: &'a [u8]) -> &'a [u8] {
        &bytes[HEADER_LEN..HEADER_LEN + self.payload_len as usize]
    }

    /// Validates length, magic, header checksum, version, kind,
    /// payload length, and payload checksum — in that order.
    fn decode(bytes: &[u8], expected_kind: u8) -> Result<Header, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut r = Reader::new(&bytes[8..HEADER_LEN]);
        // Reads from a 56-byte slice cannot fail, but stay total.
        let version = r.u32()?;
        let kind = r.u16()? & 0xff; // kind byte + first pad byte
        let _pad = r.u16()?;
        let day = r.u32()?;
        let span_days = r.u32()?;
        let fingerprint = r.u64()?;
        let num_slots = r.u32()?;
        let size_threshold = r.u16()?;
        let _pad2 = r.u16()?;
        let payload_len = r.u64()?;
        let payload_fnv = r.u64()?;
        let header_fnv = r.u64()?;
        if codec::fnv1a64(&bytes[..56]) != header_fnv {
            return Err(StoreError::ChecksumMismatch {
                expected: header_fnv,
                found: codec::fnv1a64(&bytes[..56]),
            });
        }
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let kind = kind as u8;
        if kind != expected_kind {
            return Err(StoreError::WrongKind {
                expected: expected_kind,
                found: kind,
            });
        }
        let total = (HEADER_LEN as u64).saturating_add(payload_len);
        if (bytes.len() as u64) < total {
            return Err(StoreError::Truncated {
                needed: total as usize,
                available: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
        let found = codec::fnv1a64(payload);
        if found != payload_fnv {
            return Err(StoreError::ChecksumMismatch {
                expected: payload_fnv,
                found,
            });
        }
        Ok(Header {
            day,
            span_days,
            fingerprint,
            num_slots,
            size_threshold,
            payload_len,
        })
    }
}

/// Assembles header + payload and stamps both checksums.
fn seal(
    kind: u8,
    day: u32,
    span_days: u32,
    fingerprint: u64,
    num_slots: u32,
    size_threshold: u16,
    payload: Vec<u8>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    codec::put_u32(&mut out, VERSION);
    out.push(kind);
    out.extend_from_slice(&[0, 0, 0]);
    codec::put_u32(&mut out, day);
    codec::put_u32(&mut out, span_days);
    codec::put_u64(&mut out, fingerprint);
    codec::put_u32(&mut out, num_slots);
    codec::put_u16(&mut out, size_threshold);
    codec::put_u16(&mut out, 0);
    codec::put_u64(&mut out, payload.len() as u64);
    codec::put_u64(&mut out, codec::fnv1a64(&payload));
    let header_fnv = codec::fnv1a64(&out[..56]);
    codec::put_u64(&mut out, header_fnv);
    out.extend_from_slice(&payload);
    out
}

/// Recomputes both checksums over a (possibly edited) encoded file.
/// Test tooling for corruption vectors: flip payload bytes, reseal the
/// header, and the payload checksum stays honest while the content is
/// wrong — proving decode catches structural damage, not just fnv.
pub fn reseal(bytes: &mut [u8]) {
    if bytes.len() < HEADER_LEN {
        return;
    }
    let payload_fnv = codec::fnv1a64(&bytes[HEADER_LEN..]);
    bytes[48..56].copy_from_slice(&payload_fnv.to_le_bytes());
    let header_fnv = codec::fnv1a64(&bytes[..56]);
    bytes[56..64].copy_from_slice(&header_fnv.to_le_bytes());
}

fn encode_ports(out: &mut Vec<u8>, ports: &[(u16, u64)]) {
    let ids: Vec<u32> = ports.iter().map(|&(p, _)| u32::from(p)).collect();
    codec::put_delta_list(out, &ids);
    for &(_, count) in ports {
        codec::put_varint(out, count);
    }
}

fn decode_ports(r: &mut Reader<'_>) -> Result<Vec<(u16, u64)>, StoreError> {
    let ids = r.delta_list()?;
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        let port = u16::try_from(id).map_err(|_| StoreError::Corrupt("port exceeds u16"))?;
        out.push((port, r.varint()?));
    }
    Ok(out)
}

fn encode_dated_list(out: &mut Vec<u8>, entries: &[(u32, u32)]) {
    let ids: Vec<u32> = entries.iter().map(|&(id, _)| id).collect();
    codec::put_delta_list(out, &ids);
    for &(_, day) in entries {
        codec::put_varint(out, u64::from(day));
    }
}

fn decode_dated_list(r: &mut Reader<'_>) -> Result<Vec<(u32, u32)>, StoreError> {
    let ids = r.delta_list()?;
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        out.push((id, r.varint_u32()?));
    }
    Ok(out)
}

/// Merges a sorted `(port, count)` histogram into another.
fn merge_ports(into: &mut Vec<(u16, u64)>, from: &[(u16, u64)]) {
    for &(port, count) in from {
        match into.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(i) => into[i].1 += count,
            Err(i) => into.insert(i, (port, count)),
        }
    }
}

fn encode_columns(out: &mut Vec<u8>, c: &ColumnSlices) {
    codec::put_varint(out, c.total_flows);
    codec::put_varint(out, c.total_packets);
    codec::put_varint(out, c.total_octets);
    encode_dst_section(out, &c.dst);
    encode_src_section(out, &c.src);
    encode_dst_section(out, &c.ovf_dst);
    encode_src_section(out, &c.ovf_src);
}

fn decode_columns(
    r: &mut Reader<'_>,
    size_threshold: u16,
    num_slots: u32,
) -> Result<ColumnSlices, StoreError> {
    let mut c = ColumnSlices::empty(size_threshold);
    c.total_flows = r.varint()?;
    c.total_packets = r.varint()?;
    c.total_octets = r.varint()?;
    c.dst = decode_dst_section(r)?;
    c.src = decode_src_section(r)?;
    c.ovf_dst = decode_dst_section(r)?;
    c.ovf_src = decode_src_section(r)?;
    if let Some(&(id, _)) = c.dst.last() {
        if id >= num_slots {
            return Err(StoreError::Corrupt("dst slot id beyond index"));
        }
    }
    if let Some(&(id, _)) = c.src.last() {
        if id >= num_slots {
            return Err(StoreError::Corrupt("src slot id beyond index"));
        }
    }
    Ok(c)
}

fn encode_dst_section(out: &mut Vec<u8>, rows: &[(u32, DstRowExport)]) {
    let ids: Vec<u32> = rows.iter().map(|&(id, _)| id).collect();
    codec::put_delta_list(out, &ids);
    for (_, row) in rows {
        codec::put_varint(out, row.tcp_packets);
    }
    for (_, row) in rows {
        codec::put_varint(out, row.tcp_octets);
    }
    for (_, row) in rows {
        codec::put_varint(out, row.udp_packets);
    }
    for (_, row) in rows {
        codec::put_varint(out, row.icmp_packets);
    }
    for (_, row) in rows {
        codec::put_varint(out, row.other_packets);
    }
    for (_, row) in rows {
        put_words(out, &row.received);
    }
    for (_, row) in rows {
        put_words(out, &row.received_tcp);
    }
    for (_, row) in rows {
        put_words(out, &row.received_big_tcp);
    }
    // Sparse size histograms: most /24s see a handful of sizes, many
    // see none; store only rows that have one.
    let with_sizes: Vec<u32> = rows
        .iter()
        .enumerate()
        .filter(|(_, (_, row))| !row.tcp_sizes.is_empty())
        .map(|(i, _)| i as u32)
        .collect();
    codec::put_delta_list(out, &with_sizes);
    for &i in &with_sizes {
        let sizes = &rows[i as usize].1.tcp_sizes;
        let size_ids: Vec<u32> = sizes.iter().map(|&(s, _)| u32::from(s)).collect();
        codec::put_delta_list(out, &size_ids);
        for &(_, count) in sizes {
            codec::put_varint(out, count);
        }
    }
}

fn decode_dst_section(r: &mut Reader<'_>) -> Result<Vec<(u32, DstRowExport)>, StoreError> {
    let ids = r.delta_list()?;
    let mut rows: Vec<(u32, DstRowExport)> = ids
        .into_iter()
        .map(|id| (id, DstRowExport::default()))
        .collect();
    for row in rows.iter_mut() {
        row.1.tcp_packets = r.varint()?;
    }
    for row in rows.iter_mut() {
        row.1.tcp_octets = r.varint()?;
    }
    for row in rows.iter_mut() {
        row.1.udp_packets = r.varint()?;
    }
    for row in rows.iter_mut() {
        row.1.icmp_packets = r.varint()?;
    }
    for row in rows.iter_mut() {
        row.1.other_packets = r.varint()?;
    }
    for row in rows.iter_mut() {
        row.1.received = get_words(r)?;
    }
    for row in rows.iter_mut() {
        row.1.received_tcp = get_words(r)?;
    }
    for row in rows.iter_mut() {
        row.1.received_big_tcp = get_words(r)?;
    }
    let with_sizes = r.delta_list()?;
    for i in with_sizes {
        let row = rows
            .get_mut(i as usize)
            .ok_or(StoreError::Corrupt("size histogram for nonexistent row"))?;
        let size_ids = r.delta_list()?;
        let mut sizes = Vec::with_capacity(size_ids.len());
        for sid in size_ids {
            let size = u16::try_from(sid).map_err(|_| StoreError::Corrupt("size exceeds u16"))?;
            sizes.push((size, r.varint()?));
        }
        row.1.tcp_sizes = sizes;
    }
    Ok(rows)
}

fn encode_src_section(out: &mut Vec<u8>, rows: &[(u32, SrcRowExport)]) {
    let ids: Vec<u32> = rows.iter().map(|&(id, _)| id).collect();
    codec::put_delta_list(out, &ids);
    for &(_, row) in rows {
        codec::put_varint(out, row.packets);
    }
    for &(_, row) in rows {
        put_words(out, &row.originating);
    }
}

fn decode_src_section(r: &mut Reader<'_>) -> Result<Vec<(u32, SrcRowExport)>, StoreError> {
    let ids = r.delta_list()?;
    let mut rows: Vec<(u32, SrcRowExport)> = ids
        .into_iter()
        .map(|id| (id, SrcRowExport::default()))
        .collect();
    for row in rows.iter_mut() {
        row.1.packets = r.varint()?;
    }
    for row in rows.iter_mut() {
        row.1.originating = get_words(r)?;
    }
    Ok(rows)
}

fn put_words(out: &mut Vec<u8>, words: &[u64; 4]) {
    for &w in words {
        codec::put_u64(out, w);
    }
}

fn get_words(r: &mut Reader<'_>) -> Result<[u64; 4], StoreError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}
