//! mt-store: the persistent, queryable results store for closed
//! telescope windows.
//!
//! The streaming scheduler closes one day window at a time; this crate
//! turns each closed window into a compact on-disk artifact and keeps
//! the multi-day combination as a *mergeable running summary* instead
//! of re-merging every window from scratch:
//!
//! - [`codec`] — byte primitives: varints, delta-coded ascending id
//!   lists, bitmap words, FNV-1a checksums, a total bounds-checked
//!   reader;
//! - [`mod@format`] — the self-describing file format (magic, version,
//!   kind, RIB fingerprint, checksums) and the [`WindowData`] /
//!   [`SummaryData`] payloads with their incremental
//!   [`SummaryData::merge_window`];
//! - [`store`] — directory layout and atomic window/summary
//!   persistence, fingerprint-gated reads;
//! - [`query`] — the in-memory slot-indexed [`QueryIndex`] behind
//!   mt-serve's `GET /v1/block/{a.b.c.0}` point lookups and
//!   `GET /v1/windows/{day}/verdicts` range scans, with
//!   [`QueryIndex::cold_load`] from disk;
//! - [`error`] — typed [`StoreError`]s: corrupt or truncated files,
//!   stale-RIB fingerprint mismatches, out-of-order merges.
//!
//! The load-bearing invariant (pinned by `tests/store_equivalence.rs`
//! at the workspace root): a summary reconstructed by loading and
//! merging persisted windows is bit-identical to the in-process
//! multi-day combination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod format;
pub mod query;
pub mod store;

pub use error::StoreError;
pub use format::{reseal, SummaryData, Verdicts, WindowData};
pub use query::{BlockProfile, BlockReport, ColdLoad, QueryIndex, RangeReport};
pub use store::{ResultsStore, StoreConfig};
