//! Store codec round-trip and rejection vectors.
//!
//! Property tests drive random columnar windows — announced-slot rows,
//! overflow-block rows, sparse size histograms, verdict lists, port
//! histograms — through encode → decode and require the result to be
//! bit-identical (and the re-encoding byte-identical, so the format is
//! canonical). Rejection vectors then damage encoded files every way a
//! disk or a stale writer can: truncation at every length, bit flips
//! with and without resealed checksums, wrong magic/kind/version — and
//! require a typed [`StoreError`], never a panic, never silently wrong
//! data. The merge gates (fingerprint, threshold, window order) get the
//! same treatment: typed errors that leave the summary untouched.

use mt_flow::{ColumnSlices, DstRowExport, SrcRowExport};
use mt_store::{reseal, ResultsStore, StoreConfig, StoreError, SummaryData, Verdicts, WindowData};
use mt_types::{Asn, Day, Ipv4, Prefix, PrefixTrie, RibIndex, Slot24Index};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------- strategies

/// splitmix64: expands one seed into well-mixed word patterns so host
/// bitmaps exercise arbitrary bits without 12 extra strategy slots.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn words(seed: u64) -> [u64; 4] {
    [mix(seed), mix(seed ^ 1), mix(seed ^ 2), mix(seed ^ 3)]
}

#[derive(Debug, Clone)]
struct DstSpec {
    id: u32,
    counters: (u64, u64, u64, u64, u64),
    wseed: u64,
    sizes: Vec<(u16, u64)>,
}

fn arb_dst() -> impl Strategy<Value = DstSpec> {
    (
        any::<u32>(),
        (
            0u64..=1_000_000,
            0u64..=1_000_000_000,
            0u64..=1_000_000,
            0u64..=10_000,
            0u64..=10_000,
        ),
        any::<u64>(),
        proptest::collection::vec((any::<u16>(), 1u64..=100_000), 0..6),
    )
        .prop_map(|(id, counters, wseed, sizes)| DstSpec {
            id,
            counters,
            wseed,
            sizes,
        })
}

fn arb_src() -> impl Strategy<Value = (u32, u64, u64)> {
    (any::<u32>(), 0u64..=1_000_000_000, any::<u64>())
}

type VerdictPicks = (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>);

#[derive(Debug, Clone)]
struct WindowSpec {
    day: u32,
    records: u64,
    fingerprint: u64,
    num_slots: u32,
    dst: Vec<DstSpec>,
    src: Vec<(u32, u64, u64)>,
    ovf_dst: Vec<DstSpec>,
    ovf_src: Vec<(u32, u64, u64)>,
    verdicts: VerdictPicks,
    ports: Vec<(u16, u64)>,
    totals: (u64, u64, u64),
    size_threshold: u16,
}

fn arb_window() -> impl Strategy<Value = WindowSpec> {
    (
        1u32..=30_000,
        0u64..=1_000_000_000_000,
        any::<u64>(),
        1u32..=4096,
        proptest::collection::vec(arb_dst(), 0..24),
        proptest::collection::vec(arb_src(), 0..24),
        proptest::collection::vec(arb_dst(), 0..6),
        proptest::collection::vec(arb_src(), 0..6),
        (
            proptest::collection::vec(any::<u32>(), 0..16),
            proptest::collection::vec(any::<u32>(), 0..16),
            proptest::collection::vec(any::<u32>(), 0..16),
            proptest::collection::vec(any::<u32>(), 0..8),
            proptest::collection::vec(any::<u32>(), 0..8),
            proptest::collection::vec(any::<u32>(), 0..8),
        ),
        proptest::collection::vec((any::<u16>(), 1u64..=u64::from(u32::MAX)), 0..10),
        (
            0u64..=1_000_000_000_000,
            0u64..=1_000_000_000_000,
            0u64..=1_000_000_000_000,
        ),
        any::<u16>(),
    )
        .prop_map(
            |(
                day,
                records,
                fingerprint,
                num_slots,
                dst,
                src,
                ovf_dst,
                ovf_src,
                verdicts,
                ports,
                totals,
                size_threshold,
            )| WindowSpec {
                day,
                records,
                fingerprint,
                num_slots,
                dst,
                src,
                ovf_dst,
                ovf_src,
                verdicts,
                ports,
                totals,
                size_threshold,
            },
        )
}

// ------------------------------------------------------------- construction

/// Raw picks → strictly ascending unique ids below `bound`, the shape
/// every delta-coded list requires.
fn ascending(picks: &[u32], bound: u32) -> Vec<u32> {
    let mut v: Vec<u32> = picks.iter().map(|&x| x % bound).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn dst_row(s: &DstSpec) -> DstRowExport {
    let mut sizes = s.sizes.clone();
    sizes.sort_unstable_by_key(|&(sz, _)| sz);
    sizes.dedup_by_key(|pair| pair.0);
    DstRowExport {
        tcp_packets: s.counters.0,
        tcp_octets: s.counters.1,
        udp_packets: s.counters.2,
        icmp_packets: s.counters.3,
        other_packets: s.counters.4,
        received: words(s.wseed),
        received_tcp: words(s.wseed ^ 0x5555),
        received_big_tcp: words(s.wseed ^ 0xaaaa),
        tcp_sizes: sizes,
    }
}

fn dst_rows(specs: &[DstSpec], bound: u32) -> Vec<(u32, DstRowExport)> {
    let mut rows: Vec<(u32, DstRowExport)> =
        specs.iter().map(|s| (s.id % bound, dst_row(s))).collect();
    rows.sort_unstable_by_key(|&(id, _)| id);
    rows.dedup_by_key(|row| row.0);
    rows
}

fn src_rows(specs: &[(u32, u64, u64)], bound: u32) -> Vec<(u32, SrcRowExport)> {
    let mut rows: Vec<(u32, SrcRowExport)> = specs
        .iter()
        .map(|&(id, packets, wseed)| {
            (
                id % bound,
                SrcRowExport {
                    packets,
                    originating: words(wseed),
                },
            )
        })
        .collect();
    rows.sort_unstable_by_key(|&(id, _)| id);
    rows.dedup_by_key(|row| row.0);
    rows
}

const BLOCK_SPACE: u32 = 1 << 24;

fn build_window(spec: &WindowSpec) -> WindowData {
    let mut columns = ColumnSlices::empty(spec.size_threshold);
    columns.dst = dst_rows(&spec.dst, spec.num_slots);
    columns.src = src_rows(&spec.src, spec.num_slots);
    columns.ovf_dst = dst_rows(&spec.ovf_dst, BLOCK_SPACE);
    columns.ovf_src = src_rows(&spec.ovf_src, BLOCK_SPACE);
    columns.total_flows = spec.totals.0;
    columns.total_packets = spec.totals.1;
    columns.total_octets = spec.totals.2;
    let mut ports = spec.ports.clone();
    ports.sort_unstable_by_key(|&(p, _)| p);
    ports.dedup_by_key(|pair| pair.0);
    let v = &spec.verdicts;
    WindowData {
        day: Day(spec.day),
        records: spec.records,
        fingerprint: spec.fingerprint,
        num_slots: spec.num_slots,
        columns,
        verdicts: Verdicts {
            dark_slots: ascending(&v.0, spec.num_slots),
            unclean_slots: ascending(&v.1, spec.num_slots),
            gray_slots: ascending(&v.2, spec.num_slots),
            dark_blocks: ascending(&v.3, BLOCK_SPACE),
            unclean_blocks: ascending(&v.4, BLOCK_SPACE),
            gray_blocks: ascending(&v.5, BLOCK_SPACE),
        },
        ports,
    }
}

// ------------------------------------------------------------- round trips

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_roundtrip_is_bit_identical(spec in arb_window()) {
        let w = build_window(&spec);
        let bytes = w.encode();
        let decoded = WindowData::decode(&bytes).expect("valid file decodes");
        prop_assert_eq!(&decoded, &w);
        // Canonical encoding: re-encoding the decoded window reproduces
        // the exact same bytes.
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn summary_roundtrip_is_bit_identical(spec in arb_window()) {
        let w1 = build_window(&spec);
        let mut w2 = w1.clone();
        w2.day = Day(w1.day.0 + 1);
        let mut summary = SummaryData::empty();
        summary.merge_window(&w1).expect("first merge");
        summary.merge_window(&w2).expect("second merge");
        summary.set_verdicts(w1.verdicts.clone());
        let bytes = summary.encode();
        let decoded = SummaryData::decode(&bytes).expect("valid summary decodes");
        prop_assert_eq!(&decoded, &summary);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn truncation_is_always_a_typed_error(spec in arb_window()) {
        let w = build_window(&spec);
        let bytes = w.encode();
        // Sample truncation points densely near the header and the
        // tail, sparsely in between — every one must be Truncated.
        let mut cuts: Vec<usize> = (0..70.min(bytes.len())).collect();
        cuts.extend((70..bytes.len()).step_by(17));
        cuts.push(bytes.len() - 1);
        for cut in cuts {
            match WindowData::decode(&bytes[..cut]) {
                Err(StoreError::Truncated { .. }) => {}
                other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn bit_flips_never_yield_wrong_data(spec in arb_window()) {
        let w = build_window(&spec);
        let bytes = w.encode();
        // Unresealed flips must fail the checksum (or the magic/version
        // gates in front of it). Resealed *payload* flips may decode,
        // but never to the original window — every payload byte is
        // load-bearing, so corruption is either caught or visibly
        // different, never silent. (Header semantics — magic, kind,
        // version — have their own dedicated vectors below; padding
        // and the span field are not part of a window's identity.)
        for pos in (0..bytes.len()).step_by(23) {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 0x10;
            match WindowData::decode(&dirty) {
                Err(_) => {}
                Ok(got) => prop_assert!(false, "flip at {} decoded as {:?}", pos, got.day),
            }
            if pos >= 64 {
                reseal(&mut dirty);
                if let Ok(got) = WindowData::decode(&dirty) {
                    prop_assert!(got != w, "resealed flip at {} decoded silently equal", pos);
                }
            }
        }
    }
}

// -------------------------------------------------------- rejection vectors

fn sample_window() -> WindowData {
    let mut columns = ColumnSlices::empty(64);
    columns.dst = vec![
        (
            3,
            DstRowExport {
                tcp_packets: 10,
                tcp_octets: 4000,
                udp_packets: 2,
                icmp_packets: 1,
                other_packets: 0,
                received: [0b1011, 0, 0, 0],
                received_tcp: [0b0011, 0, 0, 0],
                received_big_tcp: [0b0001, 0, 0, 0],
                tcp_sizes: vec![(40, 8), (1500, 2)],
            },
        ),
        (7, DstRowExport::default()),
    ];
    columns.src = vec![(
        3,
        SrcRowExport {
            packets: 5,
            originating: [1, 0, 0, 0],
        },
    )];
    columns.ovf_dst = vec![(
        0x00c0_0002,
        DstRowExport {
            udp_packets: 9,
            ..DstRowExport::default()
        },
    )];
    columns.total_flows = 17;
    columns.total_packets = 27;
    columns.total_octets = 4000;
    WindowData {
        day: Day(42),
        records: 17,
        fingerprint: 0xdead_beef_cafe_f00d,
        num_slots: 16,
        columns,
        verdicts: Verdicts {
            dark_slots: vec![1, 7],
            unclean_slots: vec![3],
            gray_slots: vec![],
            dark_blocks: vec![0x00c0_0002],
            unclean_blocks: vec![],
            gray_blocks: vec![],
        },
        ports: vec![(23, 12), (445, 5)],
    }
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let mut bytes = sample_window().encode();
    bytes[0] ^= 0xff;
    assert!(matches!(
        WindowData::decode(&bytes),
        Err(StoreError::BadMagic)
    ));
}

#[test]
fn wrong_kind_is_a_typed_error_both_ways() {
    let w = sample_window();
    let bytes = w.encode();
    // A window file fed to the summary decoder, and vice versa.
    assert!(matches!(
        SummaryData::decode(&bytes),
        Err(StoreError::WrongKind {
            expected: 2,
            found: 1
        })
    ));
    let mut summary = SummaryData::empty();
    summary.merge_window(&w).expect("merge");
    assert!(matches!(
        WindowData::decode(&summary.encode()),
        Err(StoreError::WrongKind {
            expected: 1,
            found: 2
        })
    ));
}

#[test]
fn future_version_is_rejected_even_with_valid_checksums() {
    let mut bytes = sample_window().encode();
    bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
    reseal(&mut bytes);
    assert!(matches!(
        WindowData::decode(&bytes),
        Err(StoreError::UnsupportedVersion { found: 2 })
    ));
}

#[test]
fn payload_corruption_without_reseal_fails_the_checksum() {
    let mut bytes = sample_window().encode();
    let pos = bytes.len() - 3;
    bytes[pos] ^= 0x01;
    assert!(matches!(
        WindowData::decode(&bytes),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn trailing_garbage_behind_a_valid_payload_is_checksum_gated() {
    // Extra bytes past payload_len are outside the checksummed region;
    // the decoder must simply ignore them (a reader that read a file
    // mid-append sees a valid prefix).
    let w = sample_window();
    let mut bytes = w.encode();
    bytes.extend_from_slice(b"junk");
    let decoded = WindowData::decode(&bytes).expect("valid prefix decodes");
    assert_eq!(decoded, w);
}

#[test]
fn empty_summary_round_trips() {
    let s = SummaryData::empty();
    let decoded = SummaryData::decode(&s.encode()).expect("empty summary decodes");
    assert_eq!(decoded, s);
    assert_eq!(decoded.first_day, None);
    assert_eq!(decoded.windows, 0);
}

// ------------------------------------------------------------- merge gates

#[test]
fn first_merge_into_an_empty_summary_adopts_the_window_identity() {
    let w = sample_window();
    let mut s = SummaryData::empty();
    s.merge_window(&w).expect("first merge always succeeds");
    assert_eq!(s.fingerprint, w.fingerprint);
    assert_eq!(s.num_slots, w.num_slots);
    assert_eq!(s.columns.size_threshold, w.columns.size_threshold);
    assert_eq!(s.first_day, Some(w.day));
    assert_eq!(s.last_day, Some(w.day));
    assert_eq!(s.span_days, 1);
    assert_eq!(s.windows, 1);
    assert_eq!(s.records, w.records);
    // First-dark tracking starts at the first window's day.
    assert_eq!(s.first_dark_slots, vec![(1, 42), (7, 42)]);
}

#[test]
fn fingerprint_mismatch_is_a_typed_error_and_leaves_the_summary_untouched() {
    let w1 = sample_window();
    let mut w2 = w1.clone();
    w2.day = Day(43);
    w2.fingerprint ^= 1;
    let mut s = SummaryData::empty();
    s.merge_window(&w1).expect("first merge");
    let before = s.clone();
    let err = s
        .merge_window(&w2)
        .expect_err("stale fingerprint must fail");
    assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
    assert_eq!(s, before, "failed merge must not mutate the summary");
}

#[test]
fn threshold_mismatch_is_a_typed_error() {
    let w1 = sample_window();
    let mut w2 = w1.clone();
    w2.day = Day(43);
    w2.columns.size_threshold = 128;
    let mut s = SummaryData::empty();
    s.merge_window(&w1).expect("first merge");
    let before = s.clone();
    assert!(matches!(
        s.merge_window(&w2),
        Err(StoreError::ThresholdMismatch {
            expected: 64,
            found: 128
        })
    ));
    assert_eq!(s, before);
}

#[test]
fn out_of_order_and_duplicate_days_are_rejected() {
    let w1 = sample_window();
    let mut s = SummaryData::empty();
    s.merge_window(&w1).expect("first merge");
    // Same day again.
    assert!(matches!(
        s.merge_window(&w1),
        Err(StoreError::WindowOrder {
            last: 42,
            offered: 42
        })
    ));
    // Earlier day.
    let mut w0 = w1.clone();
    w0.day = Day(41);
    assert!(matches!(
        s.merge_window(&w0),
        Err(StoreError::WindowOrder {
            last: 42,
            offered: 41
        })
    ));
}

#[test]
fn merge_accumulates_counts_and_keeps_first_dark_days() {
    let w1 = sample_window();
    let mut w2 = w1.clone();
    w2.day = Day(43);
    w2.verdicts.dark_slots = vec![2, 7]; // 7 already dark on day 42
    let mut s = SummaryData::empty();
    s.merge_window(&w1).expect("merge 1");
    s.merge_window(&w2).expect("merge 2");
    assert_eq!(s.windows, 2);
    assert_eq!(s.records, 34);
    assert_eq!(s.span_days, 2);
    // Slot 7's first-dark day stays 42; slot 2 enters at 43.
    assert_eq!(s.first_dark_slots, vec![(1, 42), (2, 43), (7, 42)]);
    // Ports add across windows.
    assert_eq!(s.ports, vec![(23, 24), (445, 10)]);
    // Counters doubled in the merged dst row.
    let row = &s.columns.dst[0];
    assert_eq!(row.0, 3);
    assert_eq!(row.1.tcp_packets, 20);
    assert_eq!(row.1.tcp_sizes, vec![(40, 16), (1500, 4)]);
}

// ------------------------------------------------------------- store gating

/// A tiny announced space: `n` aligned /20s from block 0 upward.
fn slot_index(n: u16) -> Arc<Slot24Index> {
    let mut trie = PrefixTrie::new();
    for id in 0..n {
        let base = Ipv4((u32::from(id) * 16) << 8);
        trie.insert(Prefix::new(base, 20).expect("aligned /20"), Asn(64_512));
    }
    Arc::new(Slot24Index::build(&RibIndex::build(&trie)))
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    // ordering: a uniqueness counter; nothing is published through it.
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mt-store-roundtrip-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ))
}

#[test]
fn a_store_written_under_an_old_rib_is_rejected_on_read() {
    let dir = temp_store_dir("stale-rib");
    let old_slots = slot_index(4);
    let store = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: Arc::clone(&old_slots),
    })
    .expect("open store");
    let mut w = sample_window();
    w.fingerprint = old_slots.fingerprint();
    w.num_slots = old_slots.num_slots();
    store.write_window(&w).expect("persist window");
    let mut s = SummaryData::empty();
    s.merge_window(&w).expect("merge");
    store.write_summary(&s).expect("persist summary");

    // Same directory reopened under a different announced space: every
    // read is a typed fingerprint error, not misaligned rows.
    let new_slots = slot_index(8);
    assert_ne!(new_slots.fingerprint(), old_slots.fingerprint());
    let stale = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: new_slots,
    })
    .expect("reopen store");
    assert!(matches!(
        stale.read_window(Day(42)),
        Err(StoreError::FingerprintMismatch { .. })
    ));
    assert!(matches!(
        stale.read_summary(),
        Err(StoreError::FingerprintMismatch { .. })
    ));

    // Under the matching index both reads verify and round-trip.
    let fresh = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: old_slots,
    })
    .expect("reopen matching");
    assert_eq!(fresh.read_window(Day(42)).expect("window reads"), w);
    assert_eq!(fresh.read_summary().expect("summary reads"), Some(s));
    assert_eq!(fresh.window_days().expect("scan"), vec![Day(42)]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_missing_summary_reads_as_none() {
    let dir = temp_store_dir("no-summary");
    let store = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: slot_index(2),
    })
    .expect("open store");
    assert!(store.read_summary().expect("no summary is fine").is_none());
    assert!(store.window_days().expect("empty scan").is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
