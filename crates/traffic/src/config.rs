//! Traffic-generation configuration.
//!
//! Volumes are expressed in *simulation packet units*: the workspace
//! scales the paper's absolute volumes by 1:1000 (≈ 2 000 packets per
//! dark /24 per day instead of ≈ 2 million) and compensates by scaling
//! the IXP sampling rate by the same factor, so every *sampled* statistic
//! the pipeline sees keeps its real-world distribution. EXPERIMENTS.md
//! reports counts alongside this scale factor.

use crate::ports::PortPalette;
use mt_types::{Continent, NetworkType};

/// Configuration of one botnet-style scanning campaign.
#[derive(Debug, Clone)]
pub struct BotnetConfig {
    /// Campaign name (diagnostics only).
    pub name: String,
    /// Destination-port mix of the campaign.
    pub ports: PortPalette,
    /// Fraction of announced /24s probed per day (by a stable hash, so a
    /// campaign re-probes the same blocks across days).
    pub coverage: f64,
    /// Packets aimed at each targeted /24 per day.
    pub pkts_per_target: u64,
    /// Per-continent targeting weights (destination side); continents
    /// not listed get [`BotnetConfig::default_weight`].
    pub continent_weights: Vec<(Continent, f64)>,
    /// Targeting weight for unlisted continents.
    pub default_weight: f64,
    /// Extra multiplier when the destination AS has this network type
    /// (e.g. web scanners hunting unprotected servers in data centers).
    pub type_bias: Option<(NetworkType, f64)>,
    /// Number of distinct bot hosts the campaign sends from.
    pub bots: u32,
}

/// Full traffic-generation configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of broad research-style scanners (each sweeps the full
    /// announced space daily).
    pub research_scanners: u32,
    /// Probe packets a research scanner sends to each /24 per day
    /// (256 hosts × retransmissions).
    pub research_pkts_per_block: u64,
    /// Botnet campaigns.
    pub botnets: Vec<BotnetConfig>,
    /// Mean fraction of research-scanner SYNs carrying a 4-byte MSS
    /// option (48-byte packets instead of 40). Combined with the
    /// single-size botnet SYNs this is calibrated so dark-block average
    /// sizes land between 41 and 44 bytes, as in Section 4.1.
    pub syn_opt_share_mean: f64,
    /// Half-width of the static per-block variation of the option share.
    pub syn_opt_share_spread: f64,
    /// Backscatter: victims per day and reflected blocks per victim.
    pub backscatter_victims: u32,
    /// Number of /24s each victim's backscatter reaches per day.
    pub backscatter_spread: u32,
    /// Spoofed floods: concurrent attacks per day.
    pub spoof_attacks: u32,
    /// Spoofed packets per attack per day, expressed per announced /24
    /// (the flood's forged sources spray the whole space, so pollution
    /// pressure is what matters, not absolute volume).
    pub spoof_intensity: f64,
    /// Probability a forged source address lies in announced space (the
    /// rest is uniform over the whole IPv4 space, which feeds the
    /// unrouted-space tolerance baseline of Section 7.2).
    pub spoof_routed_bias: f64,
    /// Packets of the daily UDP probe sweep aimed at each /24.
    pub udp_sweep_pkts_per_block: u64,
    /// Packets of the daily ICMP echo sweep aimed at each /24 (the
    /// ISI-style census scanners whose history feeds the activity
    /// datasets).
    pub icmp_sweep_pkts_per_block: u64,
    /// Per-telescope UDP attention multipliers (Table 2's UDP shares
    /// differ strongly by site; TEU2's is disproportionately high).
    pub telescope_udp_attention: Vec<f64>,
    /// UDP misconfiguration chatter: emissions per day.
    pub misconfig_emissions: u32,
    /// Packets per misconfiguration emission.
    pub misconfig_pkts: u64,
    /// Production traffic: mean outbound data packets per active /24 per
    /// day, by network type `[ISP, Enterprise, Education, DataCenter]`.
    pub production_out: [u64; 4],
    /// Mean inbound data packets per active /24 per day, same order.
    pub production_in: [u64; 4],
    /// Weekend origination factor by network type, same order (the
    /// paper's Fig. 8 weekend effect: offices go quiet).
    pub weekend_factor: [f64; 4],
    /// Fraction of DataCenter ASes acting as CDN content sources.
    pub cdn_fraction: f64,
    /// Per-telescope scan-attention multipliers, matched by index with
    /// the scenario's telescopes. Telescopes are notorious and draw more
    /// scanning than anonymous dark space (Table 2's per-/24 rates all
    /// exceed the 1.7 M volume cap on average, which is why Table 4's
    /// coverage is partial).
    pub telescope_attention: Vec<f64>,
    /// Fraction of active blocks that are upload-heavy: their inbound is
    /// dominated by 40-byte ACKs, the false positives that plague the
    /// *median* packet-size classifier in Table 3.
    pub upload_heavy_fraction: f64,
}

impl TrafficConfig {
    /// The default campaign roster reproducing the paper's port-by-region
    /// and port-by-type observations.
    fn default_botnets() -> Vec<BotnetConfig> {
        use Continent::*;
        use NetworkType::*;
        let b = |name: &str,
                 ports: &[(u16, f64)],
                 coverage: f64,
                 pkts: u64,
                 cw: &[(Continent, f64)],
                 dw: f64,
                 tb: Option<(NetworkType, f64)>| BotnetConfig {
            name: name.to_owned(),
            ports: PortPalette::new(ports),
            coverage,
            pkts_per_target: pkts,
            continent_weights: cw.to_vec(),
            default_weight: dw,
            type_bias: tb,
            bots: 200,
        };
        vec![
            b(
                "mirai-telnet",
                &[(23, 0.8), (2222, 0.2)],
                0.85,
                200,
                &[],
                1.0,
                None,
            ),
            b(
                "mirai-web",
                &[(8080, 0.5), (80, 0.22), (8443, 0.18), (81, 0.10)],
                0.55,
                130,
                &[],
                1.0,
                None,
            ),
            b(
                "satori",
                &[(37215, 0.62), (52869, 0.38)],
                0.50,
                320,
                &[(Africa, 1.0)],
                0.06,
                None,
            ),
            b(
                "rdp-recon",
                &[(3389, 1.0)],
                0.45,
                110,
                &[(NorthAmerica, 1.0), (Europe, 0.9)],
                0.35,
                None,
            ),
            b("ssh-brute", &[(22, 1.0)], 0.55, 120, &[], 1.0, None),
            b(
                "web-dc",
                &[(80, 0.45), (5038, 0.33), (443, 0.22)],
                0.40,
                100,
                &[],
                1.0,
                Some((DataCenter, 3.0)),
            ),
            b(
                "redis",
                &[(6379, 1.0)],
                0.35,
                120,
                &[(NorthAmerica, 1.0), (Asia, 0.7), (Europe, 0.05)],
                0.25,
                None,
            ),
            b(
                "minecraft",
                &[(25565, 0.7), (60023, 0.3)],
                0.30,
                70,
                &[],
                1.0,
                None,
            ),
            b("smb", &[(445, 1.0)], 0.45, 80, &[], 1.0, None),
            b(
                "adb-5555",
                &[(5555, 1.0)],
                0.40,
                90,
                &[(Asia, 1.0), (Africa, 0.8)],
                0.5,
                None,
            ),
            b(
                "oc-x11",
                &[(6001, 1.0)],
                0.25,
                80,
                &[(Oceania, 1.0)],
                0.08,
                None,
            ),
            b(
                "weblogic-7001",
                &[(7001, 1.0)],
                0.25,
                80,
                &[(NorthAmerica, 1.0)],
                0.10,
                None,
            ),
            b(
                "mysql",
                &[(3306, 1.0)],
                0.30,
                80,
                &[(Africa, 1.0), (NorthAmerica, 0.8)],
                0.25,
                None,
            ),
        ]
    }

    /// Default traffic profile (shared by the small and paper scenarios;
    /// all volumes are per-/24, so the profile is scale-free).
    pub fn default_profile() -> Self {
        TrafficConfig {
            research_scanners: 3,
            research_pkts_per_block: 220,
            botnets: Self::default_botnets(),
            syn_opt_share_mean: 0.45,
            syn_opt_share_spread: 0.10,
            backscatter_victims: 40,
            backscatter_spread: 1_500,
            spoof_attacks: 24,
            spoof_intensity: 0.55,
            spoof_routed_bias: 0.60,
            udp_sweep_pkts_per_block: 70,
            icmp_sweep_pkts_per_block: 18,
            telescope_udp_attention: vec![1.4, 2.0, 5.2],
            misconfig_emissions: 30_000,
            misconfig_pkts: 12,
            production_out: [900, 1_600, 2_200, 7_000],
            production_in: [3_200, 2_600, 3_400, 1_800],
            weekend_factor: [0.90, 0.15, 0.20, 0.95],
            cdn_fraction: 0.06,
            telescope_attention: vec![1.55, 1.70, 1.65],
            upload_heavy_fraction: 0.18,
        }
    }

    /// A lighter profile for unit tests (fewer spoofed packets and less
    /// misconfiguration chatter; same structure).
    pub fn test_profile() -> Self {
        let mut cfg = Self::default_profile();
        cfg.spoof_attacks = 6;
        cfg.spoof_intensity = 0.30;
        cfg.misconfig_emissions = 2_000;
        cfg.backscatter_victims = 10;
        cfg.backscatter_spread = 300;
        cfg
    }

    /// Index into the per-type arrays for a network type.
    pub fn type_index(ty: NetworkType) -> usize {
        match ty {
            NetworkType::Isp => 0,
            NetworkType::Enterprise => 1,
            NetworkType::Education => 2,
            NetworkType::DataCenter => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_sane() {
        let cfg = TrafficConfig::default_profile();
        assert!(cfg.research_scanners > 0);
        assert!(cfg.botnets.len() >= 10);
        // The research-scanner SYN mix (40/48 bytes at the configured
        // option share), diluted by 40-byte botnet SYNs, must keep
        // dark-block averages inside the (40, 44) window the classifier
        // exploits.
        let research_avg = 40.0 + 8.0 * cfg.syn_opt_share_mean;
        assert!(
            research_avg > 40.5 && research_avg < 44.0,
            "avg {research_avg}"
        );
        assert!(cfg.syn_opt_share_mean - cfg.syn_opt_share_spread > 0.0);
        assert!(cfg.syn_opt_share_mean + cfg.syn_opt_share_spread < 1.0);
    }

    #[test]
    fn satori_targets_africa() {
        let cfg = TrafficConfig::default_profile();
        let satori = cfg.botnets.iter().find(|b| b.name == "satori").unwrap();
        assert_eq!(satori.continent_weights, vec![(Continent::Africa, 1.0)]);
        assert!(satori.default_weight < 0.2);
        assert!(satori.ports.entries().iter().any(|&(p, _)| p == 37215));
    }

    #[test]
    fn weekend_quiets_offices() {
        let cfg = TrafficConfig::default_profile();
        let ent = cfg.weekend_factor[TrafficConfig::type_index(NetworkType::Enterprise)];
        let isp = cfg.weekend_factor[TrafficConfig::type_index(NetworkType::Isp)];
        assert!(ent < 0.5 && isp > 0.7);
    }

    #[test]
    fn type_index_is_a_bijection() {
        let mut seen = [false; 4];
        for ty in NetworkType::ALL {
            seen[TrafficConfig::type_index(ty)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }
}
