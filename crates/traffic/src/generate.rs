//! The day-level traffic generators.
//!
//! [`generate_day`] walks every traffic source in a fixed order and
//! feeds the resulting emissions to a sink. All randomness is keyed
//! hashing over `(scenario seed, entity, day)`, so the same scenario
//! always produces the same traffic, and a given block is targeted by
//! the same campaigns on consecutive days (which is what makes multi-day
//! windows meaningful).
//!
//! Sources, in order:
//! 1. research scanners — full sweeps of announced space, TCP SYNs in
//!    the 40/48-byte mix of Section 4.1;
//! 2. botnet campaigns — partial coverage, regional/type targeting
//!    (drives the port analyses of Section 8);
//! 3. a UDP probe sweep (SIP/DNS/NTP chatter; UDP share of Table 2);
//! 4. DDoS backscatter — victims answering randomly-spoofed floods;
//! 5. spoofed floods themselves — the graynet pollution of Section 7.2;
//! 6. misconfiguration chatter — low-rate UDP to random destinations,
//!    including leaks toward private space (pipeline step 4's diet);
//! 7. production traffic — active blocks exchanging data with CDNs and
//!    each other, with weekend quieting and heavy 40-byte ACK streams
//!    toward CDN blocks (the asymmetric-routing hazard of step 6).

use crate::config::TrafficConfig;
use crate::emission::{EmissionSink, FlowEmission, SpoofFloodEmission, NO_AS};
use crate::ports::PortPalette;
use mt_flow::record::{FlowIntent, TCP_ACK, TCP_RST, TCP_SYN};
use mt_netmodel::Internet;
use mt_types::mix::{mix3, unit3};
use mt_types::NetworkType;
use mt_types::{Block24, Day, Ipv4, SimTime};

// Salt constants: one per decision family, so streams never collide.
const S_ATTN: u64 = 0xa77e;
const S_RESEARCH: u64 = 0x4e5e;
const S_BOT: u64 = 0xb07;
const S_UDP: u64 = 0x0dbu64;
const S_BACK: u64 = 0xbac6;
const S_SPOOF: u64 = 0x5b00f;
const S_MISC: u64 = 0x315c;
const S_PROD: u64 = 0xb40d;

/// Drives one simulated day of traffic into `sink`.
pub fn generate_day(net: &Internet, cfg: &TrafficConfig, day: Day, sink: &mut dyn EmissionSink) {
    let w = Workload::new(net, cfg, day);
    w.research_scanners(sink);
    w.botnets(sink);
    w.udp_sweep(sink);
    w.icmp_sweep(sink);
    w.backscatter(sink);
    w.spoof_floods(sink);
    w.misconfig(sink);
    w.production(sink);
}

/// Precomputed per-day context shared by the generators.
struct Workload<'a> {
    net: &'a Internet,
    cfg: &'a TrafficConfig,
    day: Day,
    seed: u64,
    /// Active blocks of the day (indices), including telescope blocks
    /// dynamically handed to users.
    active_index: Vec<u32>,
    /// Active blocks belonging to CDN-designated ASes.
    cdn_blocks: Vec<u32>,
    research_palette: PortPalette,
    udp_palette: PortPalette,
}

impl<'a> Workload<'a> {
    fn new(net: &'a Internet, cfg: &'a TrafficConfig, day: Day) -> Self {
        let active = net.active_on(day);
        let active_index: Vec<u32> = active.iter().map(|b| b.0).collect();
        assert!(!active_index.is_empty(), "scenario has no active blocks");

        // CDN designation: the first `cdn_fraction` share of DataCenter
        // ASes (stable across days).
        let dc_count = net
            .ases
            .iter()
            .filter(|a| a.network_type == NetworkType::DataCenter)
            .count();
        let want = ((dc_count as f64 * cfg.cdn_fraction).ceil() as usize).max(1);
        let mut is_cdn = vec![false; net.ases.len()];
        let mut taken = 0;
        for (i, a) in net.ases.iter().enumerate() {
            if a.network_type == NetworkType::DataCenter && taken < want {
                is_cdn[i] = true;
                taken += 1;
            }
        }
        if taken == 0 {
            // Degenerate scenario without data centers: promote AS 0.
            is_cdn[0] = true;
        }
        let mut cdn_blocks = Vec::new();
        for ann in &net.announcements {
            if is_cdn[ann.as_idx as usize] {
                for (off, block) in ann.prefix.blocks24().enumerate() {
                    if !ann.is_dark(off as u32) {
                        cdn_blocks.push(block.0);
                    }
                }
            }
        }
        if cdn_blocks.is_empty() {
            cdn_blocks.push(active_index[0]);
        }

        Workload {
            net,
            cfg,
            day,
            seed: net.seed ^ 0x7aff_1c00,
            active_index,
            cdn_blocks,
            research_palette: PortPalette::research_mix(),
            udp_palette: PortPalette::udp_noise_mix(),
        }
    }

    /// Per-block scan attention: a static hot/cold factor, a day-varying
    /// component (campaigns come and go — the source of Figure 8's
    /// day-to-day variability beyond the weekend effect), and the
    /// configured telescope multipliers.
    fn attention(&self, block: u32, telescope: Option<u8>) -> f64 {
        let static_noise = 0.65 + unit3(self.seed ^ S_ATTN, u64::from(block), 0) * 0.7;
        let daily_noise = 0.8
            + unit3(
                self.seed ^ S_ATTN ^ 0xda11,
                u64::from(block),
                u64::from(self.day.0),
            ) * 0.4;
        let tele = telescope
            .and_then(|t| self.cfg.telescope_attention.get(t as usize))
            .copied()
            .unwrap_or(1.0);
        static_noise * daily_noise * tele
    }

    /// Static per-block 48-byte share of research-scanner SYNs.
    /// Combined with the single-size botnet SYNs this puts per-block
    /// average sizes in the 41.6–42.6 byte window of Section 4.1.
    fn opt_share(&self, block: u32) -> f64 {
        self.cfg.syn_opt_share_mean
            + (unit3(self.seed ^ S_ATTN, u64::from(block), 1) - 0.5)
                * 2.0
                * self.cfg.syn_opt_share_spread
    }

    fn start_time(&self, h: u64) -> SimTime {
        SimTime(self.day.start().0 + h % 86_400)
    }

    /// Picks a stable "home" (address + AS) inside the active space.
    fn active_host(&self, salt: u64, k: u64) -> (Ipv4, u32) {
        let h = mix3(self.seed ^ salt, k, 0x40e);
        let block = Block24(self.active_index[(h % self.active_index.len() as u64) as usize]);
        let host = 1 + (mix3(h, k, 1) % 250) as u8;
        let as_idx = self
            .net
            .block_info(block)
            .map(|i| i.as_idx)
            .unwrap_or(NO_AS);
        (block.addr(host), as_idx)
    }

    /// Emits a scan sweep toward `block` split into the 40-byte and
    /// 48-byte SYN sub-flows.
    #[allow(clippy::too_many_arguments)]
    fn emit_scan(
        &self,
        sink: &mut dyn EmissionSink,
        src: Ipv4,
        sender_as: u32,
        block: u32,
        dst_as: u32,
        port: u16,
        pkts: u64,
        h: u64,
        split_sizes: bool,
    ) {
        if pkts == 0 {
            return;
        }
        let dst = Block24(block).addr((h & 0xff) as u8);
        let start = self.start_time(h);
        let src_port = 1024 + (h % 60_000) as u16;
        let mut emit = |packets: u64, packet_len: u16| {
            if packets == 0 {
                return;
            }
            sink.flow(&FlowEmission {
                intent: FlowIntent {
                    start,
                    src,
                    dst,
                    src_port,
                    dst_port: port,
                    protocol: 6,
                    tcp_flags: TCP_SYN,
                    packets,
                    packet_len,
                },
                sender_as,
                dst_as,
                host_sweep: true,
            });
        };
        if split_sizes {
            let with_opts = (pkts as f64 * self.opt_share(block)).round() as u64;
            emit(pkts - with_opts.min(pkts), 40);
            emit(with_opts.min(pkts), 48);
        } else {
            emit(pkts, 40);
        }
    }

    fn research_scanners(&self, sink: &mut dyn EmissionSink) {
        for s in 0..self.cfg.research_scanners {
            let (src, sender_as) = self.active_host(S_RESEARCH, u64::from(s));
            for ann in &self.net.announcements {
                let first = ann.prefix.base().block24_index();
                for off in 0..ann.prefix.num_blocks24() {
                    let block = first + off;
                    let h = mix3(
                        self.seed ^ S_RESEARCH,
                        (u64::from(s) << 32) | u64::from(block),
                        u64::from(self.day.0),
                    );
                    let port = self.research_palette.pick(h);
                    let pkts = (self.cfg.research_pkts_per_block as f64
                        * self.attention(block, ann.telescope))
                        as u64;
                    self.emit_scan(sink, src, sender_as, block, ann.as_idx, port, pkts, h, true);
                }
            }
        }
    }

    fn botnets(&self, sink: &mut dyn EmissionSink) {
        for (bi, bot) in self.cfg.botnets.iter().enumerate() {
            let bi = bi as u64;
            for ann in &self.net.announcements {
                let a = &self.net.ases[ann.as_idx as usize];
                let mut weight = bot
                    .continent_weights
                    .iter()
                    .find(|&&(c, _)| c == a.continent)
                    .map(|&(_, w)| w)
                    .unwrap_or(bot.default_weight);
                if let Some((ty, mult)) = bot.type_bias {
                    if a.network_type == ty {
                        weight *= mult;
                    }
                }
                let p_target = (bot.coverage * weight).min(1.0);
                if p_target <= 0.0 {
                    continue;
                }
                let first = ann.prefix.base().block24_index();
                for off in 0..ann.prefix.num_blocks24() {
                    let block = first + off;
                    // Stable targeting: the campaign probes the same
                    // blocks every day.
                    if unit3(self.seed ^ S_BOT, bi, u64::from(block)) >= p_target {
                        continue;
                    }
                    let h = mix3(
                        self.seed ^ S_BOT,
                        (bi << 40) | u64::from(block),
                        u64::from(self.day.0),
                    );
                    // Rotate over bot hosts.
                    let bot_slot = mix3(self.seed ^ S_BOT, bi, h % u64::from(bot.bots));
                    let (src, sender_as) = self.active_host(S_BOT ^ 0xb1, bot_slot);
                    let port = bot.ports.pick(h);
                    let pkts =
                        (bot.pkts_per_target as f64 * self.attention(block, ann.telescope)) as u64;
                    self.emit_scan(
                        sink, src, sender_as, block, ann.as_idx, port, pkts, h, false,
                    );
                }
            }
        }
    }

    fn udp_sweep(&self, sink: &mut dyn EmissionSink) {
        let (src, sender_as) = self.active_host(S_UDP, 0);
        for ann in &self.net.announcements {
            let first = ann.prefix.base().block24_index();
            for off in 0..ann.prefix.num_blocks24() {
                let block = first + off;
                let h = mix3(self.seed ^ S_UDP, u64::from(block), u64::from(self.day.0));
                // Per-site UDP attention (TEU2's distinctly higher UDP
                // share in Table 2) on top of the hot/cold noise.
                let noise = 0.7 + unit3(self.seed ^ S_ATTN, u64::from(block), 0) * 0.6;
                let udp_mult = ann
                    .telescope
                    .and_then(|t| self.cfg.telescope_udp_attention.get(t as usize))
                    .copied()
                    .unwrap_or(1.0);
                let pkts = (self.cfg.udp_sweep_pkts_per_block as f64 * noise * udp_mult) as u64;
                if pkts == 0 {
                    continue;
                }
                sink.flow(&FlowEmission {
                    intent: FlowIntent {
                        start: self.start_time(h),
                        src,
                        dst: Block24(block).addr((h & 0xff) as u8),
                        src_port: 1024 + (h % 60_000) as u16,
                        dst_port: self.udp_palette.pick(h),
                        protocol: 17,
                        tcp_flags: 0,
                        packets: pkts,
                        packet_len: 120,
                    },
                    sender_as,
                    dst_as: ann.as_idx,
                    host_sweep: true,
                });
            }
        }
    }

    /// The ICMP census sweep: one echo request per host, a handful of
    /// packets per /24 per day, from a single long-running scanner.
    fn icmp_sweep(&self, sink: &mut dyn EmissionSink) {
        if self.cfg.icmp_sweep_pkts_per_block == 0 {
            return;
        }
        let (src, sender_as) = self.active_host(S_UDP ^ 0x1c, 1);
        for ann in &self.net.announcements {
            let first = ann.prefix.base().block24_index();
            for off in 0..ann.prefix.num_blocks24() {
                let block = first + off;
                let h = mix3(
                    self.seed ^ S_UDP ^ 0x1c,
                    u64::from(block),
                    u64::from(self.day.0),
                );
                sink.flow(&FlowEmission {
                    intent: FlowIntent {
                        start: self.start_time(h),
                        src,
                        dst: Block24(block).addr((h & 0xff) as u8),
                        src_port: 0,
                        dst_port: 0,
                        protocol: 1,
                        tcp_flags: 0,
                        packets: self.cfg.icmp_sweep_pkts_per_block,
                        packet_len: 28, // 20 B IPv4 + 8 B ICMP echo
                    },
                    sender_as,
                    dst_as: ann.as_idx,
                    host_sweep: true,
                });
            }
        }
    }

    fn backscatter(&self, sink: &mut dyn EmissionSink) {
        let announced: &[mt_netmodel::Announcement] = &self.net.announcements;
        if announced.is_empty() {
            return;
        }
        for v in 0..self.cfg.backscatter_victims {
            let (victim, victim_as) = self.active_host(S_BACK, u64::from(v));
            let service: u16 = [80u16, 443, 53, 22][(v % 4) as usize];
            for k in 0..self.cfg.backscatter_spread {
                let h = mix3(
                    self.seed ^ S_BACK,
                    (u64::from(v) << 32) | u64::from(k),
                    u64::from(self.day.0),
                );
                // Reflected toward a random announced /24 (where the
                // attack's forged sources pretended to live).
                let ann = &announced[(h % announced.len() as u64) as usize];
                let off = mix3(h, 1, 2) % u64::from(ann.prefix.num_blocks24());
                let block = ann.prefix.base().block24_index() + off as u32;
                let flags = if h & 1 == 0 {
                    TCP_SYN | TCP_ACK
                } else {
                    TCP_RST
                };
                sink.flow(&FlowEmission {
                    intent: FlowIntent {
                        start: self.start_time(h),
                        src: victim,
                        dst: Block24(block).addr((mix3(h, 3, 4) & 0xff) as u8),
                        src_port: service,
                        dst_port: 1024 + (mix3(h, 5, 6) % 60_000) as u16,
                        protocol: 6,
                        tcp_flags: flags,
                        packets: 1 + h % 3,
                        packet_len: 40,
                    },
                    sender_as: victim_as,
                    dst_as: ann.as_idx,
                    host_sweep: false,
                });
            }
        }
    }

    fn spoof_floods(&self, sink: &mut dyn EmissionSink) {
        for a in 0..self.cfg.spoof_attacks {
            let (attacker, attacker_as) = self.active_host(S_SPOOF, u64::from(a));
            let (victim, victim_as) =
                self.active_host(S_SPOOF ^ 0x1, mix3(u64::from(a), u64::from(self.day.0), 9));
            let _ = attacker; // the flood hides the attacker's address
            let h = mix3(self.seed ^ S_SPOOF, u64::from(a), u64::from(self.day.0));
            let base = self.cfg.spoof_intensity * self.net.announced_blocks() as f64;
            let volume = (base * (0.6 + unit3(h, 1, 2) * 0.8)) as u64;
            sink.spoof_flood(&SpoofFloodEmission {
                start: self.start_time(h),
                sender_as: attacker_as,
                dst: victim,
                dst_as: victim_as,
                dst_port: if h & 1 == 0 { 80 } else { 443 },
                packets: volume,
                packet_len: 40,
            });
        }
    }

    fn misconfig(&self, sink: &mut dyn EmissionSink) {
        let announced: &[mt_netmodel::Announcement] = &self.net.announcements;
        for m in 0..self.cfg.misconfig_emissions {
            let h = mix3(self.seed ^ S_MISC, u64::from(m), u64::from(self.day.0));
            let (src, sender_as) = self.active_host(S_MISC, u64::from(m) / 4);
            // 2% of the chatter leaks toward private space (step 4 diet).
            let (dst, dst_as) = if h.is_multiple_of(50) {
                let private = Ipv4::new(10, (h >> 8) as u8, (h >> 16) as u8, (h >> 24) as u8);
                (private, NO_AS)
            } else {
                let ann = &announced[(h % announced.len() as u64) as usize];
                let off = mix3(h, 7, 8) % u64::from(ann.prefix.num_blocks24());
                let block = ann.prefix.base().block24_index() + off as u32;
                (
                    Block24(block).addr((mix3(h, 9, 10) & 0xff) as u8),
                    ann.as_idx,
                )
            };
            sink.flow(&FlowEmission {
                intent: FlowIntent {
                    start: self.start_time(h),
                    src,
                    dst,
                    src_port: 1024 + (h % 60_000) as u16,
                    dst_port: self.udp_palette.pick(h),
                    protocol: 17,
                    tcp_flags: 0,
                    packets: self.cfg.misconfig_pkts,
                    packet_len: 90,
                },
                sender_as,
                dst_as,
                host_sweep: false,
            });
        }
    }

    fn production(&self, sink: &mut dyn EmissionSink) {
        let weekend = self.day.is_weekend();
        for &block in &self.active_index {
            let b = Block24(block);
            let Some(info) = self.net.block_info(b) else {
                continue;
            };
            let a = &self.net.ases[info.as_idx as usize];
            let ti = TrafficConfig::type_index(a.network_type);
            let wk = if weekend {
                self.cfg.weekend_factor[ti]
            } else {
                1.0
            };
            let noise =
                0.4 + unit3(self.seed ^ S_PROD, u64::from(block), u64::from(self.day.0)) * 1.6;
            // Upload-heavy blocks (content sources, backup targets, …)
            // push data out and receive mostly ACKs: the median-size
            // classifier's false positives in Table 3.
            let upload_heavy = unit3(self.seed ^ S_PROD, u64::from(block), 0x0b10ad)
                < self.cfg.upload_heavy_fraction;
            let (out_scale, in_scale) = if upload_heavy {
                (3.0, 0.08)
            } else {
                (1.0, 1.0)
            };
            let out_data = (self.cfg.production_out[ti] as f64 * wk * noise * out_scale) as u64;
            let in_data = (self.cfg.production_in[ti] as f64 * wk * noise * in_scale) as u64;
            if out_data == 0 && in_data == 0 {
                continue;
            }
            let h = mix3(self.seed ^ S_PROD, u64::from(block), 0xc0ffee);
            let local_host = b.addr(10 + (h % 60) as u8);
            // This block's content source (sticky CDN assignment).
            let cdn_block = Block24(self.cdn_blocks[(h % self.cdn_blocks.len() as u64) as usize]);
            let cdn_host = cdn_block.addr(4 + (mix3(h, 2, 3) % 32) as u8);
            let cdn_as = self
                .net
                .block_info(cdn_block)
                .map(|i| i.as_idx)
                .unwrap_or(NO_AS);
            // Skip self-talk when the active block *is* the CDN block.
            let talks_to_cdn = cdn_block != b;
            let start = self.start_time(h);
            let mut emit = |src: Ipv4,
                            dst: Ipv4,
                            sender_as: u32,
                            dst_as: u32,
                            sport: u16,
                            dport: u16,
                            flags: u8,
                            pkts: u64,
                            size: u16| {
                if pkts == 0 {
                    return;
                }
                sink.flow(&FlowEmission {
                    intent: FlowIntent {
                        start,
                        src,
                        dst,
                        src_port: sport,
                        dst_port: dport,
                        protocol: 6,
                        tcp_flags: flags,
                        packets: pkts,
                        packet_len: size,
                    },
                    sender_as,
                    dst_as,
                    host_sweep: false,
                });
            };
            if talks_to_cdn {
                let eph = 1024 + (h % 50_000) as u16;
                // Uploads / requests.
                emit(
                    local_host,
                    cdn_host,
                    info.as_idx,
                    cdn_as,
                    eph,
                    443,
                    TCP_ACK,
                    out_data,
                    600,
                );
                // Pure-ACK return stream for downloads: 40-byte packets
                // pouring *into* the CDN — the asymmetric-routing decoy.
                emit(
                    local_host,
                    cdn_host,
                    info.as_idx,
                    cdn_as,
                    eph,
                    443,
                    TCP_ACK,
                    in_data / 2,
                    40,
                );
                // The downloads themselves.
                emit(
                    cdn_host,
                    local_host,
                    cdn_as,
                    info.as_idx,
                    443,
                    eph,
                    TCP_ACK,
                    in_data,
                    1400,
                );
                // ACKs for this block's uploads, pouring back in at 40
                // bytes (dominates inbound for upload-heavy blocks).
                emit(
                    cdn_host,
                    local_host,
                    cdn_as,
                    info.as_idx,
                    443,
                    eph,
                    TCP_ACK,
                    out_data / 2,
                    40,
                );
            }
            // Peer-to-peer-ish chatter with another active block.
            let peer_block = Block24(
                self.active_index[(mix3(h, 4, 5) % self.active_index.len() as u64) as usize],
            );
            if peer_block != b {
                let peer_as = self
                    .net
                    .block_info(peer_block)
                    .map(|i| i.as_idx)
                    .unwrap_or(NO_AS);
                let peer_host = peer_block.addr(20 + (mix3(h, 6, 7) % 40) as u8);
                emit(
                    peer_host,
                    local_host,
                    peer_as,
                    info.as_idx,
                    5_000 + (h % 1000) as u16,
                    1024 + (mix3(h, 8, 9) % 60_000) as u16,
                    TCP_ACK,
                    in_data / 10,
                    200,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emission::EmissionSink;
    use mt_netmodel::InternetConfig;

    struct Collector {
        flows: Vec<FlowEmission>,
        floods: Vec<SpoofFloodEmission>,
    }

    impl EmissionSink for Collector {
        fn flow(&mut self, e: &FlowEmission) {
            self.flows.push(*e);
        }
        fn spoof_flood(&mut self, e: &SpoofFloodEmission) {
            self.floods.push(*e);
        }
    }

    fn run_day(day: Day) -> Collector {
        let net = Internet::generate(InternetConfig::small(), 3);
        let cfg = TrafficConfig::test_profile();
        let mut c = Collector {
            flows: Vec::new(),
            floods: Vec::new(),
        };
        generate_day(&net, &cfg, day, &mut c);
        c
    }

    #[test]
    fn a_day_produces_traffic_of_every_kind() {
        let c = run_day(Day(0));
        assert!(!c.flows.is_empty());
        assert_eq!(c.floods.len(), 6);
        assert!(
            c.flows.iter().any(|e| e.intent.protocol == 17),
            "UDP present"
        );
        assert!(
            c.flows.iter().any(|e| e.intent.protocol == 1),
            "ICMP present"
        );
        assert!(
            c.flows.iter().any(|e| e.intent.tcp_flags == TCP_SYN),
            "SYN scans present"
        );
        assert!(
            c.flows.iter().any(|e| e.intent.packet_len >= 1400),
            "production data present"
        );
        assert!(
            c.flows.iter().any(
                |e| e.intent.tcp_flags & (TCP_SYN | TCP_ACK) == TCP_SYN | TCP_ACK
                    || e.intent.tcp_flags == TCP_RST
            ),
            "backscatter present"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = run_day(Day(2));
        let b = run_day(Day(2));
        assert_eq!(a.flows.len(), b.flows.len());
        for (x, y) in a.flows.iter().zip(&b.flows).step_by(97) {
            assert_eq!(x.intent, y.intent);
            assert_eq!(x.sender_as, y.sender_as);
        }
    }

    #[test]
    fn weekend_reduces_enterprise_origination() {
        let net = Internet::generate(InternetConfig::small(), 3);
        let cfg = TrafficConfig::test_profile();
        let volume_of = |day: Day| {
            let mut c = Collector {
                flows: Vec::new(),
                floods: Vec::new(),
            };
            generate_day(&net, &cfg, day, &mut c);
            // Sum production-looking outbound traffic from Enterprise ASes.
            c.flows
                .iter()
                .filter(|e| {
                    e.sender_as != NO_AS
                        && net.ases[e.sender_as as usize].network_type == NetworkType::Enterprise
                        && e.intent.packet_len >= 200
                })
                .map(|e| e.intent.packets)
                .sum::<u64>()
        };
        // Day 2 is a Wednesday, day 5 a Saturday.
        let weekday = volume_of(Day(2));
        let weekend = volume_of(Day(5));
        assert!(
            (weekend as f64) < weekday as f64 * 0.6,
            "weekend {weekend} vs weekday {weekday}"
        );
    }

    #[test]
    fn scans_cover_dark_space() {
        let net = Internet::generate(InternetConfig::small(), 3);
        let cfg = TrafficConfig::test_profile();
        let mut c = Collector {
            flows: Vec::new(),
            floods: Vec::new(),
        };
        generate_day(&net, &cfg, Day(0), &mut c);
        let mut scanned = mt_types::Block24Set::new();
        for e in &c.flows {
            if e.host_sweep && e.intent.protocol == 6 {
                scanned.insert(Block24::containing(e.intent.dst));
            }
        }
        // Research scanners sweep everything announced, so every dark
        // block must receive TCP scan traffic.
        assert_eq!(net.dark_truth.difference(&scanned).len(), 0);
    }

    #[test]
    fn dark_blocks_never_send() {
        let net = Internet::generate(InternetConfig::small(), 3);
        let cfg = TrafficConfig::test_profile();
        let mut c = Collector {
            flows: Vec::new(),
            floods: Vec::new(),
        };
        generate_day(&net, &cfg, Day(0), &mut c);
        let dark_today = net.dark_on(Day(0));
        for e in &c.flows {
            assert!(
                !dark_today.contains(Block24::containing(e.intent.src)),
                "dark block {} emitted a flow",
                Block24::containing(e.intent.src)
            );
        }
    }

    #[test]
    fn telescope_attention_raises_volume() {
        let net = Internet::generate(InternetConfig::small(), 3);
        let mut cfg = TrafficConfig::test_profile();
        cfg.telescope_attention = vec![1.0, 1.0, 3.0];
        let mut c = Collector {
            flows: Vec::new(),
            floods: Vec::new(),
        };
        generate_day(&net, &cfg, Day(0), &mut c);
        let per_block_volume = |blocks: &mut dyn Iterator<Item = Block24>| {
            let set: std::collections::HashSet<u32> = blocks.map(|b| b.0).collect();
            let total: u64 = c
                .flows
                .iter()
                .filter(|e| set.contains(&Block24::containing(e.intent.dst).0))
                .map(|e| e.intent.packets)
                .sum();
            total as f64 / set.len() as f64
        };
        let teu2 = per_block_volume(&mut net.telescopes[2].blocks());
        let tus1 = per_block_volume(&mut net.telescopes[0].blocks());
        assert!(
            teu2 > tus1 * 2.0,
            "TEU2 per-block volume {teu2:.0} vs TUS1 {tus1:.0}"
        );
    }
}
