//! Emissions: what traffic sources put on the wire, annotated with the
//! routing ground truth the capture path needs.
//!
//! The inference pipeline never sees these annotations — it consumes
//! only the sampled [`mt_flow::FlowRecord`]s the observers produce. The
//! `sender_as` / `dst_as` fields exist solely so a vantage point can
//! decide whether the flow's actual path crosses its fabric. For spoofed
//! traffic the distinction is the whole point: the path depends on the
//! *spoofer's* network while the flow's source address is forged.

use mt_flow::FlowIntent;
use mt_types::{Ipv4, SimTime};

/// Sentinel "AS" for destinations outside the modeled AS space (leaked
/// traffic to private/reserved ranges). Such traffic is observable
/// wherever its sender is visible.
pub const NO_AS: u32 = u32::MAX;

/// A regular traffic emission: one flow intent plus routing annotations.
#[derive(Debug, Clone, Copy)]
pub struct FlowEmission {
    /// The flow as sent (true packet counts).
    pub intent: FlowIntent,
    /// AS that physically emits the packets (routing truth).
    pub sender_as: u32,
    /// AS originating the destination prefix, or [`NO_AS`].
    pub dst_as: u32,
    /// When true, the intent's packets probe distinct hosts across the
    /// destination /24 (scan sweep) rather than one host; observers
    /// spread sampled packets over pseudo-random hosts.
    pub host_sweep: bool,
}

/// A spoofed flood: `packets` packets toward one victim, each carrying a
/// freshly forged source address. Observers materialize only the sampled
/// packets, drawing a forged source per sample — processing cost is
/// proportional to what is *seen*, not what is sent.
#[derive(Debug, Clone, Copy)]
pub struct SpoofFloodEmission {
    /// Flood start time.
    pub start: SimTime,
    /// AS of the attacking host (routing truth).
    pub sender_as: u32,
    /// The victim address.
    pub dst: Ipv4,
    /// AS originating the victim's prefix.
    pub dst_as: u32,
    /// Attacked service port.
    pub dst_port: u16,
    /// Total spoofed packets in the flood.
    pub packets: u64,
    /// IP total length of each packet.
    pub packet_len: u16,
}

/// Consumer of a day's emissions. Implemented by the capture layer
/// (vantage points, telescopes, ISP border) and by ad-hoc analysis
/// passes in the benchmark harness.
pub trait EmissionSink {
    /// A regular flow emission.
    fn flow(&mut self, e: &FlowEmission);
    /// A spoofed flood.
    fn spoof_flood(&mut self, e: &SpoofFloodEmission);
}

/// Fans one emission stream out to several sinks.
pub struct FanOut<'a> {
    sinks: Vec<&'a mut dyn EmissionSink>,
}

impl<'a> FanOut<'a> {
    /// Creates a fan-out over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn EmissionSink>) -> Self {
        FanOut { sinks }
    }
}

impl EmissionSink for FanOut<'_> {
    fn flow(&mut self, e: &FlowEmission) {
        for s in &mut self.sinks {
            s.flow(e);
        }
    }

    fn spoof_flood(&mut self, e: &SpoofFloodEmission) {
        for s in &mut self.sinks {
            s.spoof_flood(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        flows: usize,
        floods: usize,
    }

    impl EmissionSink for Counter {
        fn flow(&mut self, _: &FlowEmission) {
            self.flows += 1;
        }
        fn spoof_flood(&mut self, _: &SpoofFloodEmission) {
            self.floods += 1;
        }
    }

    #[test]
    fn fanout_reaches_all_sinks() {
        let mut a = Counter::default();
        let mut b = Counter::default();
        {
            let mut fan = FanOut::new(vec![&mut a, &mut b]);
            let e = FlowEmission {
                intent: FlowIntent::tcp_syn(
                    SimTime(0),
                    Ipv4::new(1, 1, 1, 1),
                    Ipv4::new(2, 2, 2, 2),
                    1,
                    23,
                    10,
                ),
                sender_as: 0,
                dst_as: 1,
                host_sweep: true,
            };
            fan.flow(&e);
            fan.spoof_flood(&SpoofFloodEmission {
                start: SimTime(0),
                sender_as: 0,
                dst: Ipv4::new(3, 3, 3, 3),
                dst_as: 2,
                dst_port: 80,
                packets: 1000,
                packet_len: 40,
            });
        }
        assert_eq!((a.flows, a.floods), (1, 1));
        assert_eq!((b.flows, b.floods), (1, 1));
    }
}
