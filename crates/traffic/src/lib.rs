//! Traffic generation for the synthetic Internet.
//!
//! Produces the traffic mix the paper's inference pipeline lives on:
//! Internet background radiation (research scanners, botnet campaigns
//! with regional and network-type targeting, DDoS backscatter, UDP
//! chatter), spoofed floods whose forged sources pollute the inference
//! (Section 7.2), and production traffic with weekend quieting and
//! asymmetric CDN paths (the step-6 hazard).
//!
//! - [`config`] — tunable volumes and campaign roster;
//! - [`ports`] — weighted destination-port palettes;
//! - [`emission`] — the generator→capture interface;
//! - [`generate`] — the day-level generators;
//! - [`observer`] — capture: vantage-point sampling into per-/24 stats,
//!   telescope capture, ISP border capture, spoofed-source synthesis.
//!
//! Everything is deterministic in `(Internet, TrafficConfig, day)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod emission;
pub mod generate;
pub mod observer;
pub mod ports;

pub use config::{BotnetConfig, TrafficConfig};
pub use emission::{EmissionSink, FanOut, FlowEmission, SpoofFloodEmission, NO_AS};
pub use generate::generate_day;
pub use observer::{CaptureSet, IspObserver, SpoofSpace, TelescopeObserver, VantageObserver};
pub use ports::PortPalette;
