//! Destination-port palettes for scanners and botnets.
//!
//! The paper's port-level findings (Tables 5, Figures 11/12/18–20) hinge
//! on *where* different port mixes are aimed: telnet everywhere, Huawei
//! 37215 / Satori 52869 concentrated on Africa, 7001 in North America,
//! 6001 in Oceania, web and database ports over-represented toward data
//! centers. A [`PortPalette`] is a weighted port distribution with
//! deterministic picking (keyed hash in, port out).

use std::fmt;

/// A weighted distribution over destination ports.
#[derive(Clone)]
pub struct PortPalette {
    entries: Vec<(u16, f64)>,
    cumulative: Vec<f64>,
    total: f64,
}

impl PortPalette {
    /// Builds a palette from `(port, weight)` pairs. Weights need not sum
    /// to anything in particular; zero-weight entries are dropped.
    pub fn new(entries: &[(u16, f64)]) -> Self {
        let entries: Vec<(u16, f64)> = entries.iter().copied().filter(|&(_, w)| w > 0.0).collect();
        assert!(!entries.is_empty(), "palette needs at least one port");
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for &(_, w) in &entries {
            acc += w;
            cumulative.push(acc);
        }
        PortPalette {
            entries,
            cumulative,
            total: acc,
        }
    }

    /// Picks a port from the palette using a hash value as the source of
    /// randomness (deterministic: same hash, same port).
    pub fn pick(&self, hash: u64) -> u16 {
        let x = (hash as f64 / u64::MAX as f64) * self.total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.entries.len() - 1);
        self.entries[idx].0
    }

    /// The ports and weights of the palette.
    pub fn entries(&self) -> &[(u16, f64)] {
        &self.entries
    }

    /// The palette used by broad "research style" scanners: the paper's
    /// global top-port mix (Table 5 / Figure 11 union list).
    pub fn research_mix() -> Self {
        PortPalette::new(&[
            (23, 0.200),
            (8080, 0.095),
            (22, 0.090),
            (3389, 0.075),
            (80, 0.075),
            (8443, 0.055),
            (443, 0.055),
            (5555, 0.045),
            (2222, 0.040),
            (5038, 0.030),
            (445, 0.035),
            (3306, 0.025),
            (6379, 0.030),
            (25565, 0.020),
            (60023, 0.020),
            (81, 0.018),
            (8090, 0.015),
            (2375, 0.012),
            (7001, 0.015),
            (6001, 0.010),
            (37215, 0.008),
            (52869, 0.006),
            (25, 0.008),
            (110, 0.005),
            (21, 0.008),
        ])
    }

    /// UDP chatter ports for the misconfiguration generator.
    pub fn udp_noise_mix() -> Self {
        PortPalette::new(&[
            (53, 0.30),
            (123, 0.15),
            (161, 0.10),
            (1900, 0.15),
            (5060, 0.10),
            (11211, 0.05),
            (137, 0.10),
            (500, 0.05),
            (69, 0.05),
        ])
    }
}

impl fmt::Debug for PortPalette {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortPalette({} ports)", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_is_deterministic() {
        let p = PortPalette::research_mix();
        for h in [0u64, 1, 42, u64::MAX] {
            assert_eq!(p.pick(h), p.pick(h));
        }
    }

    #[test]
    fn pick_covers_extremes() {
        let p = PortPalette::new(&[(1, 1.0), (2, 1.0)]);
        assert_eq!(p.pick(0), 1);
        assert_eq!(p.pick(u64::MAX), 2);
    }

    #[test]
    fn weights_shape_the_distribution() {
        let p = PortPalette::new(&[(23, 0.8), (80, 0.2)]);
        let mut telnet = 0;
        let n = 10_000u64;
        for i in 0..n {
            // Spread hashes uniformly.
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            if p.pick(h) == 23 {
                telnet += 1;
            }
        }
        let frac = telnet as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.05, "telnet fraction {frac}");
    }

    #[test]
    fn zero_weights_are_dropped() {
        let p = PortPalette::new(&[(1, 0.0), (2, 1.0)]);
        assert_eq!(p.entries().len(), 1);
        assert_eq!(p.pick(12345), 2);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn empty_palette_rejected() {
        PortPalette::new(&[(1, 0.0)]);
    }

    #[test]
    fn research_mix_is_telnet_heavy() {
        let p = PortPalette::research_mix();
        let (top_port, top_w) = p
            .entries()
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(top_port, 23);
        assert!(top_w > 0.15);
    }
}
