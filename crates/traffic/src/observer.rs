//! Capture: turning emissions into what each measurement point records.
//!
//! Three observer kinds mirror the paper's data sources:
//!
//! - [`VantageObserver`] — an IXP: checks path visibility, applies 1-in-N
//!   packet sampling, and aggregates the surviving records directly into
//!   sharded per-/24 stats ([`ShardedTrafficStats`]), ready for per-shard
//!   parallel pipeline evaluation. Spoofed floods are handled exactly
//!   (only *sampled* packets materialize, each drawing a fresh forged
//!   source).
//! - [`TelescopeObserver`] — an operational telescope: unsampled capture
//!   of everything destined to its dark range (minus ingress-blocked
//!   ports and blocks dynamically handed to users), with per-block
//!   counters, a port histogram, and optional pcap export.
//! - [`IspObserver`] — the border of the calibration ISP (the TUS1 host):
//!   unsampled capture of all traffic to/from one AS, the ground truth
//!   behind the paper's Table 3 classifier tuning.

use crate::emission::{EmissionSink, FlowEmission, SpoofFloodEmission, NO_AS};
use mt_flow::{binomial, FlowRecord, ShardedTrafficStats, TrafficStats};
use mt_netmodel::{Internet, Telescope, VantagePoint};
use mt_types::mix::mix3;
use mt_types::{Block24, Block24Set, Day, Ipv4};
use mt_wire::{ipfix, ipv4, pcap, tcp, udp, IpProtocol};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

fn str_hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The address space forged sources are drawn from.
///
/// A `spoof_routed_bias` share of forged addresses is uniform over the
/// *announced* /24s (attackers forging plausible sources — this is what
/// pollutes candidate meta-telescope prefixes); the rest is uniform over
/// the full 32-bit space, which reaches the unrouted /8s and feeds the
/// tolerance baseline of Section 7.2.
#[derive(Debug, Clone)]
pub struct SpoofSpace {
    /// One entry per announcement: first covered /24 and the number of
    /// announced /24s *before* it (prefix sum in announcement order).
    /// Draws map a uniform index over all announced blocks back to its
    /// announcement by binary search, so the table stays O(prefixes)
    /// where a flat block list would be O(blocks) — 64 MB of indexes at
    /// the full-IPv4 scale.
    intervals: Vec<(u32, u64)>,
    total_blocks: u64,
    routed_bias: f64,
}

impl SpoofSpace {
    /// Builds the forged-source space for a scenario.
    pub fn new(net: &Internet, routed_bias: f64) -> Self {
        let mut intervals = Vec::with_capacity(net.announcements.len());
        let mut total_blocks = 0u64;
        for ann in &net.announcements {
            let first = ann.prefix.base().block24_index();
            intervals.push((first, total_blocks));
            total_blocks += u64::from(ann.prefix.num_blocks24());
        }
        SpoofSpace {
            intervals,
            total_blocks,
            routed_bias,
        }
    }

    /// Draws one forged source address.
    pub fn forge<R: RngExt>(&self, rng: &mut R) -> Ipv4 {
        if self.total_blocks > 0 && rng.random::<f64>() < self.routed_bias {
            // The x-th announced /24 in announcement order — the same
            // block the old flat list indexed at position x.
            let x = rng.random_range(0..self.total_blocks);
            let i = self.intervals.partition_point(|&(_, before)| before <= x) - 1;
            let (first, before) = self.intervals[i];
            let block = first + (x - before) as u32;
            Block24(block).addr(rng.random::<u8>())
        } else {
            Ipv4(rng.random::<u32>())
        }
    }
}

/// An IXP vantage point capturing sampled flows into sharded per-/24
/// stats.
#[derive(Debug)]
pub struct VantageObserver<'a> {
    /// The vantage point being observed from.
    pub vp: &'a VantagePoint,
    /// Aggregated sampled traffic, sharded by `/24 % N` so downstream
    /// consumers can merge and evaluate shards in parallel.
    pub stats: ShardedTrafficStats,
    /// Number of sampled flow records produced.
    pub sampled_flows: u64,
    /// Raw sampled records, kept only when
    /// [`VantageObserver::retain_records`] was called (used by the
    /// sub-sampling experiment of Figure 10; costs memory).
    pub records: Option<Vec<FlowRecord>>,
    spoof: &'a SpoofSpace,
    rng: StdRng,
    counter: u64,
}

impl<'a> VantageObserver<'a> {
    /// Creates an observer for one `(vantage point, day)` with the given
    /// per-host size threshold (must match the pipeline's).
    pub fn new(
        vp: &'a VantagePoint,
        net: &Internet,
        day: Day,
        spoof: &'a SpoofSpace,
        size_threshold: u16,
    ) -> Self {
        VantageObserver {
            vp,
            stats: ShardedTrafficStats::with_size_threshold(
                mt_flow::sharded::DEFAULT_SHARDS,
                size_threshold,
            ),
            sampled_flows: 0,
            records: None,
            spoof,
            rng: StdRng::seed_from_u64(mix3(net.seed, str_hash(&vp.code), u64::from(day.0))),
            counter: 0,
        }
    }

    /// Keeps every sampled record in memory alongside the aggregates.
    pub fn retain_records(&mut self) {
        self.records = Some(Vec::new());
    }

    /// Serialises the retained records as RFC 7011 IPFIX messages, ready
    /// to be concatenated onto this exporter's §10.4 byte stream (the
    /// `mt-stream` collector's input). The observation domain is derived
    /// from the vantage point's code so every exporter's stream is
    /// self-identifying; `sequence` is the exporter's running record
    /// sequence counter. Returns `None` unless
    /// [`VantageObserver::retain_records`] was called before capture.
    pub fn export_ipfix(
        &self,
        export_time: u32,
        sequence: &mut u32,
        max_records_per_message: usize,
    ) -> Option<Vec<Vec<u8>>> {
        let records = self.records.as_ref()?;
        let flows: Vec<ipfix::IpfixFlow> = records.iter().map(FlowRecord::to_ipfix).collect();
        let domain = str_hash(&self.vp.code) as u32;
        Some(ipfix::encode_messages(
            &flows,
            export_time,
            domain,
            sequence,
            max_records_per_message,
        ))
    }

    fn sees(&self, sender_as: u32, dst_as: u32) -> bool {
        if sender_as == NO_AS {
            return false;
        }
        if dst_as == NO_AS {
            // Leaked traffic to unrouted/private space: crosses the
            // fabric wherever its sender does.
            self.vp.sees_src_as(sender_as)
        } else {
            self.vp.observes(sender_as, dst_as)
        }
    }

    /// Consumes the observer, returning its stats in the sharded
    /// representation (the cheap path — no reassembly).
    pub fn into_sharded(self) -> ShardedTrafficStats {
        self.stats
    }

    /// Consumes the observer, returning flat stats (escape hatch for
    /// call sites that need the unsharded representation).
    pub fn into_stats(self) -> TrafficStats {
        self.stats.into_unsharded()
    }
}

impl EmissionSink for VantageObserver<'_> {
    fn flow(&mut self, e: &FlowEmission) {
        if !self.sees(e.sender_as, e.dst_as) {
            return;
        }
        let rate = self.vp.sampling_rate;
        let sampled = if rate == 1 {
            e.intent.packets
        } else {
            binomial(&mut self.rng, e.intent.packets, 1.0 / f64::from(rate))
        };
        if sampled == 0 {
            return;
        }
        self.counter += 1;
        self.sampled_flows += 1;
        let record = FlowRecord {
            start: e.intent.start,
            src: e.intent.src,
            dst: e.intent.dst,
            src_port: e.intent.src_port,
            dst_port: e.intent.dst_port,
            protocol: e.intent.protocol,
            tcp_flags: e.intent.tcp_flags,
            packets: sampled,
            octets: sampled * u64::from(e.intent.packet_len),
        };
        if e.host_sweep {
            let host_seed = mix3(self.counter, e.intent.dst.0.into(), 0x5a3e);
            self.stats.ingest_sweep(&record, host_seed);
        } else {
            self.stats.ingest(&record);
        }
        if let Some(records) = &mut self.records {
            records.push(record);
        }
    }

    fn spoof_flood(&mut self, e: &SpoofFloodEmission) {
        if !self.sees(e.sender_as, e.dst_as) {
            return;
        }
        let rate = self.vp.sampling_rate;
        let sampled = binomial(&mut self.rng, e.packets, 1.0 / f64::from(rate));
        for _ in 0..sampled {
            let src = self.spoof.forge(&mut self.rng);
            self.sampled_flows += 1;
            let record = FlowRecord {
                start: e.start,
                src,
                dst: e.dst,
                src_port: 1024 + (src.0 % 60_000) as u16,
                dst_port: e.dst_port,
                protocol: 6,
                tcp_flags: mt_flow::record::TCP_SYN,
                packets: 1,
                octets: u64::from(e.packet_len),
            };
            self.stats.ingest(&record);
            if let Some(records) = &mut self.records {
                records.push(record);
            }
        }
    }
}

/// An operational telescope capturing its dark range unsampled.
#[derive(Debug)]
pub struct TelescopeObserver<'a> {
    /// The telescope being simulated.
    pub telescope: &'a Telescope,
    /// Packets received per /24 (only blocks dark today).
    pub per_block_packets: HashMap<u32, u64>,
    /// Total TCP packets captured.
    pub tcp_packets: u64,
    /// Total TCP octets captured.
    pub tcp_octets: u64,
    /// Total UDP packets captured.
    pub udp_packets: u64,
    /// Total packets of other protocols captured.
    pub other_packets: u64,
    /// TCP destination-port histogram.
    pub port_counts: HashMap<u16, u64>,
    dark_today: Block24Set,
    pcap: Option<PcapSink>,
}

#[derive(Debug)]
struct PcapSink {
    writer: pcap::Writer<Vec<u8>>,
    remaining: u32,
}

impl<'a> TelescopeObserver<'a> {
    /// Creates an observer for one `(telescope, day)`.
    pub fn new(telescope: &'a Telescope, net: &Internet, day: Day) -> Self {
        TelescopeObserver {
            telescope,
            per_block_packets: HashMap::new(),
            tcp_packets: 0,
            tcp_octets: 0,
            udp_packets: 0,
            other_packets: 0,
            port_counts: HashMap::new(),
            dark_today: telescope.dark_on(day, net.seed),
            pcap: None,
        }
    }

    /// Enables pcap capture of up to `limit` representative packets.
    pub fn enable_pcap(&mut self, limit: u32) {
        let writer = pcap::Writer::new(Vec::new(), pcap::LINKTYPE_RAW)
            // check: allow(no_panic, "io::Write on Vec<u8> is infallible; the Writer generic forces the Result")
            .expect("writing to a Vec cannot fail");
        self.pcap = Some(PcapSink {
            writer,
            remaining: limit,
        });
    }

    /// Finishes and returns the pcap bytes, if capture was enabled.
    pub fn pcap_bytes(self) -> Option<Vec<u8>> {
        self.pcap
            // check: allow(no_panic, "io::Write on Vec<u8> is infallible; the Writer generic forces the Result")
            .map(|p| p.writer.finish().expect("Vec write cannot fail"))
    }

    /// Total packets captured.
    pub fn total_packets(&self) -> u64 {
        self.tcp_packets + self.udp_packets + self.other_packets
    }

    /// Average captured packets per dark /24.
    pub fn avg_packets_per_block(&self) -> f64 {
        let blocks = self.dark_today.len().max(1);
        self.total_packets() as f64 / blocks as f64
    }

    /// Share of TCP packets in the capture.
    pub fn tcp_share(&self) -> f64 {
        let total = self.total_packets();
        if total == 0 {
            0.0
        } else {
            self.tcp_packets as f64 / total as f64
        }
    }

    /// Average size of captured TCP packets.
    pub fn avg_tcp_size(&self) -> Option<f64> {
        (self.tcp_packets > 0).then(|| self.tcp_octets as f64 / self.tcp_packets as f64)
    }

    /// The top `n` TCP destination ports by packet count.
    pub fn top_ports(&self, n: usize) -> Vec<(u16, u64)> {
        let mut ports: Vec<(u16, u64)> = self.port_counts.iter().map(|(&p, &c)| (p, c)).collect();
        ports.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ports.truncate(n);
        ports
    }

    fn capture(&mut self, e: &FlowEmission) {
        let block = Block24::containing(e.intent.dst);
        if !self.telescope.contains(block) || !self.dark_today.contains(block) {
            return;
        }
        if self.telescope.blocked_ports.contains(&e.intent.dst_port) {
            return;
        }
        let pkts = e.intent.packets;
        *self.per_block_packets.entry(block.0).or_default() += pkts;
        match IpProtocol::from_u8(e.intent.protocol) {
            Some(IpProtocol::Tcp) => {
                self.tcp_packets += pkts;
                self.tcp_octets += pkts * u64::from(e.intent.packet_len);
                *self.port_counts.entry(e.intent.dst_port).or_default() += pkts;
            }
            Some(IpProtocol::Udp) => self.udp_packets += pkts,
            _ => self.other_packets += pkts,
        }
        if let Some(p) = &mut self.pcap {
            if p.remaining > 0 {
                p.remaining -= 1;
                let bytes = craft_packet(&e.intent);
                p.writer
                    .write_packet(e.intent.start.0 as u32, 0, &bytes)
                    // check: allow(no_panic, "io::Write on Vec<u8> is infallible; the Writer generic forces the Result")
                    .expect("Vec write cannot fail");
            }
        }
    }
}

/// Crafts the on-wire bytes of one representative packet of an intent
/// (real IPv4 + TCP/UDP headers with valid checksums).
fn craft_packet(intent: &mt_flow::FlowIntent) -> Vec<u8> {
    let payload_len = usize::from(intent.packet_len).saturating_sub(ipv4::HEADER_LEN);
    let ip = ipv4::Repr {
        src: intent.src,
        dst: intent.dst,
        protocol: IpProtocol::from_u8(intent.protocol).unwrap_or(IpProtocol::Tcp),
        payload_len,
        ttl: 64 + (intent.src.0 % 64) as u8,
    };
    let mut buf = vec![0u8; ip.buffer_len()];
    match ip.protocol {
        IpProtocol::Tcp if payload_len >= tcp::HEADER_LEN => {
            let mss = payload_len >= tcp::HEADER_LEN + tcp::MSS_OPTION_LEN;
            let repr = tcp::Repr {
                src_port: intent.src_port,
                dst_port: intent.dst_port,
                seq: intent.src.0 ^ intent.dst.0,
                ack: 0,
                flags: tcp::Flags(intent.tcp_flags),
                window: 65_535,
                mss: mss.then_some(1460),
                payload_len: payload_len
                    - tcp::HEADER_LEN
                    - if mss { tcp::MSS_OPTION_LEN } else { 0 },
            };
            let mut seg = tcp::Segment::new_unchecked(&mut buf[ipv4::HEADER_LEN..]);
            repr.emit(&mut seg, intent.src, intent.dst);
        }
        IpProtocol::Udp if payload_len >= udp::HEADER_LEN => {
            let repr = udp::Repr {
                src_port: intent.src_port,
                dst_port: intent.dst_port,
                payload_len: payload_len - udp::HEADER_LEN,
            };
            let mut dg = udp::Datagram::new_unchecked(&mut buf[ipv4::HEADER_LEN..]);
            repr.emit(&mut dg, intent.src, intent.dst);
        }
        _ => {}
    }
    let mut packet = ipv4::Packet::new_unchecked(&mut buf);
    ip.emit(&mut packet);
    buf
}

impl EmissionSink for TelescopeObserver<'_> {
    fn flow(&mut self, e: &FlowEmission) {
        self.capture(e);
    }

    fn spoof_flood(&mut self, _e: &SpoofFloodEmission) {
        // Flood victims are active hosts; a telescope never owns them.
    }
}

/// Unsampled capture of all traffic crossing one AS's border (the
/// calibration ISP of Section 4.1 / Table 3).
#[derive(Debug)]
pub struct IspObserver {
    /// The observed AS.
    pub as_idx: u32,
    /// Aggregated border traffic (sampling rate 1).
    pub stats: TrafficStats,
    counter: u64,
}

impl IspObserver {
    /// Creates an observer for the border of `as_idx`.
    pub fn new(as_idx: u32, size_threshold: u16) -> Self {
        IspObserver {
            as_idx,
            stats: TrafficStats::with_size_threshold(size_threshold),
            counter: 0,
        }
    }
}

impl EmissionSink for IspObserver {
    fn flow(&mut self, e: &FlowEmission) {
        if e.dst_as != self.as_idx && e.sender_as != self.as_idx {
            return;
        }
        self.counter += 1;
        let record = FlowRecord {
            start: e.intent.start,
            src: e.intent.src,
            dst: e.intent.dst,
            src_port: e.intent.src_port,
            dst_port: e.intent.dst_port,
            protocol: e.intent.protocol,
            tcp_flags: e.intent.tcp_flags,
            packets: e.intent.packets,
            octets: e.intent.packets * u64::from(e.intent.packet_len),
        };
        if e.host_sweep {
            let host_seed = mix3(self.counter, e.intent.dst.0.into(), 0x15b);
            self.stats.ingest_sweep(&record, host_seed);
        } else {
            self.stats.ingest(&record);
        }
    }

    fn spoof_flood(&mut self, e: &SpoofFloodEmission) {
        if e.dst_as != self.as_idx {
            return;
        }
        // The flood arrives in bulk; per-host spread is irrelevant for
        // calibration (the victim block is active and originates anyway).
        self.stats.ingest(&FlowRecord {
            start: e.start,
            src: Ipv4(e.dst.0 ^ 0x5a5a_5a5a),
            dst: e.dst,
            src_port: 1024,
            dst_port: e.dst_port,
            protocol: 6,
            tcp_flags: mt_flow::record::TCP_SYN,
            packets: e.packets,
            octets: e.packets * u64::from(e.packet_len),
        });
    }
}

/// Bundles the observers of one simulated day and fans emissions out to
/// all of them.
pub struct CaptureSet<'a> {
    /// One observer per IXP vantage point.
    pub vantages: Vec<VantageObserver<'a>>,
    /// One observer per operational telescope.
    pub telescopes: Vec<TelescopeObserver<'a>>,
    /// Border capture of the calibration ISP, when requested.
    pub isp: Option<IspObserver>,
}

impl<'a> CaptureSet<'a> {
    /// Builds observers for every vantage point and telescope of the
    /// scenario. `with_isp` additionally captures the border of the
    /// first telescope's host AS (the calibration ISP).
    pub fn new(
        net: &'a Internet,
        day: Day,
        spoof: &'a SpoofSpace,
        size_threshold: u16,
        with_isp: bool,
    ) -> Self {
        CaptureSet {
            vantages: net
                .vantage_points
                .iter()
                .map(|vp| VantageObserver::new(vp, net, day, spoof, size_threshold))
                .collect(),
            telescopes: net
                .telescopes
                .iter()
                .map(|t| TelescopeObserver::new(t, net, day))
                .collect(),
            isp: with_isp.then(|| IspObserver::new(net.telescopes[0].as_idx, size_threshold)),
        }
    }

    /// The observer for a vantage point by code.
    pub fn vantage(&self, code: &str) -> Option<&VantageObserver<'a>> {
        self.vantages.iter().find(|v| v.vp.code == code)
    }

    /// Turns on record retention for every vantage observer, so each can
    /// later [`VantageObserver::export_ipfix`] its day of flows.
    pub fn retain_all_records(&mut self) {
        for v in &mut self.vantages {
            v.retain_records();
        }
    }
}

impl EmissionSink for CaptureSet<'_> {
    fn flow(&mut self, e: &FlowEmission) {
        for v in &mut self.vantages {
            v.flow(e);
        }
        for t in &mut self.telescopes {
            t.flow(e);
        }
        if let Some(isp) = &mut self.isp {
            isp.flow(e);
        }
    }

    fn spoof_flood(&mut self, e: &SpoofFloodEmission) {
        for v in &mut self.vantages {
            v.spoof_flood(e);
        }
        for t in &mut self.telescopes {
            t.spoof_flood(e);
        }
        if let Some(isp) = &mut self.isp {
            isp.spoof_flood(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrafficConfig;
    use crate::generate::generate_day;
    use mt_flow::TrafficView;
    use mt_netmodel::InternetConfig;

    fn scenario() -> Internet {
        Internet::generate(InternetConfig::small(), 3)
    }

    fn captured_day(net: &Internet, day: Day) -> CaptureSet<'_> {
        // SpoofSpace borrows from net; leak it for test simplicity.
        let spoof = Box::leak(Box::new(SpoofSpace::new(net, 0.6)));
        let mut set = CaptureSet::new(
            net,
            day,
            spoof,
            mt_flow::stats::DEFAULT_SIZE_THRESHOLD,
            true,
        );
        set.telescopes[0].enable_pcap(200);
        let cfg = TrafficConfig::test_profile();
        generate_day(net, &cfg, day, &mut set);
        set
    }

    #[test]
    fn vantage_points_capture_sampled_traffic() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        let ce1 = set.vantage("CE1").unwrap();
        assert!(ce1.sampled_flows > 0);
        assert!(ce1.stats.dst_block_count() > 10);
        // Larger vantage points see more.
        let se1 = set.vantage("SE1").unwrap();
        assert!(ce1.sampled_flows > se1.sampled_flows);
    }

    #[test]
    fn exported_ipfix_roundtrips_the_retained_records() {
        let net = scenario();
        let spoof = SpoofSpace::new(&net, 0.6);
        let mut set = CaptureSet::new(
            &net,
            Day(0),
            &spoof,
            mt_flow::stats::DEFAULT_SIZE_THRESHOLD,
            false,
        );
        set.retain_all_records();
        generate_day(&net, &TrafficConfig::test_profile(), Day(0), &mut set);

        let ce1 = set.vantage("CE1").unwrap();
        assert!(
            ce1.export_ipfix(0, &mut 0, 100).is_some(),
            "retained observers export"
        );
        let fresh = VantageObserver::new(ce1.vp, &net, Day(0), &spoof, 60);
        assert!(
            fresh.export_ipfix(0, &mut 0, 100).is_none(),
            "no retention, no export"
        );

        let records = ce1.records.as_ref().unwrap();
        let mut seq = 0;
        let messages = ce1.export_ipfix(7, &mut seq, 50).unwrap();
        assert_eq!(seq, records.len() as u32, "sequence advances per record");
        let mut collector = ipfix::Collector::new();
        let mut flows = Vec::new();
        for m in &messages {
            collector.decode_message(m, &mut flows).unwrap();
        }
        let decoded: Vec<FlowRecord> = flows.iter().map(FlowRecord::from_ipfix).collect();
        assert_eq!(&decoded, records, "lossless export/decode roundtrip");
    }

    #[test]
    fn telescope_captures_only_its_dark_space() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        let t = &set.telescopes[0];
        assert!(t.total_packets() > 0);
        for &block in t.per_block_packets.keys() {
            assert!(t.telescope.contains(Block24(block)));
        }
        assert!(
            t.tcp_share() > 0.7,
            "IBR is TCP-dominated: {}",
            t.tcp_share()
        );
        let avg = t.avg_tcp_size().unwrap();
        assert!(avg > 40.0 && avg < 44.0, "avg TCP size {avg}");
    }

    #[test]
    fn blocked_ports_are_dropped() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        let teu1 = &set.telescopes[1];
        assert_eq!(teu1.port_counts.get(&23), None);
        assert_eq!(teu1.port_counts.get(&445), None);
        let tus1 = &set.telescopes[0];
        assert!(tus1.port_counts.get(&23).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn telescope_top_ports_are_scanning_ports() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        let top = set.telescopes[0].top_ports(10);
        assert_eq!(top.len(), 10);
        assert_eq!(top[0].0, 23, "telnet tops the list: {top:?}");
    }

    #[test]
    fn telescope_pcap_is_readable() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        let t = set.telescopes.into_iter().next().unwrap();
        let bytes = t.pcap_bytes().unwrap();
        let reader = pcap::Reader::new(&bytes[..]).unwrap();
        let mut n = 0;
        for rec in reader.records() {
            let rec = rec.unwrap();
            let packet = ipv4::Packet::new_checked(&rec.data[..]).unwrap();
            assert!(packet.verify_checksum());
            n += 1;
        }
        assert!(n > 0 && n <= 200);
    }

    #[test]
    fn isp_observer_sees_both_directions() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        let isp = set.isp.unwrap();
        // The calibration AS both receives (scans toward its space) and
        // originates (its active blocks talk to CDNs).
        assert!(isp.stats.dst_block_count() > 0);
        assert!(isp.stats.src_block_count() > 0);
        // Telescope blocks must appear as destinations with small TCP.
        let t = &net.telescopes[0];
        let sample = t.first_block;
        let d = isp.stats.dst(sample).expect("telescope block sees scans");
        let avg = d.avg_tcp_size().expect("TCP arrives");
        assert!(avg < 44.0, "telescope block avg {avg}");
    }

    #[test]
    fn spoofed_floods_pollute_sources() {
        let net = scenario();
        let set = captured_day(&net, Day(0));
        // Forged sources must appear in some vantage point's source
        // stats inside unrouted space.
        let polluted = set.vantages.iter().any(|v| {
            v.stats
                .iter_src()
                .any(|(b, _)| net.is_unrouted_space(b.base()))
        });
        assert!(polluted, "expected forged sources in unrouted space");
    }

    #[test]
    fn sampling_rate_one_captures_everything() {
        // Build a tiny VP with rate 1 via the small config and compare
        // against binomial-sampled rates indirectly: rate-1 capture of a
        // sweep equals the intent's packet count.
        let net = scenario();
        let spoof = SpoofSpace::new(&net, 0.5);
        let vp = &net.vantage_points[0];
        let mut obs = VantageObserver::new(
            vp,
            &net,
            Day(0),
            &spoof,
            mt_flow::stats::DEFAULT_SIZE_THRESHOLD,
        );
        // Find a (sender, dst) pair the VP sees.
        let sender = (0..net.ases.len() as u32)
            .find(|&i| vp.sees_src_as(i))
            .unwrap();
        let dst_as = (0..net.ases.len() as u32)
            .find(|&i| vp.sees_dst_as(i))
            .unwrap();
        let e = FlowEmission {
            intent: mt_flow::FlowIntent::tcp_syn(
                mt_types::SimTime(0),
                Ipv4::new(9, 9, 9, 9),
                Ipv4::new(8, 8, 8, 8),
                1000,
                23,
                500,
            ),
            sender_as: sender,
            dst_as,
            host_sweep: false,
        };
        obs.flow(&e);
        // At the small profile's sampling rate some packets are kept.
        let kept = obs.stats.total_packets();
        assert!(kept <= 500);
    }
}
