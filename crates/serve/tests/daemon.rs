//! Daemon integration: real sockets on loopback, UDP + TCP ingest, the
//! HTTP endpoints, and the graceful-drain accounting identities.

use mt_serve::replay::{self, Workload};
use mt_serve::{Daemon, ServeConfig};
use mt_store::StoreConfig;
use mt_stream::{HealthSnapshot, StreamConfig};
use mt_types::{Day, RibIndex, SimDuration, Slot24Index};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

fn serve_config(lateness: SimDuration) -> ServeConfig {
    ServeConfig {
        stream: StreamConfig {
            ingest_threads: 2,
            allowed_lateness: lateness,
            ..StreamConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// One blocking HTTP/1.1 GET; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn http_request(addr: SocketAddr, raw: &str) -> (String, String) {
    let mut sock = TcpStream::connect(addr).expect("connect http");
    sock.write_all(raw.as_bytes()).expect("send request");
    let mut response = Vec::new();
    sock.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf8 response");
    let status = text.lines().next().unwrap_or_default().to_owned();
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_owned(),
        None => String::new(),
    };
    (status, body)
}

/// Polls `/health` until `decoded` reaches `want` (or panics after ~10s).
fn await_decoded(http: SocketAddr, want: u64) -> HealthSnapshot {
    for _ in 0..1000 {
        let (status, body) = http_get(http, "/health");
        assert!(status.contains("200"), "health status: {status}");
        let health: HealthSnapshot = serde_json::from_str(&body).expect("health json");
        if health.decoded >= want {
            return health;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never decoded {want} records");
}

#[test]
fn udp_and_tcp_ingest_match_and_drain_cleanly() {
    let w = Workload::small(0xC0FFEE);
    let daemon = Daemon::bind(serve_config(SimDuration::hours(2)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let udp_to = daemon.udp_addr().expect("udp on");
    let tcp_to = daemon.tcp_addr().expect("tcp on");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    // Even exporters speak UDP (one stable source socket each, so each
    // keeps one session); odd exporters hold one TCP stream open for
    // the whole run. Days go out day-major, like a real fleet: every
    // exporter finishes day `d` before anyone starts day `d+1`, so the
    // 2h-lateness watermark never guillotines a slower peer.
    let udp_socks: Vec<UdpSocket> = (0..w.exporters / 2)
        .map(|_| UdpSocket::bind(("127.0.0.1", 0)).expect("bind sender"))
        .collect();
    let mut tcp_socks: Vec<TcpStream> = (0..w.exporters / 2)
        .map(|_| TcpStream::connect(tcp_to).expect("connect exporter"))
        .collect();
    let mut seqs = vec![0u32; w.exporters];
    let mut datagrams_sent = 0u64;
    let per_day = w.total_flows() / u64::from(w.days);
    for d in 0..w.days {
        for e in 0..w.exporters {
            let msgs = w.encode_day(e, Day(d), &mut seqs[e], 25);
            if e % 2 == 0 {
                for msg in &msgs {
                    udp_socks[e / 2]
                        .send_to(msg, udp_to)
                        .expect("send datagram");
                    datagrams_sent += 1;
                }
            } else {
                for msg in &msgs {
                    tcp_socks[e / 2].write_all(msg).expect("send stream");
                }
            }
        }
        // Let the day fully land before the fleet moves on — otherwise
        // a fast TCP stream's day d+1 can advance the watermark past a
        // UDP peer's still-queued day-d datagrams.
        await_decoded(http, per_day * u64::from(d + 1));
    }
    for sock in &mut tcp_socks {
        sock.shutdown(std::net::Shutdown::Write)
            .expect("close write half");
    }

    let live = await_decoded(http, w.total_flows());
    live.check_invariants().expect("live health invariants");

    // The exposition endpoint is scrape-clean and carries both the
    // daemon's own metrics and the stream layer's.
    let (status, body) = http_get(http, "/metrics");
    assert!(status.contains("200 OK"), "metrics status: {status}");
    assert!(body.ends_with('\n'), "exposition ends with a newline");
    assert!(body.contains("# TYPE mt_serve_datagrams_total counter"));
    assert!(body.contains("# TYPE mt_serve_ingest_nanoseconds histogram"));
    assert!(body.contains("mt_serve_connections_total{transport=\"tcp\"}"));
    assert!(body.contains("mt_stream_flows_total"));

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");

    // Everything sent arrived, nothing was rejected, and the post-drain
    // ledger balances exactly.
    assert_eq!(out.datagrams, datagrams_sent);
    assert_eq!(out.datagrams_rejected, 0);
    assert_eq!(out.tcp_connections, (w.exporters / 2) as u64);
    assert!(out.http_requests >= 2);
    assert_eq!(out.stream.health.decoded, w.total_flows());
    assert_eq!(out.stream.health.in_flight, 0, "drain left nothing queued");
    assert_eq!(out.stream.dropped_late, 0);
    assert_eq!(out.stream.dropped_backpressure, 0);
    out.stream.health.check_invariants().expect("final ledger");

    // Both transports fed the same sessions path: every exporter shows
    // up, named by transport, with clean decodes.
    assert_eq!(out.stream.exporters.len(), w.exporters);
    for e in &out.stream.exporters {
        assert!(
            e.name.starts_with("udp:") || e.name.starts_with("tcp:"),
            "session named by transport: {}",
            e.name
        );
        assert_eq!(e.decode_errors, 0, "clean stream for {}", e.name);
        assert_eq!(e.flows, w.total_flows() / w.exporters as u64);
    }

    // All days closed, all records windowed.
    assert_eq!(out.stream.windows.len(), w.days as usize);
    let windowed: u64 = out.stream.windows.iter().map(|w| w.records).sum();
    assert_eq!(windowed, w.total_flows());
}

#[test]
fn torn_datagrams_are_rejected_without_desync() {
    let w = Workload {
        exporters: 1,
        days: 1,
        flows_per_exporter_day: 60,
        seed: 9,
    };
    let daemon = Daemon::bind(serve_config(SimDuration::hours(2)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let udp_to = daemon.udp_addr().expect("udp on");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    let mut seq = 0;
    let msgs = w.encode_day(0, Day(0), &mut seq, 20);
    assert_eq!(msgs.len(), 3);
    let sock = UdpSocket::bind(("127.0.0.1", 0)).expect("bind sender");
    // Good, torn (truncated mid-record), garbage-tailed, then good again
    // from the same peer: the two bad datagrams must drop whole while
    // the session keeps decoding.
    sock.send_to(&msgs[0], udp_to).expect("send");
    sock.send_to(&msgs[1][..msgs[1].len() - 7], udp_to)
        .expect("send");
    let mut tailed = msgs[1].clone();
    tailed.extend_from_slice(b"junk");
    sock.send_to(&tailed, udp_to).expect("send");
    sock.send_to(&msgs[2], udp_to).expect("send");

    let live = await_decoded(http, 40);
    assert_eq!(live.decoded, 40, "only the two clean datagrams count");

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.datagrams, 4);
    assert_eq!(out.datagrams_rejected, 2);
    assert_eq!(out.stream.exporters.len(), 1);
    assert_eq!(out.stream.exporters[0].flows, 40);
    assert_eq!(out.stream.exporters[0].decode_errors, 2);
    out.stream.health.check_invariants().expect("final ledger");
}

#[test]
fn http_endpoints_reject_what_they_should() {
    let daemon = Daemon::bind(serve_config(SimDuration::hours(2)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    let (status, _) = http_get(http, "/nope");
    assert!(status.contains("404"), "unknown path: {status}");
    let (status, _) = http_request(http, "POST /health HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(status.contains("405"), "non-GET: {status}");
    let (status, _) = http_request(http, " \r\n\r\n");
    assert!(status.contains("400"), "garbage request line: {status}");
    let (status, body) = http_get(http, "/health");
    assert!(status.contains("200"), "health: {status}");
    let health: HealthSnapshot = serde_json::from_str(&body).expect("health json");
    assert_eq!(health.decoded, 0);

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.http_requests, 4);
    assert_eq!(out.stream.windows.len(), 0, "no data, no windows");
}

#[test]
fn a_request_trickled_byte_by_byte_still_parses() {
    // Regression for the partial-buffer parse bug: a request line split
    // across many TCP reads must never be parsed from a partial buffer
    // (which used to yield a spurious 400) — the daemon waits for the
    // full head and then answers normally.
    let daemon = Daemon::bind(serve_config(SimDuration::hours(2)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    let raw = b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n";
    let mut sock = TcpStream::connect(http).expect("connect http");
    for chunk in raw.chunks(1) {
        sock.write_all(chunk).expect("trickle byte");
        sock.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut response = Vec::new();
    sock.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf8 response");
    assert!(
        text.starts_with("HTTP/1.1 200 OK"),
        "trickled request must parse whole: {}",
        text.lines().next().unwrap_or_default()
    );
    let body = &text[text.find("\r\n\r\n").expect("header end") + 4..];
    let health: HealthSnapshot = serde_json::from_str(body).expect("health json");
    assert_eq!(health.decoded, 0);

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.http_requests, 1);
}

#[test]
fn an_endless_request_line_is_rejected_with_431() {
    // Regression for the unbounded-buffer bug: a request line that
    // never ends must be answered 431 and closed once it crosses the
    // line bound, not buffered forever.
    let daemon = Daemon::bind(serve_config(SimDuration::hours(2)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    let mut sock = TcpStream::connect(http).expect("connect http");
    // Exactly the bound: the daemon consumes every byte sent (so the
    // close is a clean FIN, not a reset) and rejects the instant the
    // buffered line hits the limit with no terminator in sight.
    let line = vec![b'A'; mt_serve::http::MAX_REQUEST_LINE_BYTES];
    sock.write_all(&line).expect("send endless line");
    sock.shutdown(std::net::Shutdown::Write)
        .expect("half close");
    let mut response = Vec::new();
    sock.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf8 response");
    assert!(
        text.starts_with("HTTP/1.1 431 "),
        "endless line must be 431: {}",
        text.lines().next().unwrap_or_default()
    );

    handle.shutdown();
    runner.join().expect("join").expect("run");
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    // ordering: a uniqueness counter; nothing is published through it.
    let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mt-serve-store-{}-{}-{}",
        std::process::id(),
        tag,
        n
    ))
}

/// The slot index matching [`replay::default_rib`] (20.0.0.0/8).
fn default_slots() -> Arc<Slot24Index> {
    Arc::new(Slot24Index::build(&RibIndex::build(&replay::default_rib())))
}

#[test]
fn v1_endpoints_without_a_store_are_not_found() {
    let daemon = Daemon::bind(serve_config(SimDuration::hours(2)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    let (status, _) = http_get(http, "/v1/block/20.0.0.0");
    assert!(status.contains("404"), "no store, no block API: {status}");
    let (status, _) = http_get(http, "/v1/windows/0/verdicts");
    assert!(status.contains("404"), "no store, no window API: {status}");

    handle.shutdown();
    runner.join().expect("join").expect("run");
}

#[test]
fn store_endpoints_serve_persisted_windows_across_a_restart() {
    let dir = temp_store_dir("e2e");
    let w = Workload {
        exporters: 2,
        days: 3,
        flows_per_exporter_day: 300,
        seed: 0x5709,
    };

    // First run: ingest the whole fleet, then drain. Every closed
    // window lands in the store via the scheduler sink.
    let mut cfg = serve_config(SimDuration::days(10));
    cfg.store = Some(StoreConfig {
        dir: dir.clone(),
        slots: default_slots(),
    });
    let daemon = Daemon::bind(cfg, |_| replay::default_rib()).expect("bind");
    let tcp_to = daemon.tcp_addr().expect("tcp on");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    for e in 0..w.exporters {
        let mut seq = 0;
        let messages: Vec<Vec<u8>> = (0..w.days)
            .flat_map(|d| w.encode_day(e, Day(d), &mut seq, 25))
            .collect();
        replay::send_tcp(tcp_to, &messages).expect("send stream");
    }
    await_decoded(http, w.total_flows());
    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.stream.windows.len(), w.days as usize);

    // The store holds one file per closed day plus the summary.
    assert!(dir.join("summary.mts").exists(), "summary persisted");
    for d in 0..w.days {
        assert!(
            dir.join(format!("window-{d:05}.mtw")).exists(),
            "window file for day {d}"
        );
    }

    // Second run over the same directory: the query cache cold-loads
    // the persisted state and serves it before any new ingest.
    let mut cfg = serve_config(SimDuration::days(10));
    cfg.store = Some(StoreConfig {
        dir: dir.clone(),
        slots: default_slots(),
    });
    let daemon = Daemon::bind(cfg, |_| replay::default_rib()).expect("rebind");
    let http = daemon.http_addr().expect("http on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    // Point lookup inside announced space: answered from the summary
    // built across all three days.
    let (status, body) = http_get(http, "/v1/block/20.0.0.0");
    assert!(status.contains("200"), "point query: {status}");
    assert!(body.contains("\"block\":\"20.0.0.0\""), "body: {body}");
    assert!(body.contains("\"routed\":true"), "body: {body}");
    assert!(
        body.contains(&format!("\"windows\":{}", w.days)),
        "body: {body}"
    );
    assert!(
        body.contains(&format!("\"span_days\":{}", w.days)),
        "body: {body}"
    );

    // Outside announced space: still an answer, not an error.
    let (status, body) = http_get(http, "/v1/block/1.2.3.4");
    assert!(status.contains("200"), "unrouted point query: {status}");
    assert!(body.contains("\"routed\":false"), "body: {body}");

    // Bad address: 400.
    let (status, _) = http_get(http, "/v1/block/not-an-ip");
    assert!(status.contains("400"), "bad address: {status}");

    // Range scan over a persisted window, full and bounded.
    let (status, body) = http_get(http, "/v1/windows/0/verdicts");
    assert!(status.contains("200"), "range query: {status}");
    assert!(body.contains("\"day\":0"), "body: {body}");
    let (status, _) = http_get(http, "/v1/windows/1/verdicts?from=20.0.0.0&to=20.0.255.0");
    assert!(status.contains("200"), "bounded range query: {status}");

    // Unknown day is a 404; bad bounds are 400s.
    let (status, _) = http_get(http, "/v1/windows/99/verdicts");
    assert!(status.contains("404"), "unknown day: {status}");
    let (status, _) = http_get(http, "/v1/windows/0/verdicts?from=zz");
    assert!(status.contains("400"), "bad bound: {status}");
    let (status, _) = http_get(http, "/v1/windows/0/verdicts?from=20.0.1.0&to=20.0.0.0");
    assert!(status.contains("400"), "inverted bounds: {status}");

    // The store metrics are registered and the query counters moved.
    let (status, body) = http_get(http, "/metrics");
    assert!(status.contains("200"), "metrics: {status}");
    assert!(body.contains("mt_store_windows_persisted_total"));
    // Rejected requests (bad address, bad bounds) never reach the
    // query path: two valid points, three well-formed range scans
    // (the unknown day is a well-formed query with a 404 answer).
    assert!(body.contains("mt_store_queries_total{kind=\"point\"} 2"));
    assert!(body.contains("mt_store_queries_total{kind=\"range\"} 3"));

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.http_requests, 9, "every query counted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_races_with_inflight_sends_and_still_balances() {
    // Trigger shutdown immediately after the last send returns, with no
    // settling wait: the drain phase must still pull everything out of
    // the kernel buffers before finishing.
    // Exporters send exporter-major here, so day-10 lateness keeps the
    // watermark from closing day 0 while later exporters are mid-send.
    let w = Workload::small(0xD1A6);
    let daemon = Daemon::bind(serve_config(SimDuration::days(10)), |_| {
        replay::default_rib()
    })
    .expect("bind");
    let udp_to = daemon.udp_addr().expect("udp on");
    let tcp_to = daemon.tcp_addr().expect("tcp on");
    let handle = daemon.shutdown_handle().expect("handle");
    let runner = std::thread::spawn(move || daemon.run());

    // TCP first: the connections get accepted while the loop is still
    // live (UDP sends buy them time), so the drain phase only has to
    // finish streams it already knows about.
    for e in 0..w.exporters {
        let mut seq = 0;
        let messages: Vec<Vec<u8>> = (0..w.days)
            .flat_map(|d| w.encode_day(e, Day(d), &mut seq, 25))
            .collect();
        if e % 2 == 1 {
            replay::send_tcp(tcp_to, &messages).expect("send stream");
        }
    }
    for e in 0..w.exporters {
        let mut seq = 0;
        let messages: Vec<Vec<u8>> = (0..w.days)
            .flat_map(|d| w.encode_day(e, Day(d), &mut seq, 25))
            .collect();
        if e % 2 == 0 {
            replay::send_udp(udp_to, &messages).expect("send datagrams");
        }
    }
    std::thread::sleep(Duration::from_millis(50)); // let accepts land
    handle.shutdown();
    let out = runner.join().expect("join").expect("run");

    out.stream.health.check_invariants().expect("final ledger");
    assert_eq!(out.stream.health.in_flight, 0, "drain left nothing queued");
    assert_eq!(
        out.stream.health.decoded,
        w.total_flows(),
        "drain swept the buffers"
    );
    let windowed: u64 = out.stream.windows.iter().map(|w| w.records).sum();
    assert_eq!(windowed, w.total_flows());
}
