//! SIGTERM handling gets its own test binary: the handler is
//! process-global state, so it must not share a process with tests that
//! don't expect it.

use mt_serve::replay::{self, Workload};
use mt_serve::sys;
use mt_serve::{Daemon, ServeConfig};
use mt_stream::StreamConfig;
use mt_types::{Day, SimDuration};

#[test]
fn sigterm_drains_and_closes_the_final_window() {
    let w = Workload::small(0x7E57);
    let cfg = ServeConfig {
        catch_sigterm: true,
        http: None,
        stream: StreamConfig {
            ingest_threads: 2,
            // Exporter-major sending: keep every window open until the
            // signal-triggered drain closes them all.
            allowed_lateness: SimDuration::days(10),
            ..StreamConfig::default()
        },
        ..ServeConfig::default()
    };
    let daemon = Daemon::bind(cfg, |_| replay::default_rib()).expect("bind");
    let udp_to = daemon.udp_addr().expect("udp on");
    let tcp_to = daemon.tcp_addr().expect("tcp on");
    let runner = std::thread::spawn(move || daemon.run());

    for e in 0..w.exporters {
        let mut seq = 0;
        let messages: Vec<Vec<u8>> = (0..w.days)
            .flat_map(|d| w.encode_day(e, Day(d), &mut seq, 25))
            .collect();
        if e % 2 == 0 {
            replay::send_udp(udp_to, &messages).expect("send datagrams");
        } else {
            replay::send_tcp(tcp_to, &messages).expect("send stream");
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(50));

    // The real signal, delivered to this process: the handler's only
    // action is one write to the self-pipe, which wakes the loop.
    sys::raise_sigterm();

    let out = runner.join().expect("join").expect("run");
    out.stream.health.check_invariants().expect("final ledger");
    assert_eq!(out.stream.health.decoded, w.total_flows());
    assert_eq!(out.stream.health.in_flight, 0, "drain emptied the queue");
    assert_eq!(
        out.stream.windows.len(),
        w.days as usize,
        "every window closed"
    );
    let windowed: u64 = out.stream.windows.iter().map(|win| win.records).sum();
    assert_eq!(windowed, w.total_flows());
    assert_eq!(out.stream.dropped_late + out.stream.dropped_backpressure, 0);
}
