//! CLI contract for the daemon binaries: bad arguments must produce a
//! usage message on stderr and exit code 2 — never a panic backtrace —
//! so wrapper scripts and process supervisors can tell "operator typo"
//! apart from "daemon crashed".

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("spawn binary")
}

fn assert_usage_rejection(bin: &str, args: &[&str], needle: &str) {
    let out = run(bin, args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} {args:?}: expected exit code 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(needle),
        "{bin} {args:?}: stderr missing {needle:?}:\n{stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?}: stderr missing usage block:\n{stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{bin} {args:?}: panicked instead of rejecting:\n{stderr}"
    );
}

const MT_SERVE: &str = env!("CARGO_BIN_EXE_mt-serve");
const SERVE_REPLAY: &str = env!("CARGO_BIN_EXE_serve-replay");

#[test]
fn mt_serve_rejects_unknown_flags() {
    assert_usage_rejection(MT_SERVE, &["--frobnicate"], "unknown argument --frobnicate");
}

#[test]
fn mt_serve_rejects_malformed_values() {
    assert_usage_rejection(MT_SERVE, &["--udp", "not-an-addr"], "--udp not-an-addr");
    assert_usage_rejection(MT_SERVE, &["--event-loops", "many"], "--event-loops");
    assert_usage_rejection(MT_SERVE, &["--lateness-hours"], "--lateness-hours");
    assert_usage_rejection(MT_SERVE, &["--health-json"], "--health-json needs PATH");
}

#[test]
fn serve_replay_rejects_bad_invocations() {
    // No target at all.
    assert_usage_rejection(SERVE_REPLAY, &[], "need --udp and/or --tcp target");
    assert_usage_rejection(SERVE_REPLAY, &["--bogus"], "unknown argument --bogus");
    assert_usage_rejection(
        SERVE_REPLAY,
        &["--udp", "127.0.0.1:4739", "--flows", "lots"],
        "--flows needs a number",
    );
}

#[test]
fn mt_serve_runs_and_drains_with_explicit_event_loops() {
    // A real (tiny) run: two sharded loops on ephemeral ports,
    // self-shutdown, clean ledger on stdout, exit code 0.
    let out = run(
        MT_SERVE,
        &[
            "--udp",
            "127.0.0.1:0",
            "--tcp",
            "127.0.0.1:0",
            "--http",
            "127.0.0.1:0",
            "--event-loops",
            "2",
            "--max-seconds",
            "1",
        ],
    );
    assert!(
        out.status.success(),
        "mt-serve exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("mt-serve: 2 ingest event loops"),
        "missing loop-count line:\n{stdout}"
    );
    assert!(
        stdout.contains("0 in flight after drain"),
        "missing clean ledger line:\n{stdout}"
    );
}
