//! `serve-replay`: the synthetic exporter fleet.
//!
//! Replays a deterministic [`Workload`] against a running `mt-serve`
//! daemon — one OS thread per exporter, even exporters over UDP (one
//! datagram per message), odd exporters over TCP — and reports the
//! achieved send rate.
//!
//! ```text
//! cargo run --release --bin serve-replay -- \
//!     --udp 127.0.0.1:4739 --tcp 127.0.0.1:4740 \
//!     --exporters 128 --days 1 --flows 10000
//! ```
//!
//! With only `--udp` or only `--tcp`, every exporter uses that
//! transport.

use mt_serve::replay::Workload;
use mt_types::Day;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, UdpSocket};

struct Args {
    udp: Option<SocketAddr>,
    tcp: Option<SocketAddr>,
    exporters: usize,
    days: u32,
    flows: usize,
    seed: u64,
    records_per_message: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        udp: None,
        tcp: None,
        exporters: 8,
        days: 1,
        flows: 5_000,
        seed: 42,
        records_per_message: 50,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{what} needs a number"))
        };
        match a.as_str() {
            "--udp" => {
                args.udp = Some(it.next().and_then(|v| v.parse().ok()).expect("--udp ADDR"));
            }
            "--tcp" => {
                args.tcp = Some(it.next().and_then(|v| v.parse().ok()).expect("--tcp ADDR"));
            }
            "--exporters" => args.exporters = num("--exporters") as usize,
            "--days" => args.days = num("--days") as u32,
            "--flows" => args.flows = num("--flows") as usize,
            "--seed" => args.seed = num("--seed"),
            "--records-per-message" => {
                args.records_per_message = num("--records-per-message") as usize;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        args.udp.is_some() || args.tcp.is_some(),
        "need --udp and/or --tcp target"
    );
    args
}

/// One exporter's whole send, on its own socket. Returns datagrams sent
/// (0 for TCP).
fn run_exporter(
    w: Workload,
    e: usize,
    udp: Option<SocketAddr>,
    tcp: Option<SocketAddr>,
    records_per_message: usize,
) -> u64 {
    let use_udp = match (udp, tcp) {
        (Some(_), Some(_)) => e.is_multiple_of(2),
        (Some(_), None) => true,
        _ => false,
    };
    let mut seq = 0;
    if use_udp {
        let to = udp.expect("udp target");
        let sock = UdpSocket::bind(("127.0.0.1", 0)).expect("bind exporter socket");
        let mut sent = 0;
        for d in 0..w.days {
            for msg in w.encode_day(e, Day(d), &mut seq, records_per_message) {
                sock.send_to(&msg, to).expect("send datagram");
                sent += 1;
            }
        }
        sent
    } else {
        let to = tcp.expect("tcp target");
        let mut sock = TcpStream::connect(to).expect("connect exporter");
        for d in 0..w.days {
            for msg in w.encode_day(e, Day(d), &mut seq, records_per_message) {
                sock.write_all(&msg).expect("send stream");
            }
        }
        sock.shutdown(std::net::Shutdown::Write)
            .expect("close write half");
        0
    }
}

fn main() {
    let args = parse_args();
    let w = Workload {
        exporters: args.exporters,
        days: args.days,
        flows_per_exporter_day: args.flows,
        seed: args.seed,
    };
    println!(
        "serve-replay: {} exporters x {} days x {} flows = {} flows",
        w.exporters,
        w.days,
        w.flows_per_exporter_day,
        w.total_flows()
    );

    // check: allow(determinism, "load-client wall clock; measures the daemon, never enters pipeline output")
    let t0 = std::time::Instant::now();
    let datagrams: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w.exporters)
            .map(|e| {
                s.spawn(move || run_exporter(w, e, args.udp, args.tcp, args.records_per_message))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exporter"))
            .sum()
    });
    let elapsed = t0.elapsed();

    let rate = w.total_flows() as f64 / elapsed.as_secs_f64();
    println!(
        "serve-replay: sent {} flows ({datagrams} datagrams) in {:.3}s = {:.0} flows/s",
        w.total_flows(),
        elapsed.as_secs_f64(),
        rate
    );
}
