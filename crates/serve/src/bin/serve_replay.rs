//! `serve-replay`: the synthetic exporter fleet.
//!
//! Replays a deterministic [`Workload`] against a running `mt-serve`
//! daemon — one OS thread per exporter, even exporters over UDP (one
//! datagram per message), odd exporters over TCP — and reports the
//! achieved send rate.
//!
//! ```text
//! cargo run --release --bin serve-replay -- \
//!     --udp 127.0.0.1:4739 --tcp 127.0.0.1:4740 \
//!     --exporters 128 --days 1 --flows 10000
//! ```
//!
//! With only `--udp` or only `--tcp`, every exporter uses that
//! transport.

use mt_serve::replay::Workload;
use mt_types::Day;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, UdpSocket};

struct Args {
    udp: Option<SocketAddr>,
    tcp: Option<SocketAddr>,
    exporters: usize,
    days: u32,
    flows: usize,
    seed: u64,
    records_per_message: usize,
}

const USAGE: &str = "usage: serve-replay (--udp ADDR | --tcp ADDR | both) [OPTIONS]

options:
  --udp ADDR                 daemon IPFIX/UDP target (even exporters)
  --tcp ADDR                 daemon IPFIX/TCP target (odd exporters)
  --exporters N              exporter fleet size (default 8)
  --days N                   simulated days per exporter (default 1)
  --flows N                  flows per exporter-day (default 5000)
  --seed N                   workload seed (default 42)
  --records-per-message N    IPFIX records per message (default 50)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        udp: None,
        tcp: None,
        exporters: 8,
        days: 1,
        flows: 5_000,
        seed: 42,
        records_per_message: 50,
    };
    let mut it = std::env::args().skip(1);
    fn num<T: std::str::FromStr>(v: Option<String>, what: &str) -> Result<T, String> {
        v.ok_or_else(|| format!("{what} needs a number"))?
            .parse()
            .map_err(|_| format!("{what} needs a number"))
    }
    let addr = |v: Option<String>, what: &str| -> Result<SocketAddr, String> {
        v.ok_or_else(|| format!("{what} needs ADDR"))?
            .parse()
            .map_err(|e| format!("{what}: {e}"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--udp" => args.udp = Some(addr(it.next(), "--udp")?),
            "--tcp" => args.tcp = Some(addr(it.next(), "--tcp")?),
            "--exporters" => args.exporters = num(it.next(), "--exporters")?,
            "--days" => args.days = num(it.next(), "--days")?,
            "--flows" => args.flows = num(it.next(), "--flows")?,
            "--seed" => args.seed = num(it.next(), "--seed")?,
            "--records-per-message" => {
                args.records_per_message = num(it.next(), "--records-per-message")?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.udp.is_none() && args.tcp.is_none() {
        return Err("need --udp and/or --tcp target".to_owned());
    }
    Ok(args)
}

/// One exporter's whole send, on its own socket. Returns datagrams sent
/// (0 for TCP).
fn run_exporter(
    w: Workload,
    e: usize,
    udp: Option<SocketAddr>,
    tcp: Option<SocketAddr>,
    records_per_message: usize,
) -> u64 {
    let use_udp = match (udp, tcp) {
        (Some(_), Some(_)) => e.is_multiple_of(2),
        (Some(_), None) => true,
        _ => false,
    };
    let mut seq = 0;
    if use_udp {
        let to = udp.expect("udp target");
        let sock = UdpSocket::bind(("127.0.0.1", 0)).expect("bind exporter socket");
        let mut sent = 0;
        for d in 0..w.days {
            for msg in w.encode_day(e, Day(d), &mut seq, records_per_message) {
                sock.send_to(&msg, to).expect("send datagram");
                sent += 1;
            }
        }
        sent
    } else {
        let to = tcp.expect("tcp target");
        let mut sock = TcpStream::connect(to).expect("connect exporter");
        for d in 0..w.days {
            for msg in w.encode_day(e, Day(d), &mut seq, records_per_message) {
                sock.write_all(&msg).expect("send stream");
            }
        }
        sock.shutdown(std::net::Shutdown::Write)
            .expect("close write half");
        0
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve-replay: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let w = Workload {
        exporters: args.exporters,
        days: args.days,
        flows_per_exporter_day: args.flows,
        seed: args.seed,
    };
    println!(
        "serve-replay: {} exporters x {} days x {} flows = {} flows",
        w.exporters,
        w.days,
        w.flows_per_exporter_day,
        w.total_flows()
    );

    // check: allow(determinism, "load-client wall clock; measures the daemon, never enters pipeline output")
    let t0 = std::time::Instant::now();
    let datagrams: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w.exporters)
            .map(|e| {
                s.spawn(move || run_exporter(w, e, args.udp, args.tcp, args.records_per_message))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exporter"))
            .sum()
    });
    let elapsed = t0.elapsed();

    let rate = w.total_flows() as f64 / elapsed.as_secs_f64();
    println!(
        "serve-replay: sent {} flows ({datagrams} datagrams) in {:.3}s = {:.0} flows/s",
        w.total_flows(),
        elapsed.as_secs_f64(),
        rate
    );
}
