//! `mt-serve`: the socket-facing collection daemon.
//!
//! Binds IPFIX/UDP, IPFIX/TCP, and HTTP endpoints, runs the epoll event
//! loop until SIGTERM (or until `--max-seconds` for demos), then drains
//! and prints the final windows and ledger.
//!
//! ```text
//! cargo run --release --bin mt-serve -- \
//!     --udp 127.0.0.1:4739 --tcp 127.0.0.1:4740 --http 127.0.0.1:9178
//! ```
//!
//! Optional artifacts mirror `stream-demo`: `--health-json PATH` and
//! `--metrics-text PATH` write the final health document and Prometheus
//! exposition after the drain. `--store-dir PATH` persists every closed
//! window (plus the merged summary) to a results store there and serves
//! `GET /v1/block/...` and `GET /v1/windows/...` from it — windows
//! written by a previous run answer queries immediately on restart.

use mt_serve::{replay, Daemon, ServeConfig};
use mt_store::StoreConfig;
use mt_stream::{OverflowPolicy, StreamConfig};
use mt_types::{RibIndex, SimDuration, Slot24Index};
use std::net::SocketAddr;
use std::sync::Arc;

const USAGE: &str = "usage: mt-serve [OPTIONS]

options:
  --udp ADDR|off          IPFIX/UDP bind address (default 127.0.0.1:4739)
  --tcp ADDR|off          IPFIX/TCP bind address (default 127.0.0.1:4740)
  --http ADDR|off         HTTP bind address (default 127.0.0.1:9178)
  --event-loops N         sharded ingest event loops; 0 = one per core (default 0)
  --lateness-hours N      allowed watermark lateness (default 2)
  --ingest-threads N      pipeline ingest workers (default: cores, capped at 4)
  --max-seconds N         self-shutdown after N seconds (demos)
  --health-json PATH      write the final health document here
  --metrics-text PATH     write the final Prometheus exposition here
  --store-dir PATH        persist windows to a results store and serve /v1";

struct Args {
    udp: Option<SocketAddr>,
    tcp: Option<SocketAddr>,
    http: Option<SocketAddr>,
    event_loops: usize,
    lateness_hours: u64,
    ingest_threads: usize,
    max_seconds: Option<u64>,
    health_json: Option<String>,
    metrics_text: Option<String>,
    store_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        udp: Some("127.0.0.1:4739".parse().map_err(|e| format!("{e}"))?),
        tcp: Some("127.0.0.1:4740".parse().map_err(|e| format!("{e}"))?),
        http: Some("127.0.0.1:9178".parse().map_err(|e| format!("{e}"))?),
        event_loops: 0,
        lateness_hours: 2,
        ingest_threads: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        max_seconds: None,
        health_json: None,
        metrics_text: None,
        store_dir: None,
    };
    let mut it = std::env::args().skip(1);
    let addr = |v: Option<String>, what: &str| -> Result<Option<SocketAddr>, String> {
        let v = v.ok_or_else(|| format!("{what} needs ADDR|off"))?;
        if v == "off" {
            Ok(None)
        } else {
            v.parse().map(Some).map_err(|e| format!("{what} {v}: {e}"))
        }
    };
    fn num<T: std::str::FromStr>(v: Option<String>, what: &str) -> Result<T, String> {
        v.ok_or_else(|| format!("{what} needs a number"))?
            .parse()
            .map_err(|_| format!("{what} needs a number"))
    }
    let path = |v: Option<String>, what: &str| -> Result<String, String> {
        v.ok_or_else(|| format!("{what} needs PATH"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--udp" => args.udp = addr(it.next(), "--udp")?,
            "--tcp" => args.tcp = addr(it.next(), "--tcp")?,
            "--http" => args.http = addr(it.next(), "--http")?,
            "--event-loops" => args.event_loops = num(it.next(), "--event-loops")?,
            "--lateness-hours" => args.lateness_hours = num(it.next(), "--lateness-hours")?,
            "--ingest-threads" => args.ingest_threads = num(it.next(), "--ingest-threads")?,
            "--max-seconds" => args.max_seconds = Some(num(it.next(), "--max-seconds")?),
            "--health-json" => args.health_json = Some(path(it.next(), "--health-json")?),
            "--metrics-text" => args.metrics_text = Some(path(it.next(), "--metrics-text")?),
            "--store-dir" => args.store_dir = Some(path(it.next(), "--store-dir")?),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mt-serve: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    // The store's slot index must match the RIB the daemon ingests
    // under (reads are fingerprint-gated) — both come from the demo RIB.
    let store = args.store_dir.as_ref().map(|dir| StoreConfig {
        dir: dir.into(),
        slots: Arc::new(Slot24Index::build(&RibIndex::build(&replay::default_rib()))),
    });
    let cfg = ServeConfig {
        udp: args.udp,
        tcp: args.tcp,
        http: args.http,
        event_loops: args.event_loops,
        catch_sigterm: true,
        stream: StreamConfig {
            ingest_threads: args.ingest_threads,
            overflow: OverflowPolicy::Block,
            allowed_lateness: SimDuration::hours(args.lateness_hours),
            ..StreamConfig::default()
        },
        store,
        ..ServeConfig::default()
    };
    // The demo RIB: 20.0.0.0/8 announced by one AS. A deployment would
    // plug per-day RIBs in through the library API instead.
    let daemon = match Daemon::bind(cfg, |_| replay::default_rib()) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("mt-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("mt-serve: {} ingest event loops", daemon.event_loops());
    for (what, bound) in [
        ("ipfix/udp", daemon.udp_addr()),
        ("ipfix/tcp", daemon.tcp_addr()),
        ("http", daemon.http_addr()),
    ] {
        match bound {
            Some(a) => println!("mt-serve: {what} on {a}"),
            None => println!("mt-serve: {what} off"),
        }
    }
    println!("mt-serve: SIGTERM drains and exits");

    if let Some(secs) = args.max_seconds {
        let handle = daemon.shutdown_handle().expect("shutdown handle");
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            handle.shutdown();
        });
    }

    let out = daemon.run().expect("event loop");

    println!(
        "\nmt-serve: {} datagrams ({} rejected), {} tcp connections, {} http requests",
        out.datagrams, out.datagrams_rejected, out.tcp_connections, out.http_requests
    );
    println!("per-exporter sessions:");
    for e in &out.stream.exporters {
        println!(
            "  {:<24} {:>10} bytes {:>8} flows {:>4} errors",
            e.name, e.bytes, e.flows, e.decode_errors
        );
    }
    println!("windows:");
    for w in &out.stream.windows {
        println!(
            "  {}: {} records -> dark {} unclean {} gray {}",
            w.day,
            w.records,
            w.result.dark.len(),
            w.result.unclean.len(),
            w.result.gray.len()
        );
    }
    let h = &out.stream.health;
    println!(
        "ledger: {} decoded = {} on-time + {} late + {} dropped-late; {} in flight after drain",
        h.decoded, h.on_time, h.late, h.dropped_late, h.in_flight
    );
    if let Err(e) = h.check_invariants() {
        eprintln!("mt-serve: health invariants violated: {e}");
        std::process::exit(1);
    }
    if let Some(path) = &args.health_json {
        let json = serde_json::to_string(h).expect("health serializes");
        std::fs::write(path, &json).expect("write health json");
        println!("wrote health document to {path}");
    }
    if let Some(path) = &args.metrics_text {
        let text = out.stream.registry.snapshot().render_prometheus_text();
        std::fs::write(path, &text).expect("write metrics text");
        println!("wrote Prometheus exposition to {path}");
    }
}
