//! The collection daemon: one epoll event loop feeding the streaming
//! service.
//!
//! ## Architecture
//!
//! A single thread owns the event loop *and* is the
//! [`StreamService`] producer — exactly the single-producer discipline
//! the service requires, so socket delivery changes nothing about
//! ordering or determinism. Ingest workers and per-window pipeline
//! threads live inside the service as before. Sockets are nonblocking
//! and level-triggered; the loop drains each readable fd to
//! `WouldBlock` before returning to `epoll_wait`.
//!
//! Backpressure is end to end: the queue's `Block` policy stalls the
//! producer (this loop), which stops reading sockets, which fills
//! kernel receive buffers, which stalls TCP senders. UDP exporters see
//! datagram loss at the kernel buffer instead — the transport's
//! documented trade-off.
//!
//! ## Session lifecycle
//!
//! Every peer gets its own exporter session named
//! `udp:<addr>` / `tcp:<addr>`, so templates and decode-trouble
//! counters never leak across peers (RFC 7011 §10 keeps transport
//! sessions separate). A TCP connection's session outlives the
//! connection — counters keep accumulating if the peer reconnects from
//! the same address.
//!
//! ## Shutdown protocol
//!
//! A [`ShutdownHandle`] trigger or SIGTERM (when
//! [`ServeConfig::catch_sigterm`] is set) wakes the loop via a
//! self-pipe. The daemon then (1) stops accepting: listeners are
//! deregistered and closed; (2) drains: bounded `epoll_wait` sweeps
//! keep reading open TCP connections and the UDP socket until a full
//! sweep makes no progress ([`ServeConfig::drain_quiet_sweeps`] times
//! in a row); (3) finishes: [`StreamService::finish`] flushes the
//! queue, folds the tail, closes every open window, and returns the
//! quiescent [`mt_stream::StreamOutput`] whose ledger identities hold exactly.

use crate::http;
use crate::sys::{self, Interest, Poller};
use mt_obs::{Counter, Gauge, Histogram};
use mt_store::{QueryIndex, ResultsStore, StoreConfig, Verdicts, WindowData};
use mt_stream::{StreamConfig, StreamService};
use mt_types::{Asn, Block24, Day, FxHashMap, Ipv4, PrefixTrie};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bounds for per-push ingest latency, in nanoseconds: fine
/// enough around the sub-100µs hot path for meaningful p50/p99, topping
/// out at 1s for queue-blocked pushes.
pub const INGEST_LATENCY_BUCKETS: [u64; 16] = [
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
    1_000_000_000,
];

/// Event-loop registration tokens for the daemon's own fds;
/// connections start at [`FIRST_CONN_TOKEN`].
const TOK_WAKE: u64 = 0;
const TOK_UDP: u64 = 1;
const TOK_TCP: u64 = 2;
const TOK_HTTP: u64 = 3;
const TOK_SIGTERM: u64 = 4;
const FIRST_CONN_TOKEN: u64 = 16;

/// Daemon configuration. `Default` binds every transport on loopback
/// with OS-assigned ports — query the actual addresses after
/// [`Daemon::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// IPFIX-over-UDP bind address, or `None` to disable the transport.
    pub udp: Option<SocketAddr>,
    /// IPFIX-over-TCP bind address, or `None` to disable the transport.
    pub tcp: Option<SocketAddr>,
    /// HTTP (`/health`, `/metrics`) bind address, or `None` to disable.
    pub http: Option<SocketAddr>,
    /// Requested kernel receive-buffer size for the UDP socket, in
    /// bytes (0 = leave the kernel default). Best-effort: the kernel
    /// clamps to `net.core.rmem_max`.
    pub udp_recv_buf: usize,
    /// The streaming service under the loop.
    pub stream: StreamConfig,
    /// Results store to persist closed windows into and serve `/v1/...`
    /// read queries from, or `None` to run without persistence.
    pub store: Option<StoreConfig>,
    /// Whether to install the SIGTERM self-pipe and shut down
    /// gracefully on the signal. Off by default: tests and embedders
    /// usually prefer a [`ShutdownHandle`].
    pub catch_sigterm: bool,
    /// Per-sweep `epoll_wait` timeout during the drain phase, in ms.
    pub drain_wait_ms: i32,
    /// Consecutive no-progress drain sweeps before the daemon declares
    /// the sockets quiescent and finishes.
    pub drain_quiet_sweeps: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let loopback: SocketAddr = (std::net::Ipv4Addr::LOCALHOST, 0).into();
        ServeConfig {
            udp: Some(loopback),
            tcp: Some(loopback),
            http: Some(loopback),
            udp_recv_buf: 4 << 20,
            stream: StreamConfig::default(),
            store: None,
            catch_sigterm: false,
            drain_wait_ms: 50,
            drain_quiet_sweeps: 2,
        }
    }
}

/// Everything a finished daemon run produced.
#[derive(Debug)]
pub struct ServeOutput {
    /// The streaming service's full output (windows, combined reports,
    /// quiescent health snapshot, metrics registry).
    pub stream: mt_stream::StreamOutput,
    /// UDP datagrams received.
    pub datagrams: u64,
    /// UDP datagrams rejected whole (torn / trailing garbage / bad
    /// header).
    pub datagrams_rejected: u64,
    /// TCP exporter connections accepted over the daemon's life.
    pub tcp_connections: u64,
    /// HTTP requests answered.
    pub http_requests: u64,
}

/// A clonable-by-`try_clone` trigger that asks a running daemon to
/// drain and exit; safe to fire from any thread.
#[derive(Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    wake_tx: UnixStream,
}

impl ShutdownHandle {
    /// Requests shutdown and wakes the event loop.
    pub fn shutdown(&self) {
        // ordering: Release pairs with the loop's Acquire load; the
        // flag is a latch that only ever goes false→true.
        self.flag.store(true, Ordering::Release);
        let _ = (&self.wake_tx).write(b"S");
    }

    /// A second independent handle to the same daemon.
    pub fn try_clone(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.flag),
            wake_tx: self.wake_tx.try_clone()?,
        })
    }
}

/// The daemon's handle on a configured results store: the shared query
/// cache (the window sink updates it from inside the service, the HTTP
/// path reads it) and the query-side metrics.
struct StoreRuntime {
    index: Arc<Mutex<QueryIndex>>,
    point_queries: Counter,
    range_queries: Counter,
    query_latency: Histogram,
}

/// Locks a mutex, recovering the data from a poisoned lock: the store
/// cache stays serviceable even if a panic unwound mid-update.
fn lock_index(m: &Mutex<QueryIndex>) -> std::sync::MutexGuard<'_, QueryIndex> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One live connection's state.
enum Conn {
    /// An IPFIX-over-TCP exporter stream.
    Ipfix {
        sock: TcpStream,
        /// Session name, `tcp:<peer addr>`.
        peer: String,
    },
    /// An HTTP probe connection: request bytes in, response bytes out.
    Http {
        sock: TcpStream,
        req: Vec<u8>,
        out: Vec<u8>,
        sent: usize,
        /// Whether the response has been built (request fully parsed).
        responding: bool,
    },
}

/// The collection daemon. Bind with [`Daemon::bind`], then [`run`] on
/// a dedicated thread; `run` returns when a shutdown trigger arrives
/// and the drain completes.
///
/// [`run`]: Daemon::run
pub struct Daemon<F: Fn(Day) -> PrefixTrie<Asn>> {
    cfg: ServeConfig,
    poller: Poller,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
    sigterm_rx: Option<UnixStream>,
    shutdown: Arc<AtomicBool>,
    udp: Option<UdpSocket>,
    udp_addr: Option<SocketAddr>,
    tcp: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
    http: Option<TcpListener>,
    http_addr: Option<SocketAddr>,
    service: StreamService<F>,
    store: Option<StoreRuntime>,
    conns: FxHashMap<u64, Conn>,
    next_token: u64,
    read_buf: Vec<u8>,
    datagrams: Counter,
    datagrams_rejected: Counter,
    tcp_conns: Counter,
    http_conns: Counter,
    open_conns: Gauge,
    http_health: Counter,
    http_metrics: Counter,
    http_store: Counter,
    http_other: Counter,
    ingest_latency: Histogram,
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> Daemon<F> {
    /// Binds every configured socket and starts the streaming service
    /// (ingest workers spawn here). The loop itself does not run until
    /// [`run`](Self::run).
    pub fn bind(cfg: ServeConfig, rib_of: F) -> io::Result<Daemon<F>> {
        let mut service = StreamService::start(cfg.stream.clone(), rib_of);
        let poller = Poller::new()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), TOK_WAKE, Interest::READ)?;

        let mut udp_addr = None;
        let udp = match cfg.udp {
            Some(addr) => {
                let sock = UdpSocket::bind(addr)?;
                sock.set_nonblocking(true)?;
                if cfg.udp_recv_buf > 0 {
                    // Best-effort; a clamped buffer only costs UDP loss
                    // headroom, never correctness.
                    let _ = sys::set_recv_buffer(sock.as_raw_fd(), cfg.udp_recv_buf);
                }
                poller.add(sock.as_raw_fd(), TOK_UDP, Interest::READ)?;
                udp_addr = Some(sock.local_addr()?);
                Some(sock)
            }
            None => None,
        };
        let mut tcp_addr = None;
        let tcp = match cfg.tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                poller.add(listener.as_raw_fd(), TOK_TCP, Interest::READ)?;
                tcp_addr = Some(listener.local_addr()?);
                Some(listener)
            }
            None => None,
        };
        let mut http_addr = None;
        let http = match cfg.http {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                poller.add(listener.as_raw_fd(), TOK_HTTP, Interest::READ)?;
                http_addr = Some(listener.local_addr()?);
                Some(listener)
            }
            None => None,
        };
        let sigterm_rx = if cfg.catch_sigterm {
            let rx = sys::install_sigterm_pipe()?;
            poller.add(rx.as_raw_fd(), TOK_SIGTERM, Interest::READ)?;
            Some(rx)
        } else {
            None
        };

        let reg = Arc::clone(service.registry());
        let datagrams = reg.counter("mt_serve_datagrams_total", "UDP datagrams received.");
        let datagrams_rejected = reg.counter(
            "mt_serve_datagrams_rejected_total",
            "UDP datagrams rejected whole: torn, trailing garbage, or a bad message header.",
        );
        let tcp_conns = reg.counter_with(
            "mt_serve_connections_total",
            &[("transport", "tcp")],
            "Connections accepted, by transport.",
        );
        let http_conns = reg.counter_with(
            "mt_serve_connections_total",
            &[("transport", "http")],
            "Connections accepted, by transport.",
        );
        let open_conns = reg.gauge(
            "mt_serve_open_connections",
            "Currently open TCP and HTTP connections.",
        );
        let http_health = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "health")],
            "HTTP requests answered, by endpoint.",
        );
        let http_metrics = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "metrics")],
            "HTTP requests answered, by endpoint.",
        );
        let http_store = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "store")],
            "HTTP requests answered, by endpoint.",
        );
        let http_other = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "other")],
            "HTTP requests answered, by endpoint.",
        );
        let ingest_latency = reg.histogram(
            "mt_serve_ingest_nanoseconds",
            &INGEST_LATENCY_BUCKETS,
            "Wall time to push one socket read (datagram or stream chunk) into the service.",
        );

        // A configured results store brings up the persistence sink and
        // the query cache: cold-load whatever earlier runs persisted,
        // then persist every window the scheduler closes from here on.
        let store = match cfg.store.clone() {
            Some(store_cfg) => {
                let to_io = |e: mt_store::StoreError| {
                    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                };
                let slots = Arc::clone(&store_cfg.slots);
                let results = ResultsStore::open(store_cfg).map_err(to_io)?;
                let (index, _cold) = QueryIndex::cold_load(&results).map_err(to_io)?;
                let index = Arc::new(Mutex::new(index));
                let windows_persisted = reg.counter(
                    "mt_store_windows_persisted_total",
                    "Closed windows persisted to the results store.",
                );
                let bytes_written = reg.counter(
                    "mt_store_bytes_written_total",
                    "Bytes written to the results store (window and summary files).",
                );
                let persist_errors = reg.counter(
                    "mt_store_persist_errors_total",
                    "Window persists that failed; the store keeps serving its last good state.",
                );
                let point_queries = reg.counter_with(
                    "mt_store_queries_total",
                    &[("kind", "point")],
                    "Store queries answered, by kind.",
                );
                let range_queries = reg.counter_with(
                    "mt_store_queries_total",
                    &[("kind", "range")],
                    "Store queries answered, by kind.",
                );
                let query_latency = reg.histogram(
                    "mt_store_query_nanoseconds",
                    &INGEST_LATENCY_BUCKETS,
                    "Wall time to answer one store query from the in-memory cache.",
                );
                let sink_index = Arc::clone(&index);
                service.set_window_sink(Box::new(move |w| {
                    let verdicts = Verdicts::from_result(w.window, &slots);
                    let wd =
                        WindowData::build(w.day, w.records, w.stats, verdicts, w.ports, &slots);
                    let outcome = (|| {
                        let mut n = results.write_window(&wd)?;
                        let mut idx = lock_index(&sink_index);
                        idx.apply_window(&wd, w.combined)?;
                        n += results.write_summary(idx.summary())?;
                        Ok::<u64, mt_store::StoreError>(n)
                    })();
                    // A failed persist must never take down the
                    // collection path; it is counted and the store
                    // keeps serving its last good state.
                    match outcome {
                        Ok(n) => {
                            windows_persisted.inc();
                            bytes_written.add(n);
                        }
                        Err(_) => persist_errors.inc(),
                    }
                }));
                Some(StoreRuntime {
                    index,
                    point_queries,
                    range_queries,
                    query_latency,
                })
            }
            None => None,
        };

        Ok(Daemon {
            cfg,
            poller,
            wake_rx,
            wake_tx,
            sigterm_rx,
            shutdown: Arc::new(AtomicBool::new(false)),
            udp,
            udp_addr,
            tcp,
            tcp_addr,
            http,
            http_addr,
            service,
            store,
            conns: FxHashMap::default(),
            next_token: FIRST_CONN_TOKEN,
            read_buf: vec![0u8; 64 * 1024],
            datagrams,
            datagrams_rejected,
            tcp_conns,
            http_conns,
            open_conns,
            http_health,
            http_metrics,
            http_store,
            http_other,
            ingest_latency,
        })
    }

    /// The UDP socket's actual bound address, if the transport is on.
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// The TCP listener's actual bound address, if the transport is on.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The HTTP listener's actual bound address, if enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// A trigger other threads can use to stop the daemon.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            wake_tx: self.wake_tx.try_clone()?,
        })
    }

    /// The live streaming service (health snapshots mid-run).
    pub fn service(&self) -> &StreamService<F> {
        &self.service
    }

    /// Runs the event loop until shutdown, then drains and finishes.
    pub fn run(mut self) -> io::Result<ServeOutput> {
        let mut events = Vec::with_capacity(256);
        'main: loop {
            events.clear();
            self.poller.wait(&mut events, -1)?;
            for ev in &events {
                match ev.token {
                    TOK_WAKE | TOK_SIGTERM => {
                        self.drain_wake_pipes();
                        break 'main;
                    }
                    TOK_UDP => {
                        self.drain_udp();
                    }
                    TOK_TCP => self.accept_loop(false)?,
                    TOK_HTTP => self.accept_loop(true)?,
                    tok => {
                        self.conn_event(tok, ev.writable);
                    }
                }
            }
            // ordering: Acquire pairs with ShutdownHandle's Release; a
            // racing trigger between wait() and here is still caught.
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
        }
        self.drain_and_finish()
    }

    /// Empties the wake and SIGTERM pipes so later sweeps see only new
    /// wakeups.
    fn drain_wake_pipes(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        if let Some(rx) = &mut self.sigterm_rx {
            while matches!(rx.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// Reads every queued datagram; returns how many were ingested.
    fn drain_udp(&mut self) -> u64 {
        let mut count = 0;
        loop {
            let Some(sock) = &self.udp else { return count };
            match sock.recv_from(&mut self.read_buf) {
                Ok((n, peer)) => {
                    count += 1;
                    self.datagrams.inc();
                    let name = format!("udp:{peer}");
                    let span = self.ingest_latency.start_span();
                    let accepted = self.service.push_datagram(&name, &self.read_buf[..n]);
                    drop(span);
                    if !accepted {
                        self.datagrams_rejected.inc();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return count,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return count,
            }
        }
    }

    /// Accepts every pending connection on the TCP (`http == false`)
    /// or HTTP (`http == true`) listener.
    fn accept_loop(&mut self, http: bool) -> io::Result<()> {
        loop {
            let listener = if http { &self.http } else { &self.tcp };
            let Some(listener) = listener else {
                return Ok(());
            };
            match listener.accept() {
                Ok((sock, peer)) => {
                    sock.set_nonblocking(true)?;
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller.add(sock.as_raw_fd(), token, Interest::READ)?;
                    let conn = if http {
                        self.http_conns.inc();
                        Conn::Http {
                            sock,
                            req: Vec::new(),
                            out: Vec::new(),
                            sent: 0,
                            responding: false,
                        }
                    } else {
                        self.tcp_conns.inc();
                        Conn::Ipfix {
                            sock,
                            peer: format!("tcp:{peer}"),
                        }
                    };
                    self.conns.insert(token, conn);
                    self.open_conns.set(self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(()),
            }
        }
    }

    /// Handles one readiness event on a connection token. Returns
    /// whether the event made ingest progress (used by the drain
    /// phase's quiescence test).
    fn conn_event(&mut self, token: u64, writable: bool) -> bool {
        let Some(conn) = self.conns.remove(&token) else {
            return false;
        };
        let (keep, progressed, conn) = match conn {
            Conn::Ipfix { sock, peer } => {
                let (keep, progressed) = self.read_ipfix(&sock, &peer);
                (keep, progressed, Conn::Ipfix { sock, peer })
            }
            Conn::Http {
                sock,
                req,
                out,
                sent,
                responding,
            } => self.step_http(token, sock, req, out, sent, responding, writable),
        };
        if keep {
            self.conns.insert(token, conn);
        } else {
            let fd = match &conn {
                Conn::Ipfix { sock, .. } => sock.as_raw_fd(),
                Conn::Http { sock, .. } => sock.as_raw_fd(),
            };
            let _ = self.poller.delete(fd);
        }
        self.open_conns.set(self.conns.len() as u64);
        progressed
    }

    /// Reads an IPFIX stream to `WouldBlock`/EOF, pushing each chunk.
    /// Returns `(keep_connection, made_progress)`.
    fn read_ipfix(&mut self, sock: &TcpStream, peer: &str) -> (bool, bool) {
        let mut progressed = false;
        loop {
            let mut sock = sock;
            match sock.read(&mut self.read_buf) {
                Ok(0) => return (false, progressed),
                Ok(n) => {
                    progressed = true;
                    let span = self.ingest_latency.start_span();
                    self.service.push_chunk(peer, &self.read_buf[..n]);
                    drop(span);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (true, progressed),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return (false, progressed),
            }
        }
    }

    /// Advances one HTTP connection: read until the head completes,
    /// build the response, write as far as the socket allows.
    #[allow(clippy::too_many_arguments)]
    fn step_http(
        &mut self,
        token: u64,
        sock: TcpStream,
        mut req: Vec<u8>,
        mut out: Vec<u8>,
        mut sent: usize,
        mut responding: bool,
        writable: bool,
    ) -> (bool, bool, Conn) {
        if !responding {
            let mut eof = false;
            loop {
                let mut r = &sock;
                let mut buf = [0u8; 4096];
                match r.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        req.extend_from_slice(&buf[..n]);
                        // Keep reading only while the head is genuinely
                        // incomplete; the parser's bounds make that
                        // state unreachable past the fixed limits, so
                        // the buffer cannot grow without end.
                        if !matches!(http::parse_request(&req), http::Parse::Incomplete) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            match http::parse_request(&req) {
                http::Parse::Complete(r) => {
                    out = self.respond(&r);
                    responding = true;
                }
                http::Parse::Malformed => {
                    self.http_other.inc();
                    out = http::bad_request();
                    responding = true;
                }
                http::Parse::TooLarge => {
                    self.http_other.inc();
                    out = http::header_too_large();
                    responding = true;
                }
                http::Parse::Incomplete => {
                    if eof {
                        return (
                            false,
                            false,
                            Conn::Http {
                                sock,
                                req,
                                out,
                                sent,
                                responding,
                            },
                        );
                    }
                }
            }
        }
        if responding {
            let done = loop {
                if sent >= out.len() {
                    break true;
                }
                let mut w = &sock;
                match w.write(&out[sent..]) {
                    Ok(0) => break true, // peer gone; nothing more to do
                    Ok(n) => sent += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break true,
                }
            };
            if done {
                return (
                    false,
                    false,
                    Conn::Http {
                        sock,
                        req,
                        out,
                        sent,
                        responding,
                    },
                );
            }
            if !writable {
                // Partial write: also wake on writability from now on.
                let _ = self
                    .poller
                    .modify(sock.as_raw_fd(), token, Interest::READ_WRITE);
            }
        }
        (
            true,
            false,
            Conn::Http {
                sock,
                req,
                out,
                sent,
                responding,
            },
        )
    }

    /// Builds the response for a parsed request and counts it.
    fn respond(&mut self, req: &http::Request) -> Vec<u8> {
        if req.method != "GET" {
            self.http_other.inc();
            return http::method_not_allowed();
        }
        let (path, query) = http::split_query(&req.path);
        if let Some(addr) = path.strip_prefix("/v1/block/") {
            return self.respond_point(addr);
        }
        if let Some(day) = path
            .strip_prefix("/v1/windows/")
            .and_then(|rest| rest.strip_suffix("/verdicts"))
        {
            return self.respond_range(day, query);
        }
        match path {
            "/health" => {
                self.http_health.inc();
                let health = self.service.health();
                let body = serde_json::to_string(&health).unwrap_or_else(|_| "{}".to_owned());
                http::response("200 OK", "application/json", body.as_bytes())
            }
            "/metrics" => {
                self.http_metrics.inc();
                // health() republishes every legacy counter into the
                // registry so the exposition is current.
                let _ = self.service.health();
                let text = self.service.registry().snapshot().render_prometheus_text();
                http::response(
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.as_bytes(),
                )
            }
            _ => {
                self.http_other.inc();
                http::not_found()
            }
        }
    }

    /// `GET /v1/block/{a.b.c.0}` — point lookup against the summary:
    /// verdict, since-when, traffic profile, top ports.
    fn respond_point(&mut self, addr: &str) -> Vec<u8> {
        self.http_store.inc();
        let Some(store) = &self.store else {
            return http::not_found();
        };
        let Ok(addr) = Ipv4::from_str(addr) else {
            return http::bad_request();
        };
        store.point_queries.inc();
        let span = store.query_latency.start_span();
        let report = lock_index(&store.index).point(addr);
        drop(span);
        let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_owned());
        http::response("200 OK", "application/json", body.as_bytes())
    }

    /// `GET /v1/windows/{day}/verdicts?from=a.b.c.0&to=x.y.z.0` —
    /// range scan over one persisted window's verdicts.
    fn respond_range(&mut self, day: &str, query: &str) -> Vec<u8> {
        self.http_store.inc();
        let Some(store) = &self.store else {
            return http::not_found();
        };
        let Ok(day) = day.parse::<u32>() else {
            return http::bad_request();
        };
        let parse_block = |v: Option<&str>, default: Block24| match v {
            None => Some(default),
            Some(s) => Ipv4::from_str(s).ok().map(Block24::containing),
        };
        let from = parse_block(http::query_param(query, "from"), Block24(0));
        let to = parse_block(http::query_param(query, "to"), Block24(0x00ff_ffff));
        let (Some(from), Some(to)) = (from, to) else {
            return http::bad_request();
        };
        if from > to {
            return http::bad_request();
        }
        store.range_queries.inc();
        let span = store.query_latency.start_span();
        let report = lock_index(&store.index).range(Day(day), from, to);
        drop(span);
        match report {
            Some(report) => {
                let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_owned());
                http::response("200 OK", "application/json", body.as_bytes())
            }
            None => http::not_found(),
        }
    }

    /// The shutdown tail: stop accepting, drain to quiescence, finish
    /// the service, and assemble the output.
    fn drain_and_finish(mut self) -> io::Result<ServeOutput> {
        if let Some(listener) = self.tcp.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        if let Some(listener) = self.http.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        let mut events = Vec::with_capacity(256);
        let mut quiet = 0;
        while quiet < self.cfg.drain_quiet_sweeps {
            events.clear();
            self.poller.wait(&mut events, self.cfg.drain_wait_ms)?;
            let mut progressed = false;
            for ev in &events {
                match ev.token {
                    TOK_WAKE | TOK_SIGTERM => self.drain_wake_pipes(),
                    TOK_UDP => progressed |= self.drain_udp() > 0,
                    TOK_TCP | TOK_HTTP => {}
                    tok => progressed |= self.conn_event(tok, ev.writable),
                }
            }
            if progressed {
                quiet = 0;
            } else {
                quiet += 1;
            }
        }
        // Anything still open is an idle peer; close our side.
        for (_, conn) in self.conns.drain() {
            let fd = match &conn {
                Conn::Ipfix { sock, .. } => sock.as_raw_fd(),
                Conn::Http { sock, .. } => sock.as_raw_fd(),
            };
            let _ = self.poller.delete(fd);
        }
        if let Some(sock) = self.udp.take() {
            let _ = self.poller.delete(sock.as_raw_fd());
        }
        let stream = self.service.finish();
        Ok(ServeOutput {
            datagrams: self.datagrams.get(),
            datagrams_rejected: self.datagrams_rejected.get(),
            tcp_connections: self.tcp_conns.get(),
            http_requests: self.http_health.get()
                + self.http_metrics.get()
                + self.http_store.get()
                + self.http_other.get(),
            stream,
        })
    }
}
