//! The collection daemon: N sharded epoll ingest loops feeding the
//! multi-lane streaming service, plus a dedicated control loop for
//! observability and queries.
//!
//! ## Architecture
//!
//! [`ServeConfig::event_loops`] ingest threads each own a full event
//! loop: their own [`Poller`], their own `SO_REUSEPORT` UDP socket on
//! the shared ingest port (the kernel hashes datagrams across the
//! sockets by 4-tuple), their own `SO_REUSEPORT` TCP listener on the
//! shared exporter port (the kernel shards incoming connections across
//! the accepting loops), and their own producer lane
//! ([`mt_stream::LaneProducer`]) into the service's ingest queue. At
//! one loop the daemon degenerates to the classic single-producer
//! shape (plain `std` binds, no `SO_REUSEPORT` needed) — and at every
//! loop count the results are bit-identical to in-process batch
//! ingest, because ordering lives in the service's shared window gate,
//! not in which loop read which byte.
//!
//! Per-peer sessions stay correct without cross-loop coordination: a
//! peer's bytes arrive on one loop at a time (UDP: the kernel's flow
//! hash pins a source address to one socket; TCP: a connection is
//! pinned to the loop that accepted it), and each loop keeps its own
//! collector sessions. If a peer reconnects onto a different loop its
//! lifetime counters keep accumulating — the health path sums sessions
//! by exporter name across loops — while template state never crosses
//! loops (RFC 7011 §10 keeps transport sessions separate).
//!
//! The *control loop* runs on the caller's thread and owns the HTTP
//! listener: `/health`, `/metrics`, and the `/v1` store queries are
//! answered there, never on an ingest loop, so observability stays
//! responsive while every ingest loop is saturated.
//!
//! Backpressure is end to end and per lane: the queue's `Block` policy
//! stalls only the lane that is full — that loop stops reading its
//! sockets, its kernel buffers fill, its TCP senders stall — while the
//! other loops (and the control loop) keep running. UDP exporters see
//! datagram loss at the kernel buffer instead — the transport's
//! documented trade-off.
//!
//! ## Shutdown protocol
//!
//! A [`ShutdownHandle`] trigger or SIGTERM (when
//! [`ServeConfig::catch_sigterm`] is set) wakes the control loop via a
//! self-pipe. The control loop then broadcasts the shutdown to every
//! ingest loop's wake pipe; each ingest loop independently (1) stops
//! accepting: its listeners are deregistered and closed; (2) drains:
//! bounded `epoll_wait` sweeps keep reading its open TCP connections
//! and its UDP socket until a full sweep makes no progress
//! ([`ServeConfig::drain_quiet_sweeps`] times in a row); (3) returns
//! its lane. The control loop answers its in-flight HTTP requests,
//! joins the ingest threads, and finishes the service —
//! [`MultiStreamService::finish`] flushes the queue, folds the tail,
//! closes every open window, and returns the quiescent
//! [`mt_stream::StreamOutput`] whose ledger identities hold exactly.

use crate::http;
use crate::sys::{self, Interest, Poller};
use mt_obs::{Counter, Gauge, Histogram};
use mt_store::{QueryIndex, ResultsStore, StoreConfig, Verdicts, WindowData};
use mt_stream::{LaneProducer, MultiStreamService, StreamConfig};
use mt_types::{Asn, Block24, Day, FxHashMap, Ipv4, PrefixTrie};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, SocketAddrV4, TcpListener, TcpStream, UdpSocket};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Histogram bounds for per-push ingest latency, in nanoseconds: fine
/// enough around the sub-100µs hot path for meaningful p50/p99, topping
/// out at 1s for queue-blocked pushes.
pub const INGEST_LATENCY_BUCKETS: [u64; 16] = [
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
    1_000_000_000,
];

/// Listen backlog for the `SO_REUSEPORT` exporter listeners.
const TCP_BACKLOG: u32 = 1024;

/// Event-loop registration tokens for a loop's own fds; connections
/// start at [`FIRST_CONN_TOKEN`]. Each loop has its own poller, so the
/// token spaces are independent.
const TOK_WAKE: u64 = 0;
const TOK_UDP: u64 = 1;
const TOK_TCP: u64 = 2;
const TOK_HTTP: u64 = 3;
const TOK_SIGTERM: u64 = 4;
const FIRST_CONN_TOKEN: u64 = 16;

/// Daemon configuration. `Default` binds every transport on loopback
/// with OS-assigned ports — query the actual addresses after
/// [`Daemon::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// IPFIX-over-UDP bind address, or `None` to disable the transport.
    pub udp: Option<SocketAddr>,
    /// IPFIX-over-TCP bind address, or `None` to disable the transport.
    pub tcp: Option<SocketAddr>,
    /// HTTP (`/health`, `/metrics`, `/v1`) bind address, or `None` to
    /// disable. Served by the control loop, never an ingest loop.
    pub http: Option<SocketAddr>,
    /// Sharded ingest event loops (0 = one per available core). Above
    /// one, the ingest transports must bind IPv4 addresses — the
    /// `SO_REUSEPORT` shims are IPv4-only.
    pub event_loops: usize,
    /// Requested kernel receive-buffer size for each UDP socket, in
    /// bytes (0 = leave the kernel default). Best-effort: the kernel
    /// clamps to `net.core.rmem_max`.
    pub udp_recv_buf: usize,
    /// The streaming service under the loops.
    pub stream: StreamConfig,
    /// Results store to persist closed windows into and serve `/v1/...`
    /// read queries from, or `None` to run without persistence.
    pub store: Option<StoreConfig>,
    /// Whether to install the SIGTERM self-pipe and shut down
    /// gracefully on the signal. Off by default: tests and embedders
    /// usually prefer a [`ShutdownHandle`].
    pub catch_sigterm: bool,
    /// Per-sweep `epoll_wait` timeout during the drain phase, in ms.
    pub drain_wait_ms: i32,
    /// Consecutive no-progress drain sweeps before a loop declares its
    /// sockets quiescent.
    pub drain_quiet_sweeps: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let loopback: SocketAddr = (std::net::Ipv4Addr::LOCALHOST, 0).into();
        ServeConfig {
            udp: Some(loopback),
            tcp: Some(loopback),
            http: Some(loopback),
            event_loops: 0,
            udp_recv_buf: 4 << 20,
            stream: StreamConfig::default(),
            store: None,
            catch_sigterm: false,
            drain_wait_ms: 50,
            drain_quiet_sweeps: 2,
        }
    }
}

/// Resolves `event_loops` (0 = auto) to a concrete loop count.
fn resolve_loops(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Everything a finished daemon run produced.
#[derive(Debug)]
pub struct ServeOutput {
    /// The streaming service's full output (windows, combined reports,
    /// quiescent health snapshot, metrics registry).
    pub stream: mt_stream::StreamOutput,
    /// UDP datagrams received, summed over the ingest loops.
    pub datagrams: u64,
    /// UDP datagrams rejected whole (torn / trailing garbage / bad
    /// header).
    pub datagrams_rejected: u64,
    /// TCP exporter connections accepted over the daemon's life.
    pub tcp_connections: u64,
    /// HTTP requests answered.
    pub http_requests: u64,
    /// Ingest event loops the daemon ran.
    pub event_loops: usize,
}

/// A clonable-by-`try_clone` trigger that asks a running daemon to
/// drain and exit; safe to fire from any thread.
#[derive(Debug)]
pub struct ShutdownHandle {
    shutdown: Arc<AtomicBool>,
    wake_tx: UnixStream,
}

impl ShutdownHandle {
    /// Requests shutdown and wakes the control loop (which broadcasts
    /// to the ingest loops).
    pub fn shutdown(&self) {
        // ordering: Release pairs with the loops' Acquire loads; the
        // flag is a latch that only ever goes false→true.
        self.shutdown.store(true, Ordering::Release);
        let _ = (&self.wake_tx).write(b"S");
    }

    /// A second independent handle to the same daemon.
    pub fn try_clone(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            shutdown: Arc::clone(&self.shutdown),
            wake_tx: self.wake_tx.try_clone()?,
        })
    }
}

/// The daemon's handle on a configured results store: the shared query
/// cache (the window sink updates it from inside the service, the HTTP
/// path reads it) and the query-side metrics.
struct StoreRuntime {
    index: Arc<Mutex<QueryIndex>>,
    point_queries: Counter,
    range_queries: Counter,
    query_latency: Histogram,
}

/// Locks a mutex, recovering the data from a poisoned lock: the store
/// cache stays serviceable even if a panic unwound mid-update.
fn lock_index(m: &Mutex<QueryIndex>) -> std::sync::MutexGuard<'_, QueryIndex> {
    // lock: generic
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One live IPFIX-over-TCP exporter connection on an ingest loop.
struct IngestConn {
    sock: TcpStream,
    /// Session name, `tcp:<peer addr>`.
    peer: String,
}

/// One live HTTP probe connection on the control loop: request bytes
/// in, response bytes out.
struct HttpConn {
    sock: TcpStream,
    req: Vec<u8>,
    out: Vec<u8>,
    sent: usize,
    /// Whether the response has been built (request fully parsed).
    responding: bool,
}

/// One sharded ingest event loop: poller, sockets, lane, connections.
/// Runs on its own thread from [`Daemon::run`] until shutdown, drains,
/// and returns its lane.
struct IngestLoop<F> {
    index: usize,
    poller: Poller,
    wake_rx: UnixStream,
    shutdown: Arc<AtomicBool>,
    udp: Option<UdpSocket>,
    tcp: Option<TcpListener>,
    lane: LaneProducer<F>,
    conns: FxHashMap<u64, IngestConn>,
    next_token: u64,
    read_buf: Vec<u8>,
    drain_wait_ms: i32,
    drain_quiet_sweeps: u32,
    // Shared counters (one handle per loop onto the same cells) …
    datagrams: Counter,
    datagrams_rejected: Counter,
    tcp_conns: Counter,
    // … and per-loop series, labeled with this loop's index.
    open_conns: Gauge,
    loop_events: Counter,
    ingest_latency: Histogram,
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> IngestLoop<F> {
    /// The loop body: wait, ingest, repeat until shutdown; then drain
    /// to quiescence and hand the lane back.
    fn run(mut self) -> io::Result<LaneProducer<F>> {
        let mut events = Vec::with_capacity(256);
        'main: loop {
            events.clear();
            self.poller.wait(&mut events, -1)?;
            self.loop_events.add(events.len() as u64);
            for ev in &events {
                match ev.token {
                    TOK_WAKE => {
                        self.drain_wake_pipe();
                        break 'main;
                    }
                    TOK_UDP => {
                        self.drain_udp();
                    }
                    TOK_TCP => self.accept_exporters()?,
                    tok => {
                        self.conn_event(tok);
                    }
                }
            }
            // ordering: Acquire pairs with the shutdown path's Release;
            // a trigger racing the wake byte is still caught here.
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
        }
        self.drain()?;
        Ok(self.lane)
    }

    /// Empties the wake pipe so drain sweeps see only new wakeups.
    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Reads every queued datagram; returns how many were ingested.
    fn drain_udp(&mut self) -> u64 {
        let mut count = 0;
        loop {
            let Some(sock) = &self.udp else { return count };
            match sock.recv_from(&mut self.read_buf) {
                Ok((n, peer)) => {
                    count += 1;
                    self.datagrams.inc();
                    let name = format!("udp:{peer}");
                    let span = self.ingest_latency.start_span();
                    let accepted = self.lane.push_datagram(&name, &self.read_buf[..n]);
                    drop(span);
                    if !accepted {
                        self.datagrams_rejected.inc();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return count,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return count,
            }
        }
    }

    /// Accepts every pending exporter connection on this loop's
    /// listener — the kernel already sharded them to us.
    fn accept_exporters(&mut self) -> io::Result<()> {
        loop {
            let Some(listener) = &self.tcp else {
                return Ok(());
            };
            match listener.accept() {
                Ok((sock, peer)) => {
                    sock.set_nonblocking(true)?;
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller.add(sock.as_raw_fd(), token, Interest::READ)?;
                    self.tcp_conns.inc();
                    self.conns.insert(
                        token,
                        IngestConn {
                            sock,
                            peer: format!("tcp:{peer}"),
                        },
                    );
                    self.open_conns.set(self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(()),
            }
        }
    }

    /// Handles one readiness event on a connection token. Returns
    /// whether the event made ingest progress (used by the drain
    /// phase's quiescence test).
    fn conn_event(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.remove(&token) else {
            return false;
        };
        let (keep, progressed) = self.read_ipfix(&conn.sock, &conn.peer);
        if keep {
            self.conns.insert(token, conn);
        } else {
            let _ = self.poller.delete(conn.sock.as_raw_fd());
        }
        self.open_conns.set(self.conns.len() as u64);
        progressed
    }

    /// Reads an IPFIX stream to `WouldBlock`/EOF, pushing each chunk
    /// down this loop's lane. Returns `(keep_connection, made_progress)`.
    fn read_ipfix(&mut self, sock: &TcpStream, peer: &str) -> (bool, bool) {
        let mut progressed = false;
        loop {
            let mut sock = sock;
            match sock.read(&mut self.read_buf) {
                Ok(0) => return (false, progressed),
                Ok(n) => {
                    progressed = true;
                    let span = self.ingest_latency.start_span();
                    self.lane.push_chunk(peer, &self.read_buf[..n]);
                    drop(span);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (true, progressed),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return (false, progressed),
            }
        }
    }

    /// The per-loop drain tail: stop accepting, sweep to quiescence,
    /// close what remains.
    fn drain(&mut self) -> io::Result<()> {
        if let Some(listener) = self.tcp.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        let mut events = Vec::with_capacity(256);
        let mut quiet = 0;
        while quiet < self.drain_quiet_sweeps {
            events.clear();
            self.poller.wait(&mut events, self.drain_wait_ms)?;
            let mut progressed = false;
            for ev in &events {
                match ev.token {
                    TOK_WAKE => self.drain_wake_pipe(),
                    TOK_UDP => progressed |= self.drain_udp() > 0,
                    TOK_TCP => {}
                    tok => progressed |= self.conn_event(tok),
                }
            }
            if progressed {
                quiet = 0;
            } else {
                quiet += 1;
            }
        }
        // Anything still open is an idle peer; close our side.
        for (_, conn) in self.conns.drain() {
            let _ = self.poller.delete(conn.sock.as_raw_fd());
        }
        self.open_conns.set(0);
        if let Some(sock) = self.udp.take() {
            let _ = self.poller.delete(sock.as_raw_fd());
        }
        Ok(())
    }
}

/// The collection daemon. Bind with [`Daemon::bind`], then [`run`] on
/// a dedicated thread; `run` returns when a shutdown trigger arrives
/// and every loop's drain completes.
///
/// [`run`]: Daemon::run
pub struct Daemon<F: Fn(Day) -> PrefixTrie<Asn>> {
    service: MultiStreamService<F>,
    loops: Vec<IngestLoop<F>>,
    /// Wake pipe write ends, one per ingest loop, for the shutdown
    /// broadcast.
    loop_wake_tx: Vec<UnixStream>,
    // Control loop state (runs on the caller's thread).
    poller: Poller,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
    sigterm_rx: Option<UnixStream>,
    shutdown: Arc<AtomicBool>,
    http: Option<TcpListener>,
    udp_addr: Option<SocketAddr>,
    tcp_addr: Option<SocketAddr>,
    http_addr: Option<SocketAddr>,
    store: Option<StoreRuntime>,
    conns: FxHashMap<u64, HttpConn>,
    next_token: u64,
    drain_wait_ms: i32,
    drain_quiet_sweeps: u32,
    // Output counters (shared with the ingest loops) and the control
    // loop's own series.
    datagrams: Counter,
    datagrams_rejected: Counter,
    tcp_conns: Counter,
    http_conns: Counter,
    open_conns: Gauge,
    loop_events: Counter,
    http_health: Counter,
    http_metrics: Counter,
    http_store: Counter,
    http_other: Counter,
}

/// Pulls the IPv4 address out of `addr`, or explains why the sharded
/// bind cannot use it.
fn require_v4(addr: SocketAddr, what: &str) -> io::Result<SocketAddrV4> {
    match addr {
        SocketAddr::V4(v4) => Ok(v4),
        SocketAddr::V6(_) => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{what}: SO_REUSEPORT sharding requires an IPv4 bind address (got {addr})"),
        )),
    }
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> Daemon<F> {
    /// Binds every configured socket — one UDP socket and one TCP
    /// listener per ingest loop, kernel-sharded via `SO_REUSEPORT` when
    /// there is more than one loop — and starts the streaming service
    /// (ingest workers spawn here). The loops themselves do not run
    /// until [`run`](Self::run).
    pub fn bind(cfg: ServeConfig, rib_of: F) -> io::Result<Daemon<F>> {
        let loops = resolve_loops(cfg.event_loops);
        let (service, lanes) = MultiStreamService::start(cfg.stream.clone(), loops, rib_of);
        let shutdown = Arc::new(AtomicBool::new(false));
        let reg = Arc::clone(service.registry());

        // Shared output counters: every loop holds a handle to the same
        // cell, so the totals need no post-run merge.
        let datagrams = reg.counter("mt_serve_datagrams_total", "UDP datagrams received.");
        let datagrams_rejected = reg.counter(
            "mt_serve_datagrams_rejected_total",
            "UDP datagrams rejected whole: torn, trailing garbage, or a bad message header.",
        );
        let tcp_conns = reg.counter_with(
            "mt_serve_connections_total",
            &[("transport", "tcp")],
            "Connections accepted, by transport.",
        );
        let http_conns = reg.counter_with(
            "mt_serve_connections_total",
            &[("transport", "http")],
            "Connections accepted, by transport.",
        );
        let http_health = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "health")],
            "HTTP requests answered, by endpoint.",
        );
        let http_metrics = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "metrics")],
            "HTTP requests answered, by endpoint.",
        );
        let http_store = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "store")],
            "HTTP requests answered, by endpoint.",
        );
        let http_other = reg.counter_with(
            "mt_serve_http_requests_total",
            &[("endpoint", "other")],
            "HTTP requests answered, by endpoint.",
        );

        // Per-loop sockets. Loop 0 binds the configured address (which
        // may carry port 0); the rest bind the concrete address it got,
        // sharing the port through SO_REUSEPORT. At one loop the plain
        // std bind path is used — no socket option needed.
        let mut udp_socks: Vec<Option<UdpSocket>> = Vec::with_capacity(loops);
        let mut udp_addr = None;
        if let Some(addr) = cfg.udp {
            for i in 0..loops {
                let sock = match (loops, udp_addr) {
                    (1, _) => UdpSocket::bind(addr)?,
                    (_, None) => sys::bind_udp_reuseport(require_v4(addr, "udp")?)?,
                    (_, Some(SocketAddr::V4(bound))) => sys::bind_udp_reuseport(bound)?,
                    (_, Some(bound @ SocketAddr::V6(_))) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("udp: bound a V6 address ({bound}) under sharding"),
                        ))
                    }
                };
                sock.set_nonblocking(true)?;
                if cfg.udp_recv_buf > 0 {
                    // Best-effort; a clamped buffer only costs UDP loss
                    // headroom, never correctness.
                    let _ = sys::set_recv_buffer(sock.as_raw_fd(), cfg.udp_recv_buf);
                }
                if i == 0 {
                    udp_addr = Some(sock.local_addr()?);
                }
                udp_socks.push(Some(sock));
            }
        } else {
            udp_socks.resize_with(loops, || None);
        }
        let mut tcp_listeners: Vec<Option<TcpListener>> = Vec::with_capacity(loops);
        let mut tcp_addr = None;
        if let Some(addr) = cfg.tcp {
            for i in 0..loops {
                let listener = match (loops, tcp_addr) {
                    (1, _) => TcpListener::bind(addr)?,
                    (_, None) => sys::bind_tcp_reuseport(require_v4(addr, "tcp")?, TCP_BACKLOG)?,
                    (_, Some(SocketAddr::V4(bound))) => {
                        sys::bind_tcp_reuseport(bound, TCP_BACKLOG)?
                    }
                    (_, Some(bound @ SocketAddr::V6(_))) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("tcp: bound a V6 address ({bound}) under sharding"),
                        ))
                    }
                };
                listener.set_nonblocking(true)?;
                if i == 0 {
                    tcp_addr = Some(listener.local_addr()?);
                }
                tcp_listeners.push(Some(listener));
            }
        } else {
            tcp_listeners.resize_with(loops, || None);
        }

        // Assemble one IngestLoop per lane, each with its own poller,
        // wake pipe, and per-loop metric series.
        let mut ingest = Vec::with_capacity(loops);
        let mut loop_wake_tx = Vec::with_capacity(loops);
        for (i, lane) in lanes.into_iter().enumerate() {
            let poller = Poller::new()?;
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            poller.add(wake_rx.as_raw_fd(), TOK_WAKE, Interest::READ)?;
            let udp = udp_socks[i].take();
            if let Some(sock) = &udp {
                poller.add(sock.as_raw_fd(), TOK_UDP, Interest::READ)?;
            }
            let tcp = tcp_listeners[i].take();
            if let Some(listener) = &tcp {
                poller.add(listener.as_raw_fd(), TOK_TCP, Interest::READ)?;
            }
            let label = i.to_string();
            ingest.push(IngestLoop {
                index: i,
                poller,
                wake_rx,
                shutdown: Arc::clone(&shutdown),
                udp,
                tcp,
                lane,
                conns: FxHashMap::default(),
                next_token: FIRST_CONN_TOKEN,
                read_buf: vec![0u8; 64 * 1024],
                drain_wait_ms: cfg.drain_wait_ms,
                drain_quiet_sweeps: cfg.drain_quiet_sweeps,
                datagrams: datagrams.clone(),
                datagrams_rejected: datagrams_rejected.clone(),
                tcp_conns: tcp_conns.clone(),
                open_conns: reg.gauge_with(
                    "mt_serve_open_connections",
                    &[("loop", label.as_str())],
                    "Currently open connections, by event loop.",
                ),
                loop_events: reg.counter_with(
                    "mt_serve_loop_events_total",
                    &[("loop", label.as_str())],
                    "Readiness events handled, by event loop.",
                ),
                ingest_latency: reg.histogram_with(
                    "mt_serve_ingest_nanoseconds",
                    &[("loop", label.as_str())],
                    &INGEST_LATENCY_BUCKETS,
                    "Wall time to push one socket read (datagram or stream chunk) into the service, by event loop.",
                ),
            });
            loop_wake_tx.push(wake_tx);
        }

        // The control loop's own plumbing.
        let poller = Poller::new()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), TOK_WAKE, Interest::READ)?;
        let mut http_addr = None;
        let http = match cfg.http {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                poller.add(listener.as_raw_fd(), TOK_HTTP, Interest::READ)?;
                http_addr = Some(listener.local_addr()?);
                Some(listener)
            }
            None => None,
        };
        let sigterm_rx = if cfg.catch_sigterm {
            let rx = sys::install_sigterm_pipe()?;
            poller.add(rx.as_raw_fd(), TOK_SIGTERM, Interest::READ)?;
            Some(rx)
        } else {
            None
        };

        // A configured results store brings up the persistence sink and
        // the query cache: cold-load whatever earlier runs persisted,
        // then persist every window the scheduler closes from here on.
        let store = match cfg.store.clone() {
            Some(store_cfg) => {
                let to_io = |e: mt_store::StoreError| {
                    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                };
                let slots = Arc::clone(&store_cfg.slots);
                let results = ResultsStore::open(store_cfg).map_err(to_io)?;
                let (index, _cold) = QueryIndex::cold_load(&results).map_err(to_io)?;
                let index = Arc::new(Mutex::new(index));
                let windows_persisted = reg.counter(
                    "mt_store_windows_persisted_total",
                    "Closed windows persisted to the results store.",
                );
                let bytes_written = reg.counter(
                    "mt_store_bytes_written_total",
                    "Bytes written to the results store (window and summary files).",
                );
                let persist_errors = reg.counter(
                    "mt_store_persist_errors_total",
                    "Window persists that failed; the store keeps serving its last good state.",
                );
                let point_queries = reg.counter_with(
                    "mt_store_queries_total",
                    &[("kind", "point")],
                    "Store queries answered, by kind.",
                );
                let range_queries = reg.counter_with(
                    "mt_store_queries_total",
                    &[("kind", "range")],
                    "Store queries answered, by kind.",
                );
                let query_latency = reg.histogram(
                    "mt_store_query_nanoseconds",
                    &INGEST_LATENCY_BUCKETS,
                    "Wall time to answer one store query from the in-memory cache.",
                );
                let sink_index = Arc::clone(&index);
                service.set_window_sink(Box::new(move |w| {
                    let verdicts = Verdicts::from_result(w.window, &slots);
                    let wd =
                        WindowData::build(w.day, w.records, w.stats, verdicts, w.ports, &slots);
                    let outcome = (|| {
                        let mut n = results.write_window(&wd)?;
                        let mut idx = lock_index(&sink_index); // lock: serve.index
                        idx.apply_window(&wd, w.combined)?;
                        n += results.write_summary(idx.summary())?;
                        Ok::<u64, mt_store::StoreError>(n)
                    })();
                    // A failed persist must never take down the
                    // collection path; it is counted and the store
                    // keeps serving its last good state.
                    match outcome {
                        Ok(n) => {
                            windows_persisted.inc();
                            bytes_written.add(n);
                        }
                        Err(_) => persist_errors.inc(),
                    }
                }));
                Some(StoreRuntime {
                    index,
                    point_queries,
                    range_queries,
                    query_latency,
                })
            }
            None => None,
        };

        Ok(Daemon {
            service,
            loops: ingest,
            loop_wake_tx,
            poller,
            wake_rx,
            wake_tx,
            sigterm_rx,
            shutdown,
            http,
            udp_addr,
            tcp_addr,
            http_addr,
            store,
            conns: FxHashMap::default(),
            next_token: FIRST_CONN_TOKEN,
            drain_wait_ms: cfg.drain_wait_ms,
            drain_quiet_sweeps: cfg.drain_quiet_sweeps,
            datagrams,
            datagrams_rejected,
            tcp_conns,
            http_conns,
            open_conns: reg.gauge_with(
                "mt_serve_open_connections",
                &[("loop", "control")],
                "Currently open connections, by event loop.",
            ),
            loop_events: reg.counter_with(
                "mt_serve_loop_events_total",
                &[("loop", "control")],
                "Readiness events handled, by event loop.",
            ),
            http_health,
            http_metrics,
            http_store,
            http_other,
        })
    }

    /// The shared UDP ingest address, if the transport is on (all loops
    /// bind the same port).
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// The shared TCP exporter address, if the transport is on.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The HTTP listener's actual bound address, if enabled.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// How many ingest event loops the daemon resolved to.
    pub fn event_loops(&self) -> usize {
        self.loops.len()
    }

    /// A trigger other threads can use to stop the daemon.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            shutdown: Arc::clone(&self.shutdown),
            wake_tx: self.wake_tx.try_clone()?,
        })
    }

    /// The live streaming service (health snapshots mid-run).
    pub fn service(&self) -> &MultiStreamService<F> {
        &self.service
    }

    /// Empties the wake and SIGTERM pipes so later sweeps see only new
    /// wakeups.
    fn drain_wake_pipes(&mut self) {
        let mut sink = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        if let Some(rx) = &mut self.sigterm_rx {
            while matches!(rx.read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    /// Accepts every pending probe connection on the HTTP listener.
    fn accept_http(&mut self) -> io::Result<()> {
        loop {
            let Some(listener) = &self.http else {
                return Ok(());
            };
            match listener.accept() {
                Ok((sock, _peer)) => {
                    sock.set_nonblocking(true)?;
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller.add(sock.as_raw_fd(), token, Interest::READ)?;
                    self.http_conns.inc();
                    self.conns.insert(
                        token,
                        HttpConn {
                            sock,
                            req: Vec::new(),
                            out: Vec::new(),
                            sent: 0,
                            responding: false,
                        },
                    );
                    self.open_conns.set(self.conns.len() as u64);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(()),
            }
        }
    }

    /// Handles one readiness event on an HTTP connection token.
    fn http_event(&mut self, token: u64, writable: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let (keep, conn) = self.step_http(token, conn, writable);
        if keep {
            self.conns.insert(token, conn);
        } else {
            let _ = self.poller.delete(conn.sock.as_raw_fd());
        }
        self.open_conns.set(self.conns.len() as u64);
    }

    /// Advances one HTTP connection: read until the head completes,
    /// build the response, write as far as the socket allows.
    fn step_http(&mut self, token: u64, mut conn: HttpConn, writable: bool) -> (bool, HttpConn) {
        if !conn.responding {
            let mut eof = false;
            loop {
                let mut r = &conn.sock;
                let mut buf = [0u8; 4096];
                match r.read(&mut buf) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.req.extend_from_slice(&buf[..n]);
                        // Keep reading only while the head is genuinely
                        // incomplete; the parser's bounds make that
                        // state unreachable past the fixed limits, so
                        // the buffer cannot grow without end.
                        if !matches!(http::parse_request(&conn.req), http::Parse::Incomplete) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            match http::parse_request(&conn.req) {
                http::Parse::Complete(r) => {
                    conn.out = self.respond(&r);
                    conn.responding = true;
                }
                http::Parse::Malformed => {
                    self.http_other.inc();
                    conn.out = http::bad_request();
                    conn.responding = true;
                }
                http::Parse::TooLarge => {
                    self.http_other.inc();
                    conn.out = http::header_too_large();
                    conn.responding = true;
                }
                http::Parse::Incomplete => {
                    if eof {
                        return (false, conn);
                    }
                }
            }
        }
        if conn.responding {
            let done = loop {
                if conn.sent >= conn.out.len() {
                    break true;
                }
                let mut w = &conn.sock;
                match w.write(&conn.out[conn.sent..]) {
                    Ok(0) => break true, // peer gone; nothing more to do
                    Ok(n) => conn.sent += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break false,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break true,
                }
            };
            if done {
                return (false, conn);
            }
            if !writable {
                // Partial write: also wake on writability from now on.
                let _ = self
                    .poller
                    .modify(conn.sock.as_raw_fd(), token, Interest::READ_WRITE);
            }
        }
        (true, conn)
    }

    /// Builds the response for a parsed request and counts it.
    fn respond(&mut self, req: &http::Request) -> Vec<u8> {
        if req.method != "GET" {
            self.http_other.inc();
            return http::method_not_allowed();
        }
        let (path, query) = http::split_query(&req.path);
        if let Some(addr) = path.strip_prefix("/v1/block/") {
            return self.respond_point(addr);
        }
        if let Some(day) = path
            .strip_prefix("/v1/windows/")
            .and_then(|rest| rest.strip_suffix("/verdicts"))
        {
            return self.respond_range(day, query);
        }
        match path {
            "/health" => {
                self.http_health.inc();
                let health = self.service.health();
                let body = serde_json::to_string(&health).unwrap_or_else(|_| "{}".to_owned());
                http::response("200 OK", "application/json", body.as_bytes())
            }
            "/metrics" => {
                self.http_metrics.inc();
                // health() republishes every legacy counter into the
                // registry so the exposition is current.
                let _ = self.service.health();
                let text = self.service.registry().snapshot().render_prometheus_text();
                http::response(
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.as_bytes(),
                )
            }
            _ => {
                self.http_other.inc();
                http::not_found()
            }
        }
    }

    /// `GET /v1/block/{a.b.c.0}` — point lookup against the summary:
    /// verdict, since-when, traffic profile, top ports.
    fn respond_point(&mut self, addr: &str) -> Vec<u8> {
        self.http_store.inc();
        let Some(store) = &self.store else {
            return http::not_found();
        };
        let Ok(addr) = Ipv4::from_str(addr) else {
            return http::bad_request();
        };
        store.point_queries.inc();
        let span = store.query_latency.start_span();
        let report = lock_index(&store.index).point(addr); // lock: serve.index
        drop(span);
        let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_owned());
        http::response("200 OK", "application/json", body.as_bytes())
    }

    /// `GET /v1/windows/{day}/verdicts?from=a.b.c.0&to=x.y.z.0` —
    /// range scan over one persisted window's verdicts.
    fn respond_range(&mut self, day: &str, query: &str) -> Vec<u8> {
        self.http_store.inc();
        let Some(store) = &self.store else {
            return http::not_found();
        };
        let Ok(day) = day.parse::<u32>() else {
            return http::bad_request();
        };
        let parse_block = |v: Option<&str>, default: Block24| match v {
            None => Some(default),
            Some(s) => Ipv4::from_str(s).ok().map(Block24::containing),
        };
        let from = parse_block(http::query_param(query, "from"), Block24(0));
        let to = parse_block(http::query_param(query, "to"), Block24(0x00ff_ffff));
        let (Some(from), Some(to)) = (from, to) else {
            return http::bad_request();
        };
        if from > to {
            return http::bad_request();
        }
        store.range_queries.inc();
        let span = store.query_latency.start_span();
        let report = lock_index(&store.index).range(Day(day), from, to); // lock: serve.index
        drop(span);
        match report {
            Some(report) => {
                let body = serde_json::to_string(&report).unwrap_or_else(|_| "{}".to_owned());
                http::response("200 OK", "application/json", body.as_bytes())
            }
            None => http::not_found(),
        }
    }

    /// The control loop's drain tail: stop accepting probes, finish
    /// answering in-flight requests, close what remains.
    fn drain_http(&mut self) -> io::Result<()> {
        if let Some(listener) = self.http.take() {
            let _ = self.poller.delete(listener.as_raw_fd());
        }
        let mut events = Vec::with_capacity(64);
        let mut quiet = 0;
        while quiet < self.drain_quiet_sweeps && !self.conns.is_empty() {
            events.clear();
            self.poller.wait(&mut events, self.drain_wait_ms)?;
            let mut progressed = false;
            for ev in &events {
                match ev.token {
                    TOK_WAKE | TOK_SIGTERM => self.drain_wake_pipes(),
                    TOK_HTTP => {}
                    tok => {
                        let before = self.conns.len();
                        self.http_event(tok, ev.writable);
                        progressed |= self.conns.len() != before;
                    }
                }
            }
            if progressed {
                quiet = 0;
            } else {
                quiet += 1;
            }
        }
        for (_, conn) in self.conns.drain() {
            let _ = self.poller.delete(conn.sock.as_raw_fd());
        }
        self.open_conns.set(0);
        Ok(())
    }
}

impl<F: Fn(Day) -> PrefixTrie<Asn> + Send + 'static> Daemon<F> {
    /// Runs the daemon: spawns one thread per ingest loop, serves the
    /// control loop on the calling thread until shutdown, then drains
    /// everything and finishes the service.
    pub fn run(mut self) -> io::Result<ServeOutput> {
        let event_loops = self.loops.len();
        let threads: Vec<JoinHandle<io::Result<LaneProducer<F>>>> = self
            .loops
            .drain(..)
            .map(|l| {
                std::thread::Builder::new()
                    .name(format!("mt-serve-loop-{}", l.index))
                    .spawn(move || l.run())
            })
            .collect::<io::Result<_>>()?;

        let mut events = Vec::with_capacity(256);
        'main: loop {
            events.clear();
            self.poller.wait(&mut events, -1)?;
            self.loop_events.add(events.len() as u64);
            for ev in &events {
                match ev.token {
                    TOK_WAKE | TOK_SIGTERM => {
                        self.drain_wake_pipes();
                        break 'main;
                    }
                    TOK_HTTP => self.accept_http()?,
                    tok => self.http_event(tok, ev.writable),
                }
            }
            // ordering: Acquire pairs with ShutdownHandle's Release; a
            // racing trigger between wait() and here is still caught.
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
        }

        // Broadcast the shutdown to every ingest loop (the SIGTERM path
        // arrives here with the flag still unset).
        // ordering: Release pairs with the ingest loops' Acquire loads.
        self.shutdown.store(true, Ordering::Release);
        for tx in &mut self.loop_wake_tx {
            let _ = tx.write(b"S");
        }
        // Answer in-flight probes while the ingest loops drain in
        // parallel, then collect the lanes.
        self.drain_http()?;
        let mut lanes = Vec::with_capacity(threads.len());
        for t in threads {
            let lane = t
                .join()
                .map_err(|_| io::Error::other("ingest loop panicked"))??;
            lanes.push(lane);
        }
        let stream = self.service.finish(lanes);
        Ok(ServeOutput {
            datagrams: self.datagrams.get(),
            datagrams_rejected: self.datagrams_rejected.get(),
            tcp_connections: self.tcp_conns.get(),
            http_requests: self.http_health.get()
                + self.http_metrics.get()
                + self.http_store.get()
                + self.http_other.get(),
            event_loops,
            stream,
        })
    }
}
