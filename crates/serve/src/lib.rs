//! mt-serve: the socket-facing collection daemon.
//!
//! The rest of the workspace ingests flows through in-process function
//! calls; a deployed telescope is fed by independently-operated
//! exporters over the network. This crate closes that gap with a
//! long-running daemon built on a hand-rolled nonblocking epoll event
//! loop (no async runtime, no external crates):
//!
//! - **UDP** (RFC 7011 §10.3): one datagram carries whole IPFIX
//!   message(s); torn or garbage datagrams are counted and dropped
//!   without desyncing the peer's session ([`mt_stream`]'s datagram
//!   path).
//! - **TCP** (RFC 7011 §10.4): messages framed back to back on the
//!   stream, any chunking, via the existing per-peer
//!   [`StreamCollector`](mt_stream::StreamCollector) sessions.
//! - **HTTP/1.1**: `GET /health` (the accounting-identity snapshot as
//!   JSON) and `GET /metrics` (Prometheus text exposition), served by a
//!   minimal responder on the same event loop.
//! - **Graceful shutdown**: on SIGTERM or a [`ShutdownHandle`] trigger
//!   the daemon stops accepting, drains kernel buffers and the ingest
//!   queue, closes the final windows, and returns a quiescent
//!   [`StreamOutput`](mt_stream::StreamOutput) whose ledger identities
//!   hold exactly.
//!
//! Records delivered over sockets produce window verdicts bit-identical
//! to an in-process batch run — the event loop is just another producer
//! for [`StreamService`](mt_stream::StreamService), and all gating
//! stays watermark-driven (simulated time), never wall-clock-driven.
//!
//! All `unsafe` lives in [`sys`], a small audited wrapper over the
//! epoll/signal syscalls; the crate root denies rather than forbids
//! unsafe so that one module can opt in explicitly.

// check: allow(crate_hygiene, "sys is the one audited unsafe module: epoll/signalfd have no std equivalent and the container vendors no libc crate")
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod replay;
#[allow(unsafe_code)]
pub mod sys;

pub use daemon::{Daemon, ServeConfig, ServeOutput, ShutdownHandle};
pub use replay::Workload;
