//! Audited syscall layer: epoll, the SIGTERM self-pipe, and the socket
//! options — everything the event loop needs that `std` does not
//! expose, `SO_REUSEPORT` binding included.
//!
//! The container vendors no `libc` crate, so the handful of symbols are
//! declared here directly; they resolve against the C library `std`
//! already links. Every `unsafe` block carries a `// safety:` argument
//! (enforced workspace-wide by mt-check's `crate_hygiene` rule), and
//! nothing unsafe leaks out of this module: the public surface is
//! [`Poller`]/[`Event`], [`set_recv_buffer`], the `SO_REUSEPORT` bind
//! helpers ([`bind_udp_reuseport`], [`bind_tcp_reuseport`]), and the
//! signal helpers, all safe.

use std::io;
use std::net::{SocketAddrV4, TcpListener, UdpSocket};
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicI32, Ordering};

// Linux ABI constants (asm-generic values, correct on x86_64/aarch64).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const SIGTERM: c_int = 15;
const SOL_SOCKET: c_int = 1;
const SO_RCVBUF: c_int = 8;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_DGRAM: c_int = 2;
const SOCK_CLOEXEC: c_int = 0o2000000;

/// `struct epoll_event`. Packed on x86_64 (the kernel ABI packs it
/// there so 32- and 64-bit layouts agree); natural alignment elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// The signal handler's signature, as the C library expects it.
type SigHandler = extern "C" fn(c_int);

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn signal(signum: c_int, handler: SigHandler) -> usize;
    fn raise(sig: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn bind(fd: c_int, addr: *const SockaddrIn, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

/// `struct sockaddr_in`, the kernel's IPv4 socket address. Port and
/// address are stored big-endian as the ABI requires.
#[repr(C)]
struct SockaddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

impl SockaddrIn {
    fn from_v4(addr: SocketAddrV4) -> SockaddrIn {
        SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from(*addr.ip()).to_be(),
            sin_zero: [0; 8],
        }
    }
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the common case for listeners and ingest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — HTTP connections mid-response.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness event, translated out of the kernel struct.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or a peer hangup, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd.
    pub error: bool,
}

/// A level-triggered epoll instance. The file descriptor is owned:
/// dropping the poller closes it.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // safety: epoll_create1 touches no caller memory; the flag is a
        // valid constant and the returned fd (or -1) is checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, mut ev: EpollEvent) -> io::Result<()> {
        // safety: `ev` is a live, properly-laid-out EpollEvent for the
        // duration of the call; epfd and fd are open descriptors owned
        // by the caller; the kernel only reads the struct.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            EpollEvent {
                events: interest.mask(),
                data: token,
            },
        )
    }

    /// Changes the interest set of a registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            EpollEvent {
                events: interest.mask(),
                data: token,
            },
        )
    }

    /// Removes `fd` from the interest list.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, EpollEvent { events: 0, data: 0 })
    }

    /// Waits up to `timeout_ms` (-1 = forever) and appends readiness
    /// events to `out`. An interrupted wait (EINTR) returns cleanly
    /// with no events so the caller's loop can re-check its state.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const MAX_EVENTS: usize = 128;
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // safety: `buf` is a properly-aligned array of MAX_EVENTS
        // EpollEvents living across the call; the kernel writes at most
        // `maxevents` entries, and we read back only the first `n`.
        let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            // A packed struct's fields are moved out before use so no
            // unaligned reference is ever formed.
            let events = ev.events;
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & (EPOLLIN | EPOLLHUP) != 0,
                writable: events & EPOLLOUT != 0,
                error: events & EPOLLERR != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // safety: epfd was returned by epoll_create1 and is closed
        // exactly once, here; close touches no caller memory.
        unsafe { close(self.epfd) };
    }
}

/// Asks the kernel for a receive-buffer size on `fd` (the kernel may
/// clamp to `net.core.rmem_max`; this is best-effort by design).
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let val: c_int = c_int::try_from(bytes).unwrap_or(c_int::MAX);
    // safety: optval points at a live c_int of exactly optlen bytes for
    // the duration of the call; the kernel only reads it.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            (&val as *const c_int).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Sets a boolean socket option to 1 at the `SOL_SOCKET` level.
fn set_sol_flag(fd: RawFd, optname: c_int) -> io::Result<()> {
    let val: c_int = 1;
    // safety: optval points at a live c_int of exactly optlen bytes for
    // the duration of the call; the kernel only reads it.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            optname,
            (&val as *const c_int).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Sets `SO_REUSEPORT` on `fd`: several sockets may then bind the same
/// address, with the kernel hashing incoming datagrams (by 4-tuple) and
/// TCP connections across them — the distribution mechanism behind the
/// daemon's sharded event loops.
pub fn set_reuseport(fd: RawFd) -> io::Result<()> {
    set_sol_flag(fd, SO_REUSEPORT)
}

/// Creates an IPv4 socket of type `ty` with `SO_REUSEPORT` set and
/// binds it to `addr`, returning the raw fd wrapped in `wrap` so every
/// error path closes it exactly once.
fn bound_reuseport_fd<S>(
    addr: SocketAddrV4,
    ty: c_int,
    wrap: impl FnOnce(RawFd) -> S,
) -> io::Result<S> {
    // safety: socket(2) touches no caller memory; domain/type/protocol
    // are valid constants and the returned fd (or -1) is checked below.
    let fd = unsafe { socket(AF_INET, ty | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Wrapped immediately: from here the std owner closes the fd on
    // every early return.
    let sock = wrap(fd);
    set_reuseport(fd)?;
    if ty == SOCK_STREAM {
        // Before the bind, where it takes effect — matching std's
        // listener bind so TIME_WAIT remnants don't block restarts.
        set_sol_flag(fd, SO_REUSEADDR)?;
    }
    let sa = SockaddrIn::from_v4(addr);
    // safety: `sa` is a live, properly-laid-out sockaddr_in for the
    // duration of the call and addrlen is exactly its size; the kernel
    // only reads it; fd is open and owned by `sock`.
    let rc = unsafe { bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(sock)
}

/// Binds an IPv4 UDP socket to `addr` with `SO_REUSEPORT` set before
/// the bind, so N event loops can each own a socket on the same port
/// and the kernel spreads datagrams across them by flow hash.
pub fn bind_udp_reuseport(addr: SocketAddrV4) -> io::Result<UdpSocket> {
    bound_reuseport_fd(addr, SOCK_DGRAM, |fd| {
        use std::os::unix::io::FromRawFd;
        // safety: fd was created by socket(2) three lines up and has no
        // other owner; UdpSocket takes sole ownership (closes on drop).
        unsafe { UdpSocket::from_raw_fd(fd) }
    })
}

/// Binds an IPv4 TCP listener to `addr` with `SO_REUSEPORT` (and
/// `SO_REUSEADDR`, matching `std`'s listener bind) set before the bind,
/// so N event loops can each accept on the same port with the kernel
/// sharding incoming connections across them.
pub fn bind_tcp_reuseport(addr: SocketAddrV4, backlog: u32) -> io::Result<TcpListener> {
    let listener = bound_reuseport_fd(addr, SOCK_STREAM, |fd| {
        use std::os::unix::io::FromRawFd;
        // safety: fd was created by socket(2) in bound_reuseport_fd and
        // has no other owner; TcpListener takes sole ownership.
        unsafe { TcpListener::from_raw_fd(fd) }
    })?;
    {
        use std::os::unix::io::AsRawFd;
        // safety: listen(2) touches no caller memory; the fd is open,
        // bound, and owned by `listener`; the backlog is clamped to the
        // C int range.
        let rc = unsafe {
            listen(
                listener.as_raw_fd(),
                c_int::try_from(backlog).unwrap_or(c_int::MAX),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(listener)
}

/// Write end of the SIGTERM self-pipe, published for the handler.
/// -1 until [`install_sigterm_pipe`] runs.
static SIGNAL_PIPE_WR: AtomicI32 = AtomicI32::new(-1);

extern "C" fn sigterm_handler(_sig: c_int) {
    // ordering: Relaxed — the fd is written once before the handler can
    // ever run (signal() is called after the store) and never changes;
    // there is no data behind it to synchronize.
    let fd = SIGNAL_PIPE_WR.load(Ordering::Relaxed);
    if fd >= 0 {
        // safety: write(2) is async-signal-safe (POSIX); the buffer is
        // a live one-byte static; the fd is a pipe end kept open for
        // the process lifetime by install_sigterm_pipe.
        let _ = unsafe { write(fd, b"T".as_ptr().cast::<c_void>(), 1) };
    }
}

/// Installs a SIGTERM handler that writes one byte to a self-pipe and
/// returns the read end, for registration on the event loop. The write
/// end is intentionally leaked — the handler may fire at any point for
/// the rest of the process's life.
///
/// Installing twice returns a fresh pipe and repoints the handler at
/// it; the previous write end stays open (leaked) so a concurrently
/// delivered signal can never hit a closed fd.
pub fn install_sigterm_pipe() -> io::Result<UnixStream> {
    let (rx, tx) = UnixStream::pair()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    {
        use std::os::unix::io::IntoRawFd;
        // ordering: Relaxed — published before signal() installs the
        // handler below, and the handler only reads the value.
        SIGNAL_PIPE_WR.store(tx.into_raw_fd(), Ordering::Relaxed);
    }
    // safety: installing a handler that is itself async-signal-safe
    // (one write(2) on a static fd); SIGTERM is a valid signal number;
    // glibc's signal() has BSD semantics (handler persists).
    let prev = unsafe { signal(SIGTERM, sigterm_handler) };
    if prev == usize::MAX {
        return Err(io::Error::last_os_error());
    }
    Ok(rx)
}

/// Delivers SIGTERM to the current process — test hook for the
/// graceful-shutdown path.
pub fn raise_sigterm() {
    // safety: raise(2) with a valid signal number; no memory involved.
    let _ = unsafe { raise(SIGTERM) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::UdpSocket;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_sees_udp_readability() {
        let poller = Poller::new().unwrap();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sock.set_nonblocking(true).unwrap();
        poller.add(sock.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing sent yet");

        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(b"ping", sock.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert_eq!(events.len(), 1);
        let mut buf = [0u8; 16];
        sock.recv_from(&mut buf).unwrap();
        events.clear();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained");

        poller.delete(sock.as_raw_fd()).unwrap();
        tx.send_to(b"ping", sock.local_addr().unwrap()).unwrap();
        events.clear();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "deregistered fd no longer reported");
    }

    #[test]
    fn recv_buffer_request_is_accepted() {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        set_recv_buffer(sock.as_raw_fd(), 1 << 20).unwrap();
    }

    #[test]
    fn udp_reuseport_shares_a_port_and_delivers_each_datagram_once() {
        let a = bind_udp_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = a.local_addr().unwrap();
        let port_addr = match addr {
            std::net::SocketAddr::V4(v4) => v4,
            std::net::SocketAddr::V6(_) => unreachable!("bound V4"),
        };
        // Second socket on the *same* concrete port — only possible
        // because both were bound with SO_REUSEPORT set first.
        let b = bind_udp_reuseport(port_addr).unwrap();
        assert_eq!(b.local_addr().unwrap(), addr);
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();

        // Many source ports so the kernel's 4-tuple hash gets a chance
        // to spread; each datagram must arrive on exactly one socket.
        let n = 64;
        for _ in 0..n {
            let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
            tx.send_to(b"ping", addr).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut buf = [0u8; 16];
        let mut got = 0;
        while a.recv_from(&mut buf).is_ok() {
            got += 1;
        }
        while b.recv_from(&mut buf).is_ok() {
            got += 1;
        }
        assert_eq!(got, n, "every datagram delivered exactly once");
    }

    #[test]
    fn tcp_reuseport_listeners_share_a_port() {
        let a = bind_tcp_reuseport("127.0.0.1:0".parse().unwrap(), 128).unwrap();
        let addr = a.local_addr().unwrap();
        let port_addr = match addr {
            std::net::SocketAddr::V4(v4) => v4,
            std::net::SocketAddr::V6(_) => unreachable!("bound V4"),
        };
        let b = bind_tcp_reuseport(port_addr, 128).unwrap();
        assert_eq!(b.local_addr().unwrap(), addr);
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();

        // Connections land on exactly one of the listeners.
        let mut accepted = 0;
        let conns: Vec<_> = (0..8)
            .map(|_| std::net::TcpStream::connect(addr).unwrap())
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        while a.accept().is_ok() {
            accepted += 1;
        }
        while b.accept().is_ok() {
            accepted += 1;
        }
        assert_eq!(accepted, conns.len(), "every connection accepted once");
    }

    #[test]
    fn sigterm_pipe_wakes() {
        let mut rx = install_sigterm_pipe().unwrap();
        raise_sigterm();
        // The byte may take a scheduling quantum to land; poll briefly.
        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 5000).unwrap();
        assert!(!events.is_empty(), "SIGTERM self-pipe byte arrived");
        let mut buf = [0u8; 8];
        let n = rx.read(&mut buf).unwrap();
        assert!(n >= 1);
        assert_eq!(buf[0], b'T');
    }
}
