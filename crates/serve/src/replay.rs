//! Deterministic traffic replay: the synthetic exporter fleet that
//! feeds the daemon in tests, the `serve-replay` load client, and the
//! `serve` bench.
//!
//! A [`Workload`] is a pure function of its parameters — exporter `e`,
//! day `d`, flow `i` always produce the same record (via
//! [`mt_types::mix::mix3`]) — so a socket run can be compared bit-for-bit
//! against an in-process batch run of the same workload, and any two
//! transports against each other.

use mt_types::mix::mix3;
use mt_types::time::SECS_PER_DAY;
use mt_types::{Asn, Day, PrefixTrie, SimTime};
use mt_wire::ipfix::{self, IpfixFlow};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};

/// A deterministic multi-exporter, multi-day flow workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Number of synthetic exporters (observation domains).
    pub exporters: usize,
    /// Number of simulated days, starting at day 0.
    pub days: u32,
    /// Flows per exporter per day.
    pub flows_per_exporter_day: usize,
    /// Seed mixed into every draw.
    pub seed: u64,
}

impl Workload {
    /// A small default: enough to close windows, cheap enough for CI.
    pub fn small(seed: u64) -> Workload {
        Workload {
            exporters: 4,
            days: 3,
            flows_per_exporter_day: 200,
            seed,
        }
    }

    /// The flow record `i` of `exporter` on `day`. Destinations fall in
    /// 20.0.0.0/8 (the announced space of [`default_rib`]); timestamps
    /// walk the day front to back so watermarks advance monotonically
    /// within each exporter's stream.
    pub fn flow(&self, exporter: usize, day: Day, i: usize) -> IpfixFlow {
        let h = mix3(
            self.seed ^ 0x006d_7473_6572_7665_u64, // "mtserve"
            (exporter as u64) << 32 | u64::from(day.0),
            i as u64,
        );
        let per_day = self.flows_per_exporter_day as u64;
        // Spread starts across the day, keeping order within the stream.
        let step = SECS_PER_DAY / per_day.max(1);
        let start = day.start() + mt_types::SimDuration::secs((i as u64) * step % SECS_PER_DAY);
        IpfixFlow {
            src: mt_types::Ipv4((0x0900_0000u32).wrapping_add((h >> 40) as u32 & 0x00ff_ffff)),
            dst: mt_types::Ipv4(0x1400_0000 | ((h as u32) & 0x00ff_ff00) | 0x01),
            src_port: 1024 + ((h >> 16) as u16 % 50_000),
            dst_port: [23u16, 80, 443, 445, 2323][(h >> 8) as usize % 5],
            protocol: 6,
            tcp_flags: 0x02,
            packets: 1 + (h % 4),
            octets: 40 * (1 + (h % 4)),
            start_secs: secs_u32(start),
        }
    }

    /// All flows of `exporter` on `day`, in stream order.
    pub fn day_flows(&self, exporter: usize, day: Day) -> Vec<IpfixFlow> {
        (0..self.flows_per_exporter_day)
            .map(|i| self.flow(exporter, day, i))
            .collect()
    }

    /// Every flow of the whole workload, exporter-major then day-major —
    /// the reference order for in-process batch comparison (ingest is
    /// order-insensitive within a day window).
    pub fn all_flows(&self) -> Vec<IpfixFlow> {
        let mut out =
            Vec::with_capacity(self.exporters * self.days as usize * self.flows_per_exporter_day);
        for e in 0..self.exporters {
            for d in 0..self.days {
                out.extend(self.day_flows(e, Day(d)));
            }
        }
        out
    }

    /// Total flows the workload generates.
    pub fn total_flows(&self) -> u64 {
        (self.exporters * self.days as usize * self.flows_per_exporter_day) as u64
    }

    /// Encodes `exporter`'s flows for `day` into wire messages of
    /// `records_per_message`, advancing the exporter's sequence state.
    pub fn encode_day(
        &self,
        exporter: usize,
        day: Day,
        sequence: &mut u32,
        records_per_message: usize,
    ) -> Vec<Vec<u8>> {
        ipfix::encode_messages(
            &self.day_flows(exporter, day),
            secs_u32(day.start()),
            exporter as u32,
            sequence,
            records_per_message,
        )
    }
}

/// Seconds-since-epoch of a [`SimTime`], saturated into the wire's u32.
fn secs_u32(t: SimTime) -> u32 {
    u32::try_from(t.0).unwrap_or(u32::MAX)
}

/// The RIB every replay component assumes: 20.0.0.0/8 announced by one
/// AS — matching [`Workload`] destinations, so every generated flow
/// lands in announced space.
pub fn default_rib() -> PrefixTrie<Asn> {
    let mut trie = PrefixTrie::new();
    if let Ok(p) = "20.0.0.0/8".parse() {
        trie.insert(p, Asn(65_000));
    }
    trie
}

/// Sends each message as one UDP datagram from an ephemeral socket.
/// Returns the number of datagrams sent.
pub fn send_udp(to: SocketAddr, messages: &[Vec<u8>]) -> io::Result<u64> {
    let sock = UdpSocket::bind(("127.0.0.1", 0))?;
    let mut sent = 0;
    for msg in messages {
        sock.send_to(msg, to)?;
        sent += 1;
    }
    Ok(sent)
}

/// Streams messages back to back over one TCP connection, then shuts
/// down the write half so the daemon sees EOF.
pub fn send_tcp(to: SocketAddr, messages: &[Vec<u8>]) -> io::Result<()> {
    let mut sock = TcpStream::connect(to)?;
    for msg in messages {
        sock.write_all(msg)?;
    }
    sock.shutdown(std::net::Shutdown::Write)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_in_announced_space() {
        let w = Workload::small(42);
        assert_eq!(w.flow(1, Day(2), 3), w.flow(1, Day(2), 3));
        assert_ne!(w.flow(1, Day(2), 3), w.flow(1, Day(2), 4));
        assert_ne!(w.flow(1, Day(2), 3), Workload::small(43).flow(1, Day(2), 3));
        let rib = default_rib();
        for e in 0..w.exporters {
            for f in w.day_flows(e, Day(0)) {
                assert_eq!(rib.lookup(f.dst).map(|(_, v)| v), Some(&Asn(65_000)));
                let day = Day((u64::from(f.start_secs) / SECS_PER_DAY) as u32);
                assert_eq!(day, Day(0), "flow stays inside its day");
            }
        }
        assert_eq!(w.all_flows().len() as u64, w.total_flows());
    }

    #[test]
    fn encoded_day_roundtrips() {
        let w = Workload::small(7);
        let mut seq = 0;
        let msgs = w.encode_day(2, Day(1), &mut seq, 50);
        assert_eq!(seq as usize, w.flows_per_exporter_day);
        let mut c = ipfix::Collector::new();
        let mut out = Vec::new();
        for m in &msgs {
            c.decode_message(m, &mut out).unwrap();
        }
        assert_eq!(out, w.day_flows(2, Day(1)));
    }
}
