//! A minimal HTTP/1.1 responder for the two operational endpoints.
//!
//! The daemon is not a web server: it answers `GET /health` and
//! `GET /metrics` for scrapers and probes, one request per connection
//! (`Connection: close`), no keep-alive, no chunked encoding, no body
//! parsing. Request parsing is a byte-level scan for the request line
//! and the end of the header block — deliberately total (never panics)
//! and tolerant of anything a probe might send.

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased as received.
    pub method: String,
    /// The request target, e.g. `/health`.
    pub path: String,
}

/// Scans a receive buffer for a complete request head (terminated by a
/// blank line). Returns `None` until the head has fully arrived;
/// `Some(Err(()))` for a malformed request line.
pub fn parse_request(buf: &[u8]) -> Option<Result<Request, ()>> {
    let head_end = find_head_end(buf)?;
    let head = &buf[..head_end];
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head.len());
    let Ok(line) = std::str::from_utf8(&head[..line_end]) else {
        return Some(Err(()));
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Some(Err(()));
    };
    if method.is_empty() || path.is_empty() {
        return Some(Err(()));
    }
    Some(Ok(Request {
        method: method.to_owned(),
        path: path.to_owned(),
    }))
}

/// Index just past the `\r\n\r\n` (or lone `\n\n`) ending the header
/// block, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(i + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2)
}

/// Builds a complete response with the given status line tail
/// (e.g. `200 OK`), content type, and body.
pub fn response(status: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    out.extend_from_slice(body);
    out
}

/// The canned 404 for unknown paths.
pub fn not_found() -> Vec<u8> {
    response("404 Not Found", "text/plain", b"not found\n")
}

/// The canned 405 for non-GET methods on known paths.
pub fn method_not_allowed() -> Vec<u8> {
    response("405 Method Not Allowed", "text/plain", b"GET only\n")
}

/// The canned 400 for request lines we cannot parse.
pub fn bad_request() -> Vec<u8> {
    response("400 Bad Request", "text/plain", b"bad request\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_get() {
        let buf = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = parse_request(buf).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn waits_for_the_full_head() {
        assert!(parse_request(b"GET /health HTT").is_none());
        assert!(parse_request(b"GET /health HTTP/1.1\r\nHost: x\r\n").is_none());
    }

    #[test]
    fn lf_only_requests_are_accepted() {
        let req = parse_request(b"GET /metrics HTTP/1.0\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn garbage_is_a_parse_error_not_a_panic() {
        assert_eq!(parse_request(b"\xff\xfe\r\n\r\n"), Some(Err(())));
        assert_eq!(parse_request(b" \r\n\r\n"), Some(Err(())));
        assert_eq!(parse_request(b"\r\n\r\n"), Some(Err(())));
    }

    #[test]
    fn response_has_content_length_and_close() {
        let r = response("200 OK", "application/json", b"{}");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
