//! A minimal HTTP/1.1 responder for the operational endpoints.
//!
//! The daemon is not a web server: it answers `GET /health`,
//! `GET /metrics`, and the store's `/v1/...` read queries, one request
//! per connection (`Connection: close`), no keep-alive, no chunked
//! encoding, no body parsing. Request parsing is a byte-level scan for
//! the request line and the end of the header block — deliberately
//! total (never panics), tolerant of anything a probe might send, and
//! *bounded*: a head that is merely split across TCP reads is
//! [`Parse::Incomplete`] (never parsed from a partial buffer), while a
//! request line or head that exceeds the fixed limits is
//! [`Parse::TooLarge`] (answered `431`) instead of buffering forever.

/// Hard cap on the buffered request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Hard cap on the request line alone. A buffer this long with no line
/// break yet can never become a valid request, so the connection is
/// rejected without waiting for the head terminator.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased as received.
    pub method: String,
    /// The request target, e.g. `/health` or `/v1/block/20.0.1.0?x=1`.
    pub path: String,
}

/// The outcome of scanning a receive buffer for a request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The head has not fully arrived; read more and rescan. Nothing
    /// has been parsed — a request line split across TCP reads stays
    /// unparsed until its terminator arrives.
    Incomplete,
    /// The request line or head exceeds the fixed bounds; answer `431`
    /// and close. Terminal: more bytes can never fix it.
    TooLarge,
    /// A complete head arrived but the request line is not parseable;
    /// answer `400` and close.
    Malformed,
    /// A complete, parseable request line.
    Complete(Request),
}

/// Scans a receive buffer for a complete request head (terminated by a
/// blank line) without ever parsing a partial line, enforcing
/// [`MAX_HEAD_BYTES`] and [`MAX_REQUEST_LINE_BYTES`].
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_end) = find_head_end(buf) else {
        // No head terminator yet. Either the peer is slowly streaming a
        // legitimate request (keep waiting) or it is growing without
        // bound (reject now, terminally).
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::TooLarge;
        }
        let line_done = buf.iter().take(MAX_REQUEST_LINE_BYTES).any(|&b| b == b'\n');
        if buf.len() >= MAX_REQUEST_LINE_BYTES && !line_done {
            return Parse::TooLarge;
        }
        return Parse::Incomplete;
    };
    let head = &buf[..head_end];
    if head.len() > MAX_HEAD_BYTES {
        return Parse::TooLarge;
    }
    let line_end = match head.iter().position(|&b| b == b'\n') {
        Some(i) if i > 0 && head[i - 1] == b'\r' => i - 1,
        Some(i) => i,
        None => head.len(),
    };
    if line_end > MAX_REQUEST_LINE_BYTES {
        return Parse::TooLarge;
    }
    let Ok(line) = std::str::from_utf8(&head[..line_end]) else {
        return Parse::Malformed;
    };
    let mut parts = line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Parse::Malformed;
    };
    if method.is_empty() || path.is_empty() {
        return Parse::Malformed;
    }
    Parse::Complete(Request {
        method: method.to_owned(),
        path: path.to_owned(),
    })
}

/// Index just past the `\r\n\r\n` (or lone `\n\n`) ending the header
/// block, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(i + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2)
}

/// Splits a request target into `(path, query)`; the query is empty
/// when there is no `?`.
pub fn split_query(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

/// The value of `key` in an `a=1&b=2` query string, if present.
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|&(k, _)| k == key)
        .map(|(_, v)| v)
}

/// Builds a complete response with the given status line tail
/// (e.g. `200 OK`), content type, and body.
pub fn response(status: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    out.extend_from_slice(body);
    out
}

/// The canned 404 for unknown paths.
pub fn not_found() -> Vec<u8> {
    response("404 Not Found", "text/plain", b"not found\n")
}

/// The canned 405 for non-GET methods on known paths.
pub fn method_not_allowed() -> Vec<u8> {
    response("405 Method Not Allowed", "text/plain", b"GET only\n")
}

/// The canned 400 for request lines we cannot parse.
pub fn bad_request() -> Vec<u8> {
    response("400 Bad Request", "text/plain", b"bad request\n")
}

/// The canned 431 for request lines or heads beyond the fixed bounds.
pub fn header_too_large() -> Vec<u8> {
    response(
        "431 Request Header Fields Too Large",
        "text/plain",
        b"request head too large\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_get() {
        let buf = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
        let Parse::Complete(req) = parse_request(buf) else {
            panic!("expected complete request");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn waits_for_the_full_head_at_every_split_point() {
        // Regression: a request line arriving one byte at a time must
        // stay Incomplete at *every* prefix until the blank line lands,
        // never be parsed from a partial buffer.
        let full = b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 1..full.len() {
            assert_eq!(
                parse_request(&full[..cut]),
                Parse::Incomplete,
                "prefix of {cut} bytes must not parse"
            );
        }
        assert!(matches!(parse_request(full), Parse::Complete(_)));
    }

    #[test]
    fn lf_only_requests_are_accepted() {
        let Parse::Complete(req) = parse_request(b"GET /metrics HTTP/1.0\n\n") else {
            panic!("expected complete request");
        };
        assert_eq!(req.path, "/metrics");
    }

    #[test]
    fn garbage_is_a_parse_error_not_a_panic() {
        assert_eq!(parse_request(b"\xff\xfe\r\n\r\n"), Parse::Malformed);
        assert_eq!(parse_request(b" \r\n\r\n"), Parse::Malformed);
        assert_eq!(parse_request(b"\r\n\r\n"), Parse::Malformed);
    }

    #[test]
    fn unbounded_request_line_is_too_large_not_buffered_forever() {
        // Regression: a request line that never ends must become
        // TooLarge the moment it exceeds the line bound — not sit in
        // Incomplete growing the buffer.
        let line = vec![b'A'; MAX_REQUEST_LINE_BYTES];
        assert_eq!(parse_request(&line), Parse::TooLarge);
        // Just under the bound with no newline: still waiting.
        assert_eq!(
            parse_request(&line[..MAX_REQUEST_LINE_BYTES - 1]),
            Parse::Incomplete
        );
    }

    #[test]
    fn oversized_head_is_too_large() {
        // Endless headers after a fine request line.
        let mut buf = b"GET /health HTTP/1.1\r\n".to_vec();
        while buf.len() <= MAX_HEAD_BYTES {
            buf.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(parse_request(&buf), Parse::TooLarge);
        // A complete head over the bound is also rejected, even with
        // its terminator present.
        buf.extend_from_slice(b"\r\n");
        assert_eq!(parse_request(&buf), Parse::TooLarge);
    }

    #[test]
    fn oversized_request_line_with_terminator_is_too_large() {
        let mut buf = b"GET /".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE_BYTES));
        buf.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse_request(&buf), Parse::TooLarge);
    }

    #[test]
    fn split_query_and_params() {
        assert_eq!(split_query("/v1/x?a=1&b=2"), ("/v1/x", "a=1&b=2"));
        assert_eq!(split_query("/v1/x"), ("/v1/x", ""));
        assert_eq!(query_param("a=1&b=2", "b"), Some("2"));
        assert_eq!(query_param("a=1&b=2", "c"), None);
        assert_eq!(query_param("", "a"), None);
    }

    #[test]
    fn response_has_content_length_and_close() {
        let r = response("200 OK", "application/json", b"{}");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn status_431_is_canned() {
        let text = String::from_utf8(header_too_large()).unwrap();
        assert!(text.starts_with("HTTP/1.1 431 "));
    }
}
