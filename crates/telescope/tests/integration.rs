//! Telescope-crate integration: real captures from the simulated world,
//! consistency between the observer's counters and the pcap re-analysis,
//! and the Ethernet-framed capture path.

use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_netmodel::{Internet, InternetConfig};
use mt_telescope::{PcapSummary, PortRanking, TelescopeDayStats, TelescopeWeekStats};
use mt_traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use mt_types::{Day, Ipv4};
use mt_wire::{ethernet, ipv4, pcap, tcp, IpProtocol};

#[test]
fn observer_counters_agree_with_pcap_reanalysis() {
    let net = Internet::generate(InternetConfig::small(), 42);
    let cfg = TrafficConfig::test_profile();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let mut capture = CaptureSet::new(&net, Day(0), &spoof, DEFAULT_SIZE_THRESHOLD, false);
    // Capture everything: the small TEU2 telescope receives few enough
    // emissions that the pcap holds one representative packet per
    // emission.
    capture.telescopes[2].enable_pcap(u32::MAX);
    generate_day(&net, &cfg, Day(0), &mut capture);
    let teu2 = capture.telescopes.swap_remove(2);
    let day = TelescopeDayStats::from_observer(&teu2, Day(0));
    let bytes = teu2.pcap_bytes().unwrap();
    let summary = PcapSummary::parse(&bytes).unwrap();
    assert_eq!(summary.malformed, 0, "crafted packets must all verify");
    assert!(summary.packets > 20, "packets {}", summary.packets);
    // The pcap holds one packet per captured emission, so its port set
    // is a subset of (and heavily overlaps) the observer's histogram.
    for port in summary.tcp_ports.keys() {
        assert!(
            day.port_counts.contains_key(port),
            "pcap port {port} missing from observer histogram"
        );
    }
    // Average TCP sizes agree loosely (pcap is per-emission, counters
    // are per-packet).
    let pcap_avg = summary.avg_tcp_size().unwrap();
    assert!(pcap_avg > 40.0 && pcap_avg < 60.0, "pcap avg {pcap_avg}");
}

#[test]
fn week_stats_accumulate_across_days() {
    let net = Internet::generate(InternetConfig::small(), 42);
    let cfg = TrafficConfig::test_profile();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    let mut days = Vec::new();
    for day in Day(0).range(3) {
        let mut capture = CaptureSet::new(&net, day, &spoof, DEFAULT_SIZE_THRESHOLD, false);
        generate_day(&net, &cfg, day, &mut capture);
        days.push(TelescopeDayStats::from_observer(
            &capture.telescopes[0],
            day,
        ));
    }
    let week = TelescopeWeekStats::new("TUS1", net.telescopes[0].num_blocks, days.clone());
    // The weekly mean lies between the daily extremes.
    let per_day: Vec<f64> = days.iter().map(TelescopeDayStats::pkts_per_block).collect();
    let mean = week.daily_pkts_per_block();
    let (min, max) = per_day
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(mean >= min && mean <= max);
    // Port histograms merge by addition.
    let merged = week.port_counts();
    let telnet_daily: u64 = days
        .iter()
        .map(|d| d.port_counts.get(&23).copied().unwrap_or(0))
        .sum();
    assert_eq!(merged.get(&23).copied().unwrap_or(0), telnet_daily);
    // Rankings built from the merged histogram are stable.
    let ranking = PortRanking::top_n("TUS1", &merged, 10);
    assert_eq!(ranking.ports()[0], 23);
}

#[test]
fn ethernet_framed_captures_parse_too() {
    // Hand-build an EN10MB pcap: Ethernet II + IPv4 + TCP SYN.
    let src = Ipv4::new(9, 9, 9, 9);
    let dst = Ipv4::new(20, 0, 0, 1);
    let t = tcp::Repr::syn(40_000, 23, 1);
    let ip = ipv4::Repr {
        src,
        dst,
        protocol: IpProtocol::Tcp,
        payload_len: t.buffer_len(),
        ttl: 64,
    };
    let mut frame = vec![0u8; ethernet::HEADER_LEN + ip.buffer_len()];
    {
        let mut eth = ethernet::Frame::new_unchecked(&mut frame[..]);
        eth.set_dst(ethernet::MacAddr([2, 0, 0, 0, 0, 1]));
        eth.set_src(ethernet::MacAddr([2, 0, 0, 0, 0, 2]));
        eth.set_ethertype(ethernet::ETHERTYPE_IPV4);
    }
    {
        let body = &mut frame[ethernet::HEADER_LEN..];
        let mut seg = tcp::Segment::new_unchecked(&mut body[ipv4::HEADER_LEN..]);
        t.emit(&mut seg, src, dst);
        let mut packet = ipv4::Packet::new_unchecked(body);
        ip.emit(&mut packet);
    }
    let mut file = Vec::new();
    {
        let mut w = pcap::Writer::new(&mut file, pcap::LINKTYPE_ETHERNET).unwrap();
        w.write_packet(1, 0, &frame).unwrap();
        // A non-IPv4 frame must be counted malformed, not crash.
        let mut arp = frame.clone();
        ethernet::Frame::new_unchecked(&mut arp[..]).set_ethertype(0x0806);
        w.write_packet(2, 0, &arp).unwrap();
        w.finish().unwrap();
    }
    let summary = PcapSummary::parse(&file).unwrap();
    assert_eq!(summary.packets, 2);
    assert_eq!(summary.tcp_packets, 1);
    assert_eq!(summary.malformed, 1);
    assert_eq!(summary.tcp_ports.get(&23), Some(&1));
}
