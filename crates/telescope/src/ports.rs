//! Top-port extraction and cross-telescope comparison (Table 5).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A ranked top-port list for one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortRanking {
    /// Site label (telescope code or "meta-telescope").
    pub label: String,
    /// `(port, packets)` in descending packet order.
    pub ranked: Vec<(u16, u64)>,
}

impl PortRanking {
    /// Builds the ranking from a port histogram, keeping the top `n`.
    /// Ties break toward the lower port number, which keeps output
    /// stable across runs.
    pub fn top_n(label: &str, counts: &HashMap<u16, u64>, n: usize) -> Self {
        let mut ranked: Vec<(u16, u64)> = counts.iter().map(|(&p, &c)| (p, c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        PortRanking {
            label: label.to_owned(),
            ranked,
        }
    }

    /// Just the port numbers, in rank order.
    pub fn ports(&self) -> Vec<u16> {
        self.ranked.iter().map(|&(p, _)| p).collect()
    }

    /// Rank of a port (1-based), if present. An empty ranking has no
    /// ranks: every port is `None`.
    pub fn rank_of(&self, port: u16) -> Option<usize> {
        self.ranked
            .iter()
            .position(|&(p, _)| p == port)
            .map(|i| i + 1)
    }

    /// Number of ranked ports (at most the `n` given to
    /// [`top_n`](Self::top_n)).
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True for a ranking with no entries — built from an empty
    /// histogram or with `n == 0`.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

/// Number of ports common to two rankings — the paper's "perfect overlap
/// for the top ports" check between telescopes and the meta-telescope.
pub fn port_overlap(a: &PortRanking, b: &PortRanking) -> usize {
    let set: std::collections::HashSet<u16> = a.ports().into_iter().collect();
    b.ports().iter().filter(|p| set.contains(p)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(u16, u64)]) -> HashMap<u16, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn ranking_orders_by_count_then_port() {
        let r = PortRanking::top_n("T", &counts(&[(80, 10), (23, 50), (22, 10), (443, 5)]), 3);
        assert_eq!(r.ports(), vec![23, 22, 80]);
        assert_eq!(r.rank_of(23), Some(1));
        assert_eq!(r.rank_of(443), None);
    }

    #[test]
    fn overlap_counts_shared_ports() {
        let a = PortRanking::top_n("A", &counts(&[(23, 9), (22, 8), (80, 7)]), 3);
        let b = PortRanking::top_n("B", &counts(&[(22, 9), (80, 8), (6379, 7)]), 3);
        assert_eq!(port_overlap(&a, &b), 2);
        assert_eq!(port_overlap(&a, &a), 3);
    }

    #[test]
    fn top_n_truncates() {
        let r = PortRanking::top_n("T", &counts(&[(1, 1), (2, 2), (3, 3)]), 2);
        assert_eq!(r.ranked.len(), 2);
    }

    #[test]
    fn empty_histogram_yields_an_empty_ranking() {
        // Pin the edge cases: no entries, no ranks, no panics.
        let r = PortRanking::top_n("T", &counts(&[]), 10);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.ports(), Vec::<u16>::new());
        assert_eq!(r.rank_of(23), None);
        assert_eq!(r.rank_of(0), None);
    }

    #[test]
    fn top_zero_keeps_nothing_even_with_data() {
        let r = PortRanking::top_n("T", &counts(&[(23, 50), (80, 10)]), 0);
        assert!(r.is_empty());
        assert_eq!(r.rank_of(23), None, "port present in input but n == 0");
    }

    #[test]
    fn overlap_with_empty_rankings_is_zero() {
        let empty = PortRanking::top_n("E", &counts(&[]), 5);
        let full = PortRanking::top_n("F", &counts(&[(23, 9), (22, 8)]), 5);
        assert_eq!(port_overlap(&empty, &full), 0);
        assert_eq!(port_overlap(&full, &empty), 0);
        assert_eq!(port_overlap(&empty, &empty), 0);
    }
}
