//! Re-analysis of telescope pcap exports through the real wire parsers.
//!
//! The paper's Table 5 is computed from raw pcap data; this module does
//! the same against the pcap bytes a `TelescopeObserver` (or any
//! LINKTYPE_RAW / LINKTYPE_ETHERNET capture) produced: every packet is
//! parsed with the checked IPv4/TCP/UDP views, checksums verified, and
//! the per-protocol and per-port statistics rebuilt from the wire.

use mt_wire::{ethernet, ipv4, pcap, tcp, udp, IpProtocol, WireError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary of a parsed capture file.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PcapSummary {
    /// Records in the file.
    pub packets: u64,
    /// Records that failed parsing or checksum verification.
    pub malformed: u64,
    /// TCP packets.
    pub tcp_packets: u64,
    /// Sum of IP total lengths of TCP packets.
    pub tcp_octets: u64,
    /// UDP packets.
    pub udp_packets: u64,
    /// Packets of other protocols.
    pub other_packets: u64,
    /// TCP destination ports.
    pub tcp_ports: HashMap<u16, u64>,
    /// TCP packets that are bare SYNs.
    pub syn_packets: u64,
}

impl PcapSummary {
    /// Parses a pcap byte stream. Returns an error only if the global
    /// header is unusable; malformed records are counted, not fatal.
    pub fn parse(bytes: &[u8]) -> Result<PcapSummary, WireError> {
        let reader = pcap::Reader::new(bytes)?;
        let linktype = reader.linktype();
        let mut s = PcapSummary::default();
        for record in reader.records() {
            let record = match record {
                Ok(r) => r,
                Err(_) => {
                    s.malformed += 1;
                    break; // a torn record ends the stream
                }
            };
            s.packets += 1;
            let ip_bytes: &[u8] = match linktype {
                pcap::LINKTYPE_ETHERNET => match ethernet::Frame::new_checked(&record.data[..]) {
                    Ok(f) if f.ethertype() == ethernet::ETHERTYPE_IPV4 => {
                        &record.data[ethernet::HEADER_LEN..]
                    }
                    _ => {
                        s.malformed += 1;
                        continue;
                    }
                },
                _ => &record.data[..],
            };
            let Ok(packet) = ipv4::Packet::new_checked(ip_bytes) else {
                s.malformed += 1;
                continue;
            };
            if !packet.verify_checksum() {
                s.malformed += 1;
                continue;
            }
            let (src, dst) = (packet.src(), packet.dst());
            match packet.protocol() {
                Some(IpProtocol::Tcp) => {
                    let Ok(seg) = tcp::Segment::new_checked(packet.payload()) else {
                        s.malformed += 1;
                        continue;
                    };
                    if !seg.verify_checksum(src, dst) {
                        s.malformed += 1;
                        continue;
                    }
                    s.tcp_packets += 1;
                    s.tcp_octets += u64::from(packet.total_len());
                    *s.tcp_ports.entry(seg.dst_port()).or_default() += 1;
                    let flags = seg.flags();
                    if flags.contains(tcp::Flags::SYN) && !flags.contains(tcp::Flags::ACK) {
                        s.syn_packets += 1;
                    }
                }
                Some(IpProtocol::Udp) => {
                    let Ok(dg) = udp::Datagram::new_checked(packet.payload()) else {
                        s.malformed += 1;
                        continue;
                    };
                    if !dg.verify_checksum(src, dst) {
                        s.malformed += 1;
                        continue;
                    }
                    s.udp_packets += 1;
                }
                _ => s.other_packets += 1,
            }
        }
        Ok(s)
    }

    /// Average IP packet size of TCP traffic (Table 2's last column, as
    /// recomputed from pcap).
    pub fn avg_tcp_size(&self) -> Option<f64> {
        (self.tcp_packets > 0).then(|| self.tcp_octets as f64 / self.tcp_packets as f64)
    }

    /// Share of bare SYNs among TCP packets (the paper's "at least 93 %
    /// of all TCP packets destined to the telescopes are 40 bytes").
    pub fn syn_share(&self) -> f64 {
        if self.tcp_packets == 0 {
            0.0
        } else {
            self.syn_packets as f64 / self.tcp_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::Ipv4;

    /// Builds a pcap with hand-crafted valid packets.
    fn sample_pcap() -> Vec<u8> {
        let mut file = Vec::new();
        let mut w = pcap::Writer::new(&mut file, pcap::LINKTYPE_RAW).unwrap();
        let src = Ipv4::new(9, 9, 9, 9);
        let dst = Ipv4::new(20, 0, 0, 1);
        // Two bare SYNs to port 23, one to 80.
        for (i, port) in [(0u32, 23u16), (1, 23), (2, 80)] {
            let t = tcp::Repr::syn(40_000 + i as u16, port, i);
            let ip = ipv4::Repr {
                src,
                dst,
                protocol: IpProtocol::Tcp,
                payload_len: t.buffer_len(),
                ttl: 64,
            };
            let mut buf = vec![0u8; ip.buffer_len()];
            let mut seg = tcp::Segment::new_unchecked(&mut buf[ipv4::HEADER_LEN..]);
            t.emit(&mut seg, src, dst);
            let mut packet = ipv4::Packet::new_unchecked(&mut buf);
            ip.emit(&mut packet);
            w.write_packet(100 + i, 0, &buf).unwrap();
        }
        // One UDP packet.
        let u = udp::Repr {
            src_port: 53,
            dst_port: 33_000,
            payload_len: 4,
        };
        let ip = ipv4::Repr {
            src,
            dst,
            protocol: IpProtocol::Udp,
            payload_len: u.buffer_len(),
            ttl: 64,
        };
        let mut buf = vec![0u8; ip.buffer_len()];
        let mut dg = udp::Datagram::new_unchecked(&mut buf[ipv4::HEADER_LEN..]);
        u.emit(&mut dg, src, dst);
        let mut packet = ipv4::Packet::new_unchecked(&mut buf);
        ip.emit(&mut packet);
        w.write_packet(104, 0, &buf).unwrap();
        w.finish().unwrap();
        file
    }

    #[test]
    fn parses_valid_capture() {
        let s = PcapSummary::parse(&sample_pcap()).unwrap();
        assert_eq!(s.packets, 4);
        assert_eq!(s.malformed, 0);
        assert_eq!(s.tcp_packets, 3);
        assert_eq!(s.udp_packets, 1);
        assert_eq!(s.tcp_ports[&23], 2);
        assert_eq!(s.tcp_ports[&80], 1);
        assert_eq!(s.syn_packets, 3);
        assert_eq!(s.avg_tcp_size(), Some(40.0));
        assert_eq!(s.syn_share(), 1.0);
    }

    #[test]
    fn corrupted_packet_is_counted_not_fatal() {
        let mut bytes = sample_pcap();
        // Flip a byte in the first packet's TCP header (inside the body,
        // after the 24-byte global header and 16-byte record header).
        bytes[24 + 16 + 25] ^= 0xff;
        let s = PcapSummary::parse(&bytes).unwrap();
        assert_eq!(s.packets, 4);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.tcp_packets, 2);
    }

    #[test]
    fn garbage_header_is_an_error() {
        assert!(PcapSummary::parse(&[0u8; 30]).is_err());
    }

    #[test]
    fn empty_capture_is_fine() {
        let mut file = Vec::new();
        pcap::Writer::new(&mut file, pcap::LINKTYPE_RAW)
            .unwrap()
            .finish()
            .unwrap();
        let s = PcapSummary::parse(&file).unwrap();
        assert_eq!(s.packets, 0);
    }
}
