//! Operational-telescope analysis.
//!
//! The capture itself happens in `mt_traffic::observer::TelescopeObserver`
//! (it has to sit on the emission stream); this crate turns captures into
//! the paper's reporting artifacts:
//!
//! - [`stats`] — per-day and per-week statistics (Table 2: daily packets
//!   per /24, TCP share, average TCP packet size);
//! - [`ports`] — top-port extraction and cross-site comparison
//!   (Table 5);
//! - [`pcap_analysis`] — re-analysis of exported pcap bytes through the
//!   real wire parsers, mirroring the paper's "analyzing raw PCAP data
//!   collected from the three telescopes".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pcap_analysis;
pub mod ports;
pub mod stats;

pub use pcap_analysis::PcapSummary;
pub use ports::{port_overlap, PortRanking};
pub use stats::{TelescopeDayStats, TelescopeWeekStats};
