//! Telescope capture statistics (Table 2).

use mt_traffic::TelescopeObserver;
use mt_types::Day;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One telescope-day of capture statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelescopeDayStats {
    /// Telescope code.
    pub code: String,
    /// The simulated day.
    pub day: Day,
    /// /24 blocks that were dark (capturing) that day.
    pub dark_blocks: u64,
    /// Total packets captured.
    pub total_packets: u64,
    /// TCP packets captured.
    pub tcp_packets: u64,
    /// TCP octets captured.
    pub tcp_octets: u64,
    /// UDP packets captured.
    pub udp_packets: u64,
    /// TCP destination-port histogram.
    pub port_counts: HashMap<u16, u64>,
}

impl TelescopeDayStats {
    /// Extracts the day's statistics from a finished observer.
    pub fn from_observer(obs: &TelescopeObserver<'_>, day: Day) -> Self {
        TelescopeDayStats {
            code: obs.telescope.code.clone(),
            day,
            dark_blocks: obs.per_block_packets.len().max(1) as u64,
            total_packets: obs.total_packets(),
            tcp_packets: obs.tcp_packets,
            tcp_octets: obs.tcp_octets,
            udp_packets: obs.udp_packets,
            port_counts: obs.port_counts.clone(),
        }
    }

    /// Average packets per dark /24 this day.
    pub fn pkts_per_block(&self) -> f64 {
        self.total_packets as f64 / self.dark_blocks.max(1) as f64
    }

    /// TCP share of the capture.
    pub fn tcp_share(&self) -> f64 {
        if self.total_packets == 0 {
            0.0
        } else {
            self.tcp_packets as f64 / self.total_packets as f64
        }
    }
}

/// A week (or any window) of telescope statistics — one Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelescopeWeekStats {
    /// Telescope code.
    pub code: String,
    /// Nominal size of the telescope in /24s.
    pub size_blocks: u32,
    /// The aggregated days.
    pub days: Vec<TelescopeDayStats>,
}

impl TelescopeWeekStats {
    /// Builds the window row from per-day stats.
    pub fn new(code: &str, size_blocks: u32, days: Vec<TelescopeDayStats>) -> Self {
        assert!(!days.is_empty(), "need at least one day");
        assert!(days.iter().all(|d| d.code == code));
        TelescopeWeekStats {
            code: code.to_owned(),
            size_blocks,
            days,
        }
    }

    /// Mean daily packets per /24 (Table 2's "Daily /24 pkt count").
    pub fn daily_pkts_per_block(&self) -> f64 {
        self.days.iter().map(|d| d.pkts_per_block()).sum::<f64>() / self.days.len() as f64
    }

    /// TCP share over the window.
    pub fn tcp_share(&self) -> f64 {
        let total: u64 = self.days.iter().map(|d| d.total_packets).sum();
        let tcp: u64 = self.days.iter().map(|d| d.tcp_packets).sum();
        if total == 0 {
            0.0
        } else {
            tcp as f64 / total as f64
        }
    }

    /// Average TCP packet size over the window (Table 2's last column).
    pub fn avg_tcp_size(&self) -> Option<f64> {
        let pkts: u64 = self.days.iter().map(|d| d.tcp_packets).sum();
        let octets: u64 = self.days.iter().map(|d| d.tcp_octets).sum();
        (pkts > 0).then(|| octets as f64 / pkts as f64)
    }

    /// Merged TCP port histogram over the window.
    pub fn port_counts(&self) -> HashMap<u16, u64> {
        let mut out: HashMap<u16, u64> = HashMap::new();
        for d in &self.days {
            for (&p, &c) in &d.port_counts {
                *out.entry(p).or_default() += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(code: &str, day_no: u32, total: u64, tcp: u64, tcp_octets: u64) -> TelescopeDayStats {
        TelescopeDayStats {
            code: code.to_owned(),
            day: Day(day_no),
            dark_blocks: 10,
            total_packets: total,
            tcp_packets: tcp,
            tcp_octets,
            udp_packets: total - tcp,
            port_counts: HashMap::from([(23, tcp / 2), (80, tcp / 4)]),
        }
    }

    #[test]
    fn day_rates() {
        let d = day("T", 0, 1_000, 900, 900 * 41);
        assert!((d.pkts_per_block() - 100.0).abs() < 1e-12);
        assert!((d.tcp_share() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn week_aggregates() {
        let days = vec![
            day("T", 0, 1_000, 900, 900 * 41),
            day("T", 1, 2_000, 1_900, 1_900 * 42),
        ];
        let w = TelescopeWeekStats::new("T", 10, days);
        assert!((w.daily_pkts_per_block() - 150.0).abs() < 1e-12);
        assert!((w.tcp_share() - 2_800.0 / 3_000.0).abs() < 1e-12);
        let avg = w.avg_tcp_size().unwrap();
        assert!(avg > 41.0 && avg < 42.0, "weighted avg {avg}");
        assert_eq!(w.port_counts()[&23], 450 + 950);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn empty_week_rejected() {
        TelescopeWeekStats::new("T", 10, Vec::new());
    }

    #[test]
    #[should_panic]
    fn mismatched_codes_rejected() {
        TelescopeWeekStats::new("T", 10, vec![day("OTHER", 0, 1, 1, 41)]);
    }
}
