//! The RFC 6890 special-purpose IPv4 address registry.
//!
//! Pipeline step 4 ("Private / Multicast / Reserved") removes any /24 block
//! that falls inside special-purpose space: a telescope prefix must be
//! reachable from the public Internet. This module hard-codes the registry
//! and answers containment queries for both addresses and whole /24 blocks.

use crate::block::Block24;
use crate::ipv4::Ipv4;
use crate::prefix::Prefix;
use crate::trie::PrefixTrie;

/// Why a range is special (summarised from RFC 6890 and successors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialUse {
    /// "This network" (0.0.0.0/8).
    ThisNetwork,
    /// RFC 1918 private space.
    Private,
    /// Shared address space for CGN (100.64.0.0/10, RFC 6598).
    SharedCgn,
    /// Loopback (127.0.0.0/8).
    Loopback,
    /// Link-local (169.254.0.0/16).
    LinkLocal,
    /// IETF protocol assignments (192.0.0.0/24).
    IetfProtocol,
    /// Documentation ranges (TEST-NET-1/2/3).
    Documentation,
    /// Benchmarking (198.18.0.0/15).
    Benchmarking,
    /// Multicast (224.0.0.0/4).
    Multicast,
    /// Reserved for future use (240.0.0.0/4).
    Reserved,
    /// Limited broadcast (255.255.255.255/32).
    LimitedBroadcast,
    /// 6to4 relay anycast (192.88.99.0/24).
    SixToFourRelay,
}

/// The list of `(prefix, use)` entries making up the registry.
pub const SPECIAL_RANGES: &[(&str, SpecialUse)] = &[
    ("0.0.0.0/8", SpecialUse::ThisNetwork),
    ("10.0.0.0/8", SpecialUse::Private),
    ("100.64.0.0/10", SpecialUse::SharedCgn),
    ("127.0.0.0/8", SpecialUse::Loopback),
    ("169.254.0.0/16", SpecialUse::LinkLocal),
    ("172.16.0.0/12", SpecialUse::Private),
    ("192.0.0.0/24", SpecialUse::IetfProtocol),
    ("192.0.2.0/24", SpecialUse::Documentation),
    ("192.88.99.0/24", SpecialUse::SixToFourRelay),
    ("192.168.0.0/16", SpecialUse::Private),
    ("198.18.0.0/15", SpecialUse::Benchmarking),
    ("198.51.100.0/24", SpecialUse::Documentation),
    ("203.0.113.0/24", SpecialUse::Documentation),
    ("224.0.0.0/4", SpecialUse::Multicast),
    ("240.0.0.0/4", SpecialUse::Reserved),
    ("255.255.255.255/32", SpecialUse::LimitedBroadcast),
];

/// Pre-built lookup structure over [`SPECIAL_RANGES`].
#[derive(Debug, Clone)]
pub struct SpecialRegistry {
    trie: PrefixTrie<SpecialUse>,
}

impl Default for SpecialRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl SpecialRegistry {
    /// Builds the registry from the static table.
    pub fn new() -> Self {
        let trie = SPECIAL_RANGES
            .iter()
            // check: allow(no_panic, "SPECIAL_RANGES is a static table validated by the tests below; a typo should fail loudly at startup")
            .map(|&(s, u)| (s.parse::<Prefix>().expect("static table parses"), u))
            .collect();
        SpecialRegistry { trie }
    }

    /// Returns the special use of `addr`, if any.
    pub fn classify(&self, addr: Ipv4) -> Option<SpecialUse> {
        self.trie.lookup(addr).map(|(_, &u)| u)
    }

    /// Whether `addr` is inside any special-purpose range.
    pub fn is_special(&self, addr: Ipv4) -> bool {
        self.classify(addr).is_some()
    }

    /// Whether any address of `block` is inside a special-purpose range.
    ///
    /// All registry entries are /24 or shorter except the limited-broadcast
    /// /32, so checking the block base and last address suffices.
    pub fn is_special_block(&self, block: Block24) -> bool {
        self.is_special(block.base()) || self.is_special(block.last())
    }

    /// The registry entries as parsed prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = (Prefix, SpecialUse)> + '_ {
        self.trie.iter().map(|(p, &u)| (p, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn classifies_private_space() {
        let r = SpecialRegistry::new();
        assert_eq!(r.classify(a("10.1.2.3")), Some(SpecialUse::Private));
        assert_eq!(r.classify(a("172.16.0.1")), Some(SpecialUse::Private));
        assert_eq!(r.classify(a("172.32.0.1")), None);
        assert_eq!(r.classify(a("192.168.255.255")), Some(SpecialUse::Private));
    }

    #[test]
    fn classifies_multicast_and_reserved() {
        let r = SpecialRegistry::new();
        assert_eq!(r.classify(a("224.0.0.1")), Some(SpecialUse::Multicast));
        assert_eq!(
            r.classify(a("239.255.255.255")),
            Some(SpecialUse::Multicast)
        );
        assert_eq!(r.classify(a("240.0.0.1")), Some(SpecialUse::Reserved));
        assert_eq!(
            r.classify(Ipv4::BROADCAST),
            Some(SpecialUse::LimitedBroadcast)
        );
    }

    #[test]
    fn public_space_is_not_special() {
        let r = SpecialRegistry::new();
        for s in [
            "8.8.8.8",
            "1.1.1.1",
            "100.0.0.1",
            "100.128.0.1",
            "223.255.255.255",
        ] {
            assert_eq!(r.classify(a(s)), None, "{s} should be public");
        }
    }

    #[test]
    fn block_query_catches_broadcast_tail() {
        let r = SpecialRegistry::new();
        // 255.255.255.0/24 contains the /32 limited broadcast at its end.
        let b = Block24::containing(a("255.255.255.0"));
        assert!(r.is_special_block(b));
        let public = Block24::containing(a("8.8.8.0"));
        assert!(!r.is_special_block(public));
    }

    #[test]
    fn registry_has_all_static_entries() {
        let r = SpecialRegistry::new();
        assert_eq!(r.prefixes().count(), SPECIAL_RANGES.len());
    }
}
