//! Core network types shared by every crate in the meta-telescope workspace.
//!
//! This crate is deliberately dependency-light and purely computational: it
//! defines the vocabulary the rest of the system speaks — IPv4 addresses,
//! /24 blocks (the granularity at which the paper's inference pipeline
//! operates), CIDR prefixes, a longest-prefix-match trie used for routing
//! tables and prefix-to-AS mappings, dense sets of /24 blocks, the RFC 6890
//! special-purpose address registry, Hilbert-curve address-space mapping
//! (used to render the paper's Figures 3, 5 and 6), and the geographic /
//! network-type taxonomies used by the analyses in Sections 6 and 8.
//!
//! Everything here is `Copy`-friendly, allocation-conscious and fully
//! deterministic; there is no I/O and no randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod fxhash;
pub mod geo;
pub mod hilbert;
pub mod ipv4;
pub mod mix;
pub mod prefix;
pub mod rib_index;
pub mod slots;
pub mod special;
pub mod time;
pub mod trie;

pub use block::{Block24, Block24Set, NUM_BLOCKS};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use geo::{Continent, Country, NetworkType};
pub use hilbert::HilbertCurve;
pub use ipv4::Ipv4;
pub use prefix::{Prefix, PrefixParseError};
pub use rib_index::RibIndex;
pub use slots::Slot24Index;
pub use special::SpecialRegistry;
pub use time::{Day, SimDuration, SimTime, Weekday};
pub use trie::{Covering, PrefixTrie};

/// An Autonomous System Number.
///
/// Plain 32-bit ASN as used in BGP; the synthetic Internet model allocates
/// these densely starting at 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Asn(pub u32);

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Identifier of an organization operating one or more ASes.
///
/// Mirrors CAIDA's AS-to-Organization mapping: several ASNs may map to one
/// `OrgId`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct OrgId(pub u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display() {
        assert_eq!(Asn(64512).to_string(), "AS64512");
    }

    #[test]
    fn asn_ordering_follows_number() {
        assert!(Asn(1) < Asn(2));
        assert_eq!(Asn(7), Asn(7));
    }
}
