//! A fast, non-cryptographic hasher for well-mixed integer keys.
//!
//! The workspace's hot maps are keyed by `/24` block indices — plain
//! `u32`s that are already well distributed across the address space.
//! `std`'s default SipHash buys DoS resistance we do not need (keys come
//! from our own deterministic pipeline, not an adversary) at several
//! times the cost per probe. This module hand-rolls the multiply-rotate
//! scheme popularized by the Rust compiler's `FxHasher`: fold each word
//! into the state with a rotate, an XOR and a multiplication by a
//! 64-bit constant derived from the golden ratio.
//!
//! No crates.io dependency is involved; the whole implementation is a
//! few dozen lines and pinned by tests below.

// check: allow(hash_policy, "definition site: the Fx aliases below wrap these std types with the fast hasher")
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Multiplier used to mix each word into the state: `2^64 / φ`, the
/// same constant `rustc`'s hasher uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rotate distance applied before each mix step.
const ROTATE: u32 = 5;

/// A fast multiply-rotate [`Hasher`] for trusted, well-mixed keys.
///
/// Not DoS-resistant — never expose it to attacker-chosen keys. For the
/// deterministic `/24`-keyed maps in this workspace that trade-off is
/// free speed.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        // Fold the length in so prefixes of each other hash differently.
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// [`BuildHasher`] producing [`FxHasher`]s; plugs into `HashMap`.
///
/// Zero-sized and deterministic: the same keys always land in the same
/// buckets, run to run — which also means iteration order is stable for
/// a given insertion sequence (though still unspecified; results that
/// must be ordered are sorted explicitly elsewhere).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxBuildHasher`] — the workspace's hot-path map.
// check: allow(hash_policy, "definition site of the sanctioned alias")
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxBuildHasher`].
// check: allow(hash_policy, "definition site of the sanctioned alias")
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        for key in [0u32, 1, 42, 0xdead_beef, u32::MAX] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        // 10k sequential u32 keys (the worst case for a weak mixer)
        // must produce 10k distinct hashes.
        let hashes: HashSet<u64> = (0u32..10_000).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn sequential_keys_spread_across_buckets() {
        // Check the low bits actually vary: map sequential keys into 256
        // buckets and require every bucket to be hit. A mixer that left
        // low bits untouched would concentrate them.
        let mut buckets = [0u32; 256];
        for k in 0u32..10_000 {
            buckets[(hash_of(&k) & 0xff) as usize] += 1;
        }
        assert!(
            buckets.iter().all(|&c| c > 0),
            "some bucket never hit: {buckets:?}"
        );
    }

    #[test]
    fn prefix_inputs_hash_differently() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn hashmap_roundtrip() {
        let mut m: FxHashMap<u32, u64> = FxHashMap::default();
        for k in 0u32..1000 {
            *m.entry(k % 100).or_insert(0) += u64::from(k);
        }
        assert_eq!(m.len(), 100);
        let total: u64 = m.values().sum();
        assert_eq!(total, (0u64..1000).sum());
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }
}
