//! A compact IPv4 address type backed by a `u32`.
//!
//! The simulation and pipeline manipulate hundreds of millions of addresses;
//! we want a type with the exact memory layout of the wire representation,
//! cheap ordering and arithmetic, and dotted-quad formatting. It converts
//! losslessly to and from [`std::net::Ipv4Addr`].

use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored in host byte order.
///
/// Ordering is numeric, which matches the natural ordering of address space
/// (and of dotted-quad strings when zero-padded).
///
/// ```
/// use mt_types::Ipv4;
/// let a: Ipv4 = "198.51.100.7".parse().unwrap();
/// assert_eq!(a, Ipv4::new(198, 51, 100, 7));
/// assert_eq!(a.block24_index(), (198 << 16) | (51 << 8) | 100);
/// assert_eq!(a.to_string(), "198.51.100.7");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4 = Ipv4(0);
    /// The limited-broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4 = Ipv4(u32::MAX);

    /// Builds an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets in network (big-endian) order.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Builds an address from network-order bytes.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ipv4(u32::from_be_bytes(o))
    }

    /// The /24 block this address belongs to, as a dense index in `0..2^24`.
    pub const fn block24_index(self) -> u32 {
        self.0 >> 8
    }

    /// The host part within the address's /24 block (`0..=255`).
    pub const fn host_in_block24(self) -> u8 {
        (self.0 & 0xff) as u8
    }

    /// Address obtained by keeping the top `len` bits and zeroing the rest.
    ///
    /// `len` must be in `0..=32`; `len == 0` yields `0.0.0.0`.
    pub const fn mask(self, len: u8) -> Ipv4 {
        debug_assert!(len <= 32);
        if len == 0 {
            Ipv4(0)
        } else {
            Ipv4(self.0 & (u32::MAX << (32 - len)))
        }
    }

    /// Saturating successor; `255.255.255.255` maps to itself.
    pub const fn saturating_next(self) -> Ipv4 {
        Ipv4(self.0.saturating_add(1))
    }

    /// Checked addition of a host offset.
    pub const fn checked_add(self, n: u32) -> Option<Ipv4> {
        match self.0.checked_add(n) {
            Some(v) => Some(Ipv4(v)),
            None => None,
        }
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4({self})")
    }
}

impl From<std::net::Ipv4Addr> for Ipv4 {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Ipv4::from_octets(a.octets())
    }
}

impl From<Ipv4> for std::net::Ipv4Addr {
    fn from(a: Ipv4) -> Self {
        std::net::Ipv4Addr::from(a.octets())
    }
}

/// Error returned when parsing a dotted-quad string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrParseError(pub(crate) String);

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {:?}", self.0)
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4 {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| AddrParseError(s.to_owned()))?;
            // Reject empty parts and leading '+' which u8::from_str accepts.
            if part.is_empty() || part.starts_with('+') {
                return Err(AddrParseError(s.to_owned()));
            }
            *slot = part.parse().map_err(|_| AddrParseError(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError(s.to_owned()));
        }
        Ok(Ipv4::from_octets(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_octets_roundtrip() {
        let a = Ipv4::new(192, 0, 2, 17);
        assert_eq!(a.octets(), [192, 0, 2, 17]);
        assert_eq!(Ipv4::from_octets(a.octets()), a);
        assert_eq!(a.to_string(), "192.0.2.17");
    }

    #[test]
    fn block24_index_and_host() {
        let a = Ipv4::new(10, 1, 2, 3);
        assert_eq!(a.block24_index(), (10 << 16) | (1 << 8) | 2);
        assert_eq!(a.host_in_block24(), 3);
    }

    #[test]
    fn masking() {
        let a = Ipv4::new(203, 0, 113, 200);
        assert_eq!(a.mask(24), Ipv4::new(203, 0, 113, 0));
        assert_eq!(a.mask(8), Ipv4::new(203, 0, 0, 0));
        assert_eq!(a.mask(32), a);
        assert_eq!(a.mask(0), Ipv4::UNSPECIFIED);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ipv4::new(1, 0, 0, 0) < Ipv4::new(2, 0, 0, 0));
        assert!(Ipv4::new(10, 0, 0, 255) < Ipv4::new(10, 0, 1, 0));
    }

    #[test]
    fn parse_valid() {
        assert_eq!("0.0.0.0".parse::<Ipv4>().unwrap(), Ipv4::UNSPECIFIED);
        assert_eq!("255.255.255.255".parse::<Ipv4>().unwrap(), Ipv4::BROADCAST);
        assert_eq!(
            "198.51.100.7".parse::<Ipv4>().unwrap(),
            Ipv4::new(198, 51, 100, 7)
        );
    }

    #[test]
    fn parse_invalid() {
        for bad in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "a.b.c.d",
            "1..2.3",
            "+1.2.3.4",
        ] {
            assert!(bad.parse::<Ipv4>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn std_conversion_roundtrip() {
        let a = Ipv4::new(172, 16, 254, 1);
        let std: std::net::Ipv4Addr = a.into();
        assert_eq!(Ipv4::from(std), a);
    }

    #[test]
    fn saturating_next_at_end_of_space() {
        assert_eq!(Ipv4::BROADCAST.saturating_next(), Ipv4::BROADCAST);
        assert_eq!(
            Ipv4::new(1, 2, 3, 255).saturating_next(),
            Ipv4::new(1, 2, 4, 0)
        );
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Ipv4::BROADCAST.checked_add(1), None);
        assert_eq!(
            Ipv4::new(0, 0, 0, 1).checked_add(255),
            Some(Ipv4::new(0, 0, 1, 0))
        );
    }
}
