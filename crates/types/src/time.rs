//! Simulated time.
//!
//! Nothing in the workspace reads the wall clock: the simulation advances
//! an explicit [`SimTime`] (seconds since the simulation epoch) so every
//! run is exactly reproducible. The epoch is defined to fall on a Monday
//! at 00:00 so diurnal and weekend effects (Section 7.1 observes more
//! inferable prefixes on weekends) are easy to reason about.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in a day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A point in simulated time: seconds since the simulation epoch
/// (Monday 00:00).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of simulated time in seconds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// A duration of `n` seconds.
    pub const fn secs(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration of `n` hours.
    pub const fn hours(n: u64) -> Self {
        SimDuration(n * 3600)
    }

    /// A duration of `n` days.
    pub const fn days(n: u64) -> Self {
        SimDuration(n * SECS_PER_DAY)
    }

    /// The duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }
}

impl SimTime {
    /// The simulation epoch (Monday 00:00).
    pub const EPOCH: SimTime = SimTime(0);

    /// The day this instant falls in.
    pub const fn day(self) -> Day {
        Day((self.0 / SECS_PER_DAY) as u32)
    }

    /// Seconds elapsed since the start of the day (`0..86400`).
    pub const fn second_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// Hour of day as a fraction in `[0, 24)`.
    pub fn hour_of_day(self) -> f64 {
        self.second_of_day() as f64 / 3600.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day().0;
        let s = self.second_of_day();
        write!(
            f,
            "day {} {:02}:{:02}:{:02}",
            day,
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }
}

/// A simulated calendar day, counted from the epoch (day 0 is a Monday).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
#[serde(transparent)]
pub struct Day(pub u32);

/// Day of week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weekday {
    /// Monday.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday.
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
    /// Sunday.
    Sunday,
}

impl Day {
    /// The instant the day starts.
    pub const fn start(self) -> SimTime {
        SimTime(self.0 as u64 * SECS_PER_DAY)
    }

    /// The instant the day ends (start of the next day).
    pub const fn end(self) -> SimTime {
        SimTime((self.0 as u64 + 1) * SECS_PER_DAY)
    }

    /// The next day.
    pub const fn next(self) -> Day {
        Day(self.0 + 1)
    }

    /// Day of week (day 0 is a Monday).
    pub const fn weekday(self) -> Weekday {
        match self.0 % 7 {
            0 => Weekday::Monday,
            1 => Weekday::Tuesday,
            2 => Weekday::Wednesday,
            3 => Weekday::Thursday,
            4 => Weekday::Friday,
            5 => Weekday::Saturday,
            _ => Weekday::Sunday,
        }
    }

    /// Whether this day is Saturday or Sunday.
    pub const fn is_weekend(self) -> bool {
        matches!(self.weekday(), Weekday::Saturday | Weekday::Sunday)
    }

    /// Iterates `count` days starting from this one.
    pub fn range(self, count: u32) -> impl Iterator<Item = Day> {
        (self.0..self.0 + count).map(Day)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_boundaries() {
        let d = Day(3);
        assert_eq!(d.start(), SimTime(3 * SECS_PER_DAY));
        assert_eq!(d.end(), Day(4).start());
        assert_eq!(d.start().day(), d);
        assert_eq!(SimTime(d.end().0 - 1).day(), d);
    }

    #[test]
    fn weekday_cycle() {
        assert_eq!(Day(0).weekday(), Weekday::Monday);
        assert_eq!(Day(5).weekday(), Weekday::Saturday);
        assert_eq!(Day(6).weekday(), Weekday::Sunday);
        assert_eq!(Day(7).weekday(), Weekday::Monday);
        assert!(Day(5).is_weekend());
        assert!(Day(6).is_weekend());
        assert!(!Day(4).is_weekend());
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::EPOCH + SimDuration::hours(25);
        assert_eq!(t.day(), Day(1));
        assert_eq!(t.second_of_day(), 3600);
        assert_eq!(t - SimTime::EPOCH, SimDuration::hours(25));
        assert!((t.hour_of_day() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let t = SimTime(SECS_PER_DAY + 3661);
        assert_eq!(t.to_string(), "day 1 01:01:01");
    }

    #[test]
    fn day_range() {
        let days: Vec<Day> = Day(2).range(3).collect();
        assert_eq!(days, vec![Day(2), Day(3), Day(4)]);
    }
}
