//! Geographic and network-type taxonomies.
//!
//! Sections 6 and 8 of the paper break inferred meta-telescope prefixes
//! down by country, continent ("world region") and network type (the
//! IPInfo business categories). The synthetic Internet model assigns these
//! attributes to ASes; this module provides the shared types plus a table
//! of real ISO 3166 country codes with their continents so generated data
//! looks like (and prints like) real measurement output.

use std::fmt;

/// World regions as used in the paper's figures (including the
/// "International" bucket for prefixes that map to several regions).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Continent {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
    /// Prefixes spanning several regions (paper's "INT" row).
    International,
}

impl Continent {
    /// All continents in the display order used by the paper's tables.
    pub const ALL: [Continent; 7] = [
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Europe,
        Continent::Asia,
        Continent::Africa,
        Continent::Oceania,
        Continent::International,
    ];

    /// This continent's position in [`Continent::ALL`] (the row index
    /// in the paper's tables). The declaration order matches `ALL`, so
    /// this is a cast, not a search — pinned by a test below.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Two-letter abbreviation as used in the paper's figures.
    pub const fn abbrev(self) -> &'static str {
        match self {
            Continent::NorthAmerica => "NA",
            Continent::SouthAmerica => "SA",
            Continent::Europe => "EU",
            Continent::Asia => "AS",
            Continent::Africa => "AF",
            Continent::Oceania => "OC",
            Continent::International => "INT",
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A country, stored as its two-letter ISO 3166-1 alpha-2 code.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Country(pub [u8; 2]);

impl Country {
    /// Builds a country from its two-letter code.
    ///
    /// Accepts lowercase; stores uppercase. Panics if the string is not
    /// exactly two ASCII letters — country codes come from static tables.
    pub fn new(code: &str) -> Self {
        let b = code.as_bytes();
        assert!(
            b.len() == 2 && b.iter().all(|c| c.is_ascii_alphabetic()),
            "invalid country code {code:?}"
        );
        Country([b[0].to_ascii_uppercase(), b[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // check: allow(no_panic, "Country::new rejects anything but two ASCII letters, so the bytes are valid UTF-8")
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Country({})", self.as_str())
    }
}

/// Business category of the AS hosting a prefix (IPInfo's taxonomy as used
/// in the paper's Table 7 and Figures 12/16/19/20).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum NetworkType {
    /// Eyeball / access networks.
    Isp,
    /// Corporate networks.
    Enterprise,
    /// Universities and research networks.
    Education,
    /// Hosting and cloud providers.
    DataCenter,
}

impl NetworkType {
    /// All types in the paper's column order.
    pub const ALL: [NetworkType; 4] = [
        NetworkType::Isp,
        NetworkType::Enterprise,
        NetworkType::Education,
        NetworkType::DataCenter,
    ];

    /// This type's position in [`NetworkType::ALL`] (the column index
    /// in the paper's tables). The declaration order matches `ALL`, so
    /// this is a cast, not a search — pinned by a test below.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Human-readable label matching the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            NetworkType::Isp => "ISP",
            NetworkType::Enterprise => "Enterprise",
            NetworkType::Education => "Education",
            NetworkType::DataCenter => "Data Center",
        }
    }
}

impl fmt::Display for NetworkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Real ISO country codes grouped by continent, used by the synthetic
/// Internet model to draw plausible country assignments. The counts per
/// continent roughly track the number of economies with routed address
/// space in each region.
pub const COUNTRIES_BY_CONTINENT: &[(Continent, &[&str])] = &[
    (
        Continent::NorthAmerica,
        &[
            "US", "CA", "MX", "GT", "CU", "DO", "HN", "PA", "CR", "JM", "TT", "BS",
        ],
    ),
    (
        Continent::SouthAmerica,
        &[
            "BR", "AR", "CO", "CL", "PE", "VE", "EC", "BO", "PY", "UY", "GY", "SR",
        ],
    ),
    (
        Continent::Europe,
        &[
            "DE", "GB", "FR", "NL", "IT", "ES", "PL", "SE", "CH", "AT", "BE", "CZ", "RO", "PT",
            "GR", "HU", "DK", "FI", "NO", "IE", "BG", "SK", "HR", "LT", "LV", "EE", "SI", "UA",
            "RS", "IS",
        ],
    ),
    (
        Continent::Asia,
        &[
            "CN", "JP", "IN", "KR", "ID", "TR", "SA", "TH", "VN", "MY", "SG", "PH", "PK", "BD",
            "IL", "AE", "HK", "TW", "IR", "IQ", "KZ", "QA", "JO", "LK", "NP", "KH", "MM", "MN",
        ],
    ),
    (
        Continent::Africa,
        &[
            "ZA", "NG", "EG", "KE", "MA", "GH", "TN", "DZ", "TZ", "UG", "CM", "CI", "SN", "ZM",
            "ZW", "MZ", "AO", "ET", "RW", "MU",
        ],
    ),
    (
        Continent::Oceania,
        &["AU", "NZ", "FJ", "PG", "NC", "PF", "WS", "TO"],
    ),
];

/// Looks up the continent of a country code from the static table.
pub fn continent_of(country: Country) -> Option<Continent> {
    COUNTRIES_BY_CONTINENT.iter().find_map(|(cont, codes)| {
        codes
            .iter()
            .any(|c| Country::new(c) == country)
            .then_some(*cont)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_normalisation() {
        assert_eq!(Country::new("de"), Country::new("DE"));
        assert_eq!(Country::new("us").to_string(), "US");
    }

    #[test]
    #[should_panic(expected = "invalid country code")]
    fn country_rejects_bad_code() {
        Country::new("USA");
    }

    #[test]
    fn continent_lookup() {
        assert_eq!(
            continent_of(Country::new("US")),
            Some(Continent::NorthAmerica)
        );
        assert_eq!(continent_of(Country::new("CN")), Some(Continent::Asia));
        assert_eq!(continent_of(Country::new("NG")), Some(Continent::Africa));
        assert_eq!(continent_of(Country::new("XX")), None);
    }

    #[test]
    fn table_has_no_duplicate_codes() {
        let mut seen = std::collections::HashSet::new();
        for (_, codes) in COUNTRIES_BY_CONTINENT {
            for c in *codes {
                assert!(seen.insert(*c), "duplicate country {c}");
            }
        }
        assert!(seen.len() > 100, "expect a reasonably rich country table");
    }

    #[test]
    fn continent_abbrevs_match_paper() {
        assert_eq!(Continent::NorthAmerica.abbrev(), "NA");
        assert_eq!(Continent::International.abbrev(), "INT");
        assert_eq!(Continent::ALL.len(), 7);
    }

    #[test]
    fn network_type_labels() {
        assert_eq!(NetworkType::DataCenter.label(), "Data Center");
        assert_eq!(NetworkType::ALL.len(), 4);
    }

    #[test]
    fn index_agrees_with_all_order() {
        for (i, c) in Continent::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} out of place in Continent::ALL");
        }
        for (i, t) in NetworkType::ALL.into_iter().enumerate() {
            assert_eq!(t.index(), i, "{t:?} out of place in NetworkType::ALL");
        }
    }
}
