//! A flat, immutable longest-prefix-match index compiled from a trie.
//!
//! [`PrefixTrie::lookup`] walks up to 32 heap nodes per query — fine for
//! one-off lookups, but the pipeline asks the same RIB millions of
//! questions per window. [`RibIndex`] trades a one-time compile for
//! cache-friendly queries: the trie's (possibly overlapping) prefixes
//! are resolved into sorted, *disjoint* `(start, end, value)` intervals
//! where the most specific covering prefix wins on every address, and a
//! 256-way first-octet bucket table narrows each query to a short
//! binary search over contiguous arrays.
//!
//! The index answers exactly what the trie answers: `lookup(addr)`
//! returns the same `(Prefix, &V)` as `PrefixTrie::lookup(addr)` for
//! every address (asserted by proptests in `tests/properties.rs`). For
//! RIBs whose prefixes are all `/24` or shorter, every resolved
//! interval is /24-aligned, and [`RibIndex::lookup24`] answers the
//! pipeline's per-block queries with a single probe.
//!
//! The index is a snapshot: it does not track later trie mutations.
//! RIBs in this workspace are per-day snapshots rebuilt on churn, so
//! consumers compile once per (window, RIB) and query from there.

use crate::block::Block24;
use crate::ipv4::Ipv4;
use crate::prefix::Prefix;
use crate::trie::PrefixTrie;

/// A flat longest-prefix-match index over disjoint address intervals.
///
/// Built from a [`PrefixTrie`] with [`RibIndex::build`]; immutable
/// afterwards. Plain `Vec`s throughout, so the index is `Send + Sync`
/// and can be shared by reference across ingest/pipeline threads.
///
/// ```
/// use mt_types::{Ipv4, PrefixTrie, RibIndex};
/// let mut rib = PrefixTrie::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// rib.insert("10.1.0.0/16".parse().unwrap(), "specific");
/// let idx = RibIndex::build(&rib);
/// let (prefix, value) = idx.lookup(Ipv4::new(10, 1, 2, 3)).unwrap();
/// assert_eq!((prefix.to_string().as_str(), *value), ("10.1.0.0/16", "specific"));
/// assert_eq!(idx.lookup(Ipv4::new(11, 0, 0, 1)), None);
/// ```
#[derive(Debug, Clone)]
pub struct RibIndex<V> {
    /// Interval start addresses, sorted ascending, pairwise disjoint
    /// with `ends` (`starts[i] <= ends[i] < starts[i+1]`).
    starts: Vec<u32>,
    /// Inclusive interval end addresses, parallel to `starts`.
    ends: Vec<u32>,
    /// The originating (most specific covering) prefix per interval —
    /// what `PrefixTrie::lookup` reports as the match.
    prefixes: Vec<Prefix>,
    /// The value stored under that prefix.
    values: Vec<V>,
    /// 257 partition points: `buckets[o]` is the index of the first
    /// interval whose start is `>= o << 24`, so a query for an address
    /// in first octet `o` searches `starts[buckets[o]-1 .. buckets[o+1]]`.
    buckets: Vec<u32>,
    /// Whether every interval begins and ends on a /24 boundary — true
    /// whenever the source trie held only prefixes of length <= 24.
    /// Required by [`RibIndex::lookup24`].
    block_aligned: bool,
}

impl<V: Clone> RibIndex<V> {
    /// Compiles the trie into a flat index.
    ///
    /// Runs in `O(n)` over the trie's in-order iteration: a stack of
    /// currently-covering prefixes is maintained, and every time
    /// coverage changes (a prefix opens or closes) the most specific
    /// active prefix is emitted for the address range just passed.
    pub fn build(trie: &PrefixTrie<V>) -> Self {
        let mut idx = RibIndex {
            starts: Vec::new(),
            ends: Vec::new(),
            prefixes: Vec::new(),
            values: Vec::new(),
            buckets: Vec::new(),
            block_aligned: true,
        };
        // Active covering prefixes, outermost first (iteration order
        // guarantees each pushed prefix nests inside the one below it).
        let mut stack: Vec<(Prefix, &V)> = Vec::new();
        // Next address not yet attributed to an interval (u64 so the
        // exclusive bound past 255.255.255.255 is representable).
        let mut cursor: u64 = 0;
        for (prefix, value) in trie.iter() {
            let start = u64::from(prefix.base().0);
            // Close every active prefix that ends before this one opens.
            while let Some(&(top, top_v)) = stack.last() {
                let top_end = u64::from(top.last().0);
                if top_end < start {
                    idx.emit(cursor, top_end, top, top_v);
                    cursor = top_end + 1;
                    stack.pop();
                } else {
                    break;
                }
            }
            // The gap between the last emitted range and this prefix
            // belongs to the enclosing prefix, if any.
            if let Some(&(top, top_v)) = stack.last() {
                if cursor < start {
                    idx.emit(cursor, start - 1, top, top_v);
                }
            }
            cursor = start;
            stack.push((prefix, value));
        }
        // Close out whatever is still covering at the end of the space.
        while let Some((top, top_v)) = stack.pop() {
            let top_end = u64::from(top.last().0);
            idx.emit(cursor, top_end, top, top_v);
            cursor = top_end + 1;
        }
        idx.build_buckets();
        idx
    }

    /// Records one resolved interval (no-op for empty ranges, which
    /// arise when a nested prefix ends exactly where its parent does).
    fn emit(&mut self, from: u64, to: u64, prefix: Prefix, value: &V) {
        if from > to {
            return;
        }
        debug_assert!(to <= u64::from(u32::MAX));
        debug_assert!(self.starts.last().is_none_or(|&s| u64::from(s) < from));
        if !from.is_multiple_of(256) || !(to + 1).is_multiple_of(256) {
            self.block_aligned = false;
        }
        self.starts.push(from as u32);
        self.ends.push(to as u32);
        self.prefixes.push(prefix);
        self.values.push(value.clone());
    }

    /// Builds the 257-entry first-octet partition table over `starts`.
    fn build_buckets(&mut self) {
        self.buckets = (0..=256u64)
            .map(|o| self.starts.partition_point(|&s| u64::from(s) < o << 24) as u32)
            .collect();
    }
}

impl<V> RibIndex<V> {
    /// Longest-prefix match: the most specific prefix of the source
    /// trie containing `addr`, with its value — identical to
    /// [`PrefixTrie::lookup`] on the trie this index was built from.
    #[inline]
    pub fn lookup(&self, addr: Ipv4) -> Option<(Prefix, &V)> {
        let o = (addr.0 >> 24) as usize;
        // An interval that *starts* in an earlier octet may span into
        // this one; disjointness means at most one can, and it is the
        // one immediately before the bucket boundary.
        let lo = (self.buckets[o] as usize).saturating_sub(1);
        let hi = self.buckets[o + 1] as usize;
        if lo >= hi {
            return None;
        }
        let n = self.starts[lo..hi].partition_point(|&s| s <= addr.0);
        if n == 0 {
            return None;
        }
        let i = lo + n - 1;
        if self.ends[i] >= addr.0 {
            Some((self.prefixes[i], &self.values[i]))
        } else {
            None
        }
    }

    /// Whether any prefix of the source trie contains `addr`.
    #[inline]
    pub fn contains_addr(&self, addr: Ipv4) -> bool {
        self.lookup(addr).is_some()
    }

    /// Longest-prefix match for a whole /24 block in one probe.
    ///
    /// # Panics
    ///
    /// Panics if the index is not [/24-aligned](Self::is_block_aligned)
    /// — i.e. the source trie held a prefix longer than /24, in which
    /// case addresses within one block can resolve differently and a
    /// single per-block answer does not exist. Use [`Self::lookup`] on
    /// individual addresses for such tries.
    #[inline]
    pub fn lookup24(&self, block: Block24) -> Option<(Prefix, &V)> {
        assert!(
            self.block_aligned,
            "lookup24 requires a /24-aligned index (no prefixes longer than /24)"
        );
        self.lookup(block.base())
    }

    /// Whether any prefix of the source trie contains `block`.
    ///
    /// # Panics
    ///
    /// Panics under the same condition as [`Self::lookup24`].
    #[inline]
    pub fn contains_block24(&self, block: Block24) -> bool {
        self.lookup24(block).is_some()
    }

    /// Whether every resolved interval starts and ends on a /24
    /// boundary, which makes [`Self::lookup24`] valid. Vacuously true
    /// for an empty index.
    pub fn is_block_aligned(&self) -> bool {
        self.block_aligned
    }

    /// Number of resolved disjoint intervals (not the number of source
    /// prefixes: overlaps split, and fully-shadowed ranges merge away).
    pub fn num_intervals(&self) -> usize {
        self.starts.len()
    }

    /// Whether the index resolves to no coverage at all.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The resolved disjoint intervals as `(start, inclusive end)`
    /// address pairs, in ascending address order.
    ///
    /// This is the stable build order [`crate::Slot24Index`] assigns
    /// row ids from: same RIB → same intervals → same slot numbering.
    pub fn intervals(&self) -> impl Iterator<Item = (Ipv4, Ipv4)> + '_ {
        self.starts
            .iter()
            .zip(&self.ends)
            .map(|(&s, &e)| (Ipv4(s), Ipv4(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    /// Every address the trie answers, the index must answer
    /// identically — probed at interval-boundary-heavy points.
    fn assert_matches_trie(trie: &PrefixTrie<&'static str>, probes: &[Ipv4]) {
        let idx = RibIndex::build(trie);
        for &addr in probes {
            assert_eq!(idx.lookup(addr), trie.lookup(addr), "divergence at {addr}");
        }
    }

    /// Boundary probes for a prefix: base, last, and one step outside
    /// each (saturating at the ends of the space).
    fn boundary_probes(prefixes: &[Prefix]) -> Vec<Ipv4> {
        let mut out = Vec::new();
        for pre in prefixes {
            let base = pre.base();
            let last = pre.last();
            out.push(base);
            out.push(last);
            out.push(Ipv4(base.0.saturating_sub(1)));
            out.push(last.saturating_next());
        }
        out
    }

    #[test]
    fn empty_trie_empty_index() {
        let trie: PrefixTrie<&str> = PrefixTrie::new();
        let idx = RibIndex::build(&trie);
        assert!(idx.is_empty());
        assert_eq!(idx.num_intervals(), 0);
        assert!(idx.is_block_aligned(), "vacuously aligned");
        assert_eq!(idx.lookup(a("0.0.0.0")), None);
        assert_eq!(idx.lookup(a("255.255.255.255")), None);
        assert!(!idx.contains_block24(Block24::containing(a("10.0.0.0"))));
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        let idx = RibIndex::build(&t);
        assert_eq!(
            idx.lookup(a("10.1.2.3")).unwrap(),
            (p("10.1.2.0/24"), &"twentyfour")
        );
        assert_eq!(
            idx.lookup(a("10.1.9.9")).unwrap(),
            (p("10.1.0.0/16"), &"sixteen")
        );
        assert_eq!(
            idx.lookup(a("10.200.0.1")).unwrap(),
            (p("10.0.0.0/8"), &"eight")
        );
        assert_eq!(idx.lookup(a("11.0.0.1")), None);
        // A /8 split by a /16 split by a /24 resolves into 5 pieces.
        assert_eq!(idx.num_intervals(), 5);
        let probes = boundary_probes(&[p("10.0.0.0/8"), p("10.1.0.0/16"), p("10.1.2.0/24")]);
        assert_matches_trie(&t, &probes);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT_ROUTE, "all");
        t.insert(p("128.0.0.0/8"), "specific");
        let idx = RibIndex::build(&t);
        assert_eq!(
            idx.lookup(a("0.0.0.0")).unwrap(),
            (Prefix::DEFAULT_ROUTE, &"all")
        );
        assert_eq!(
            idx.lookup(a("255.255.255.255")).unwrap(),
            (Prefix::DEFAULT_ROUTE, &"all")
        );
        assert_eq!(
            idx.lookup(a("128.5.5.5")).unwrap(),
            (p("128.0.0.0/8"), &"specific")
        );
        assert_eq!(idx.num_intervals(), 3);
    }

    #[test]
    fn host_routes_clear_alignment_but_still_match() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        t.insert(p("1.2.0.0/16"), "net");
        let idx = RibIndex::build(&t);
        assert!(!idx.is_block_aligned());
        assert_eq!(
            idx.lookup(a("1.2.3.4")).unwrap(),
            (p("1.2.3.4/32"), &"host")
        );
        assert_eq!(idx.lookup(a("1.2.3.5")).unwrap(), (p("1.2.0.0/16"), &"net"));
        let probes = boundary_probes(&[p("1.2.3.4/32"), p("1.2.0.0/16")]);
        assert_matches_trie(&t, &probes);
    }

    #[test]
    #[should_panic(expected = "lookup24 requires a /24-aligned index")]
    fn lookup24_panics_when_unaligned() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        let idx = RibIndex::build(&t);
        let _ = idx.lookup24(Block24::containing(a("1.2.3.0")));
    }

    #[test]
    fn lookup24_on_aligned_rib() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "coarse");
        t.insert(p("10.1.2.0/24"), "fine");
        let idx = RibIndex::build(&t);
        assert!(idx.is_block_aligned());
        assert_eq!(
            idx.lookup24(Block24::containing(a("10.1.2.200"))).unwrap(),
            (p("10.1.2.0/24"), &"fine")
        );
        assert_eq!(
            idx.lookup24(Block24::containing(a("10.9.9.9"))).unwrap(),
            (p("10.0.0.0/8"), &"coarse")
        );
        assert!(!idx.contains_block24(Block24::containing(a("11.0.0.0"))));
    }

    #[test]
    fn nested_prefix_ending_at_parent_end() {
        // The tail half of the /23 is exactly the /24: after the inner
        // prefix closes, nothing of the parent remains to emit.
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/23"), "parent");
        t.insert(p("10.0.1.0/24"), "tail");
        let idx = RibIndex::build(&t);
        assert_eq!(idx.num_intervals(), 2);
        let probes = boundary_probes(&[p("10.0.0.0/23"), p("10.0.1.0/24")]);
        assert_matches_trie(&t, &probes);
    }

    #[test]
    fn nested_prefix_sharing_parent_base() {
        // The inner prefix opens at the same address as its parent: no
        // gap interval must be emitted before it.
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "parent");
        t.insert(p("10.0.0.0/24"), "head");
        let idx = RibIndex::build(&t);
        assert_eq!(idx.num_intervals(), 2);
        let probes = boundary_probes(&[p("10.0.0.0/8"), p("10.0.0.0/24")]);
        assert_matches_trie(&t, &probes);
    }

    #[test]
    fn adjacent_and_far_apart_prefixes() {
        let mut t = PrefixTrie::new();
        t.insert(p("9.0.0.0/8"), "nine");
        t.insert(p("10.0.0.0/8"), "ten");
        t.insert(p("200.0.0.0/8"), "far");
        let idx = RibIndex::build(&t);
        assert_eq!(idx.num_intervals(), 3);
        let probes = boundary_probes(&[p("9.0.0.0/8"), p("10.0.0.0/8"), p("200.0.0.0/8")]);
        assert_matches_trie(&t, &probes);
        assert_eq!(idx.lookup(a("100.0.0.1")), None, "gap between intervals");
    }

    #[test]
    fn brute_force_equivalence_over_small_space() {
        // Exhaustively compare against the trie across a busy /16 —
        // every address, so no boundary case can hide.
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), "p16");
        t.insert(p("10.1.0.0/20"), "p20");
        t.insert(p("10.1.4.0/24"), "p24a");
        t.insert(p("10.1.128.0/24"), "p24b");
        t.insert(p("10.1.130.7/32"), "host");
        let idx = RibIndex::build(&t);
        for host in 0..=0xffffu32 {
            let addr = Ipv4(0x0a01_0000 | host);
            assert_eq!(idx.lookup(addr), t.lookup(addr), "divergence at {addr}");
        }
        // And just outside the /16 on both sides.
        assert_eq!(idx.lookup(a("10.0.255.255")), None);
        assert_eq!(idx.lookup(a("10.2.0.0")), None);
    }
}
