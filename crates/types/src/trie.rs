//! A binary (Patricia-style, path-per-bit) trie keyed by IPv4 prefixes.
//!
//! Used for the RIB ("is this /24 inside any announced prefix?" — pipeline
//! step 5), the prefix-to-AS mapping, and the special-purpose registry. The
//! hot operation is longest-prefix match of a single address; the trie also
//! supports exact lookup, covering-prefix enumeration, and in-order
//! traversal for the prefix-index analysis.
//!
//! The implementation is a straightforward node-per-bit binary trie. For
//! the RIB sizes we deal with (tens of thousands of prefixes, ≤ 32 levels)
//! this is fast, simple and robust — in line with this workspace's
//! smoltcp-inspired preference for obvious data structures over clever
//! ones.

use crate::ipv4::Ipv4;
use crate::prefix::Prefix;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A map from [`Prefix`] to `V` supporting longest-prefix match.
///
/// ```
/// use mt_types::{Ipv4, Prefix, PrefixTrie};
/// let mut rib = PrefixTrie::new();
/// rib.insert("10.0.0.0/8".parse().unwrap(), "coarse");
/// rib.insert("10.1.0.0/16".parse().unwrap(), "specific");
/// let (prefix, value) = rib.lookup(Ipv4::new(10, 1, 2, 3)).unwrap();
/// assert_eq!((prefix.to_string().as_str(), *value), ("10.1.0.0/16", "specific"));
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Extracts bit `i` (0 = most significant) of an address.
#[inline]
fn bit(addr: Ipv4, i: u8) -> usize {
    ((addr.0 >> (31 - i)) & 1) as usize
}

impl<V> PrefixTrie<V> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a prefix, returning the previous value if it was present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.base(), i);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a prefix, returning its value if it was present.
    ///
    /// Interior nodes left empty are not pruned; for our workloads tries
    /// are built once per RIB snapshot and discarded wholesale, so pruning
    /// would be wasted work.
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.base(), i);
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = bit(prefix.base(), i);
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `addr`, with its value.
    pub fn lookup(&self, addr: Ipv4) -> Option<(Prefix, &V)> {
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = bit(addr, i);
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::containing(addr, len), v))
    }

    /// Whether any stored prefix contains `addr`.
    pub fn contains_addr(&self, addr: Ipv4) -> bool {
        self.lookup(addr).is_some()
    }

    /// All stored prefixes containing `addr`, from least to most
    /// specific. Lazy: no allocation, and short-circuiting consumers
    /// (e.g. `.next()` for the least specific covering prefix) stop
    /// walking the trie early.
    pub fn covering(&self, addr: Ipv4) -> Covering<'_, V> {
        Covering {
            node: Some(&self.root),
            addr,
            depth: 0,
        }
    }

    /// In-order traversal of all `(prefix, value)` pairs (sorted by base
    /// address, then length — the same order as `Prefix`'s `Ord`).
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    fn walk<'a>(node: &'a Node<V>, acc: u32, depth: u8, out: &mut Vec<(Prefix, &'a V)>) {
        if let Some(v) = node.value.as_ref() {
            let base = if depth == 0 { 0 } else { acc << (32 - depth) };
            out.push((
                // check: allow(no_panic, "base is acc shifted left by 32-depth, so bits below the prefix length are zero by construction")
                Prefix::new(Ipv4(base), depth).expect("trie paths have no host bits"),
                v,
            ));
        }
        for b in 0..2u32 {
            if let Some(child) = node.children[b as usize].as_deref() {
                Self::walk(child, (acc << 1) | b, depth + 1, out);
            }
        }
    }
}

/// Iterator over the stored prefixes containing one address, yielded
/// from least to most specific. Returned by [`PrefixTrie::covering`].
///
/// Walks the lookup path of the address one node per step; a value at
/// depth `d` is the stored prefix of length `d` covering the address
/// (depth 0 being the default route).
#[derive(Debug, Clone)]
pub struct Covering<'a, V> {
    node: Option<&'a Node<V>>,
    addr: Ipv4,
    depth: u8,
}

impl<'a, V> Iterator for Covering<'a, V> {
    type Item = (Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let node = self.node?;
            let depth = self.depth;
            self.node = if depth < 32 {
                node.children[bit(self.addr, depth)].as_deref()
            } else {
                None
            };
            self.depth = depth + 1;
            if let Some(v) = node.value.as_ref() {
                return Some((Prefix::containing(self.addr, depth), v));
            }
        }
    }
}

impl<V> FromIterator<(Prefix, V)> for PrefixTrie<V> {
    fn from_iter<I: IntoIterator<Item = (Prefix, V)>>(iter: I) -> Self {
        let mut t = PrefixTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Ipv4 {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/9")), None);
        assert_eq!(t.remove(p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        assert_eq!(
            t.lookup(a("10.1.2.3")).unwrap(),
            (p("10.1.2.0/24"), &"twentyfour")
        );
        assert_eq!(
            t.lookup(a("10.1.9.9")).unwrap(),
            (p("10.1.0.0/16"), &"sixteen")
        );
        assert_eq!(
            t.lookup(a("10.200.0.1")).unwrap(),
            (p("10.0.0.0/8"), &"eight")
        );
        assert_eq!(t.lookup(a("11.0.0.1")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::DEFAULT_ROUTE, 0);
        assert_eq!(t.lookup(a("1.2.3.4")).unwrap().0, Prefix::DEFAULT_ROUTE);
        assert_eq!(
            t.lookup(a("255.255.255.255")).unwrap().0,
            Prefix::DEFAULT_ROUTE
        );
    }

    #[test]
    fn covering_lists_all_supernets() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        let cov: Vec<(Prefix, &i32)> = t.covering(a("10.1.5.5")).collect();
        let lens: Vec<u8> = cov.iter().map(|(pre, _)| pre.len()).collect();
        assert_eq!(lens, vec![0, 8, 16]);
        assert_eq!(cov[0], (Prefix::DEFAULT_ROUTE, &0));
        assert_eq!(cov[2], (p("10.1.0.0/16"), &16));
        // Lazy: taking only the least specific match works too.
        assert_eq!(t.covering(a("10.1.5.5")).next().unwrap().1, &0);
        assert_eq!(t.covering(a("11.0.0.0")).next().unwrap().1, &0);
        assert!(PrefixTrie::<i32>::new()
            .covering(a("1.1.1.1"))
            .next()
            .is_none());
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let prefixes = vec![
            p("9.0.0.0/8"),
            p("10.0.0.0/8"),
            p("10.0.0.0/24"),
            p("10.0.1.0/24"),
            p("192.168.0.0/16"),
        ];
        let t: PrefixTrie<()> = prefixes.iter().map(|&pre| (pre, ())).collect();
        let got: Vec<Prefix> = t.iter().map(|(pre, _)| pre).collect();
        assert_eq!(got, prefixes);
    }

    #[test]
    fn host_route_lookup() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(t.lookup(a("1.2.3.4")).unwrap(), (p("1.2.3.4/32"), &"host"));
        assert_eq!(t.lookup(a("1.2.3.5")), None);
    }
}
