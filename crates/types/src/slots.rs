//! Dense row numbering for the announced /24 blocks of a window.
//!
//! The columnar traffic store in `mt-flow` keeps one row per announced
//! /24 instead of a hashmap entry per touched /24. That needs a stable,
//! dense mapping from [`Block24`] to a row id, valid for the lifetime
//! of one observation window: [`Slot24Index`].
//!
//! The index is compiled from a block-aligned [`RibIndex`]: the
//! resolved disjoint intervals are visited in ascending address order
//! (the order [`RibIndex::intervals`] reports — a deterministic
//! function of the RIB contents) and every /24 inside an interval gets
//! the next slot number. Two consequences the columnar store relies on:
//!
//! - **Stable row ids within a window.** Rebuilding the index from the
//!   same RIB yields the same block ↔ slot mapping, so shards built
//!   independently (ingest workers, `par_ingest` threads) agree on row
//!   numbering without coordination. The [`Slot24Index::fingerprint`]
//!   hash makes the agreement checkable: merges assert equal
//!   fingerprints instead of trusting the caller.
//! - **Slot order = address order.** Iterating rows in slot order
//!   yields blocks in ascending address order, which keeps columnar
//!   iteration deterministic without a sort.

use crate::block::Block24;
use crate::mix::mix3;
use crate::rib_index::RibIndex;

/// A dense, immutable `Block24 → row` mapping over the announced /24s
/// of one RIB snapshot.
///
/// ```
/// use mt_types::{Block24, Ipv4, PrefixTrie, RibIndex, Slot24Index};
/// let mut rib = PrefixTrie::new();
/// rib.insert("10.0.0.0/16".parse().unwrap(), ());
/// rib.insert("192.0.2.0/24".parse().unwrap(), ());
/// let slots = Slot24Index::build(&RibIndex::build(&rib));
/// assert_eq!(slots.num_slots(), 256 + 1);
/// let b = Block24::containing(Ipv4::new(10, 0, 5, 0));
/// let s = slots.slot_of(b).unwrap();
/// assert_eq!(slots.block_of(s), b);
/// assert_eq!(slots.slot_of(Block24::containing(Ipv4::new(11, 0, 0, 0))), None);
/// ```
#[derive(Debug, Clone)]
pub struct Slot24Index {
    /// First block of each interval, ascending.
    starts: Vec<u32>,
    /// Inclusive last block of each interval, parallel to `starts`.
    ends: Vec<u32>,
    /// `base[i]` is the slot number of `starts[i]`; slots within an
    /// interval are consecutive (`base[i] + (block - starts[i])`).
    base: Vec<u32>,
    /// Total number of slots (announced /24s).
    num_slots: u32,
    /// Order-sensitive hash of the interval list — equal fingerprints
    /// mean equal block ↔ slot mappings.
    fingerprint: u64,
}

impl Slot24Index {
    /// Compiles the slot mapping from a block-aligned [`RibIndex`].
    ///
    /// # Panics
    ///
    /// Panics when the index is not
    /// [block-aligned](RibIndex::is_block_aligned) (a prefix longer
    /// than /24 has no whole-block row) or when the announced space
    /// exceeds `u32::MAX` /24s (impossible for IPv4: there are only
    /// 2^24 blocks).
    pub fn build<V>(rib: &RibIndex<V>) -> Slot24Index {
        assert!(
            rib.is_block_aligned(),
            "Slot24Index requires a /24-aligned RibIndex"
        );
        let mut starts = Vec::with_capacity(rib.num_intervals());
        let mut ends = Vec::with_capacity(rib.num_intervals());
        let mut base = Vec::with_capacity(rib.num_intervals());
        let mut next: u64 = 0;
        let mut fingerprint: u64 = 0x510_72424; // arbitrary non-zero seed
        for (from, to) in rib.intervals() {
            let first = from.0 >> 8;
            let last = to.0 >> 8;
            starts.push(first);
            ends.push(last);
            base.push(next as u32);
            next += u64::from(last - first) + 1;
            fingerprint = mix3(fingerprint, u64::from(first), u64::from(last));
        }
        assert!(next <= u64::from(u32::MAX), "more slots than /24 blocks");
        Slot24Index {
            starts,
            ends,
            base,
            num_slots: next as u32,
            fingerprint,
        }
    }

    /// The row id of `block`, or `None` when the block is outside every
    /// announced interval.
    #[inline]
    pub fn slot_of(&self, block: Block24) -> Option<u32> {
        let n = self.starts.partition_point(|&s| s <= block.0);
        if n == 0 {
            return None;
        }
        let i = n - 1;
        if self.ends[i] >= block.0 {
            Some(self.base[i] + (block.0 - self.starts[i]))
        } else {
            None
        }
    }

    /// The block occupying row `slot`.
    ///
    /// # Panics
    ///
    /// Panics when `slot >= num_slots()`.
    #[inline]
    pub fn block_of(&self, slot: u32) -> Block24 {
        assert!(slot < self.num_slots, "slot {slot} out of range");
        let n = self.base.partition_point(|&b| b <= slot);
        // check: allow(no_panic, "num_slots > 0 implies at least one interval with base 0, so n >= 1")
        let i = n.checked_sub(1).expect("slot below first interval base");
        Block24(self.starts[i] + (slot - self.base[i]))
    }

    /// Total number of rows (announced /24 blocks).
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// Whether the index maps no blocks at all.
    pub fn is_empty(&self) -> bool {
        self.num_slots == 0
    }

    /// Order-sensitive hash of the interval list. Two indexes with the
    /// same fingerprint define the same block ↔ slot mapping; columnar
    /// merges assert on it rather than trusting their caller.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Prefix;
    use crate::trie::PrefixTrie;

    fn index(prefixes: &[&str]) -> Slot24Index {
        let trie: PrefixTrie<()> = prefixes
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), ()))
            .collect();
        Slot24Index::build(&RibIndex::build(&trie))
    }

    #[test]
    fn empty_rib_empty_slots() {
        let s = index(&[]);
        assert!(s.is_empty());
        assert_eq!(s.num_slots(), 0);
        assert_eq!(s.slot_of(Block24(0)), None);
    }

    #[test]
    fn slots_are_dense_and_address_ordered() {
        let s = index(&["10.0.0.0/22", "192.0.2.0/24"]);
        assert_eq!(s.num_slots(), 5);
        let mut blocks: Vec<Block24> = (0..s.num_slots()).map(|i| s.block_of(i)).collect();
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(s.slot_of(*b), Some(i as u32), "round trip for {b}");
        }
        blocks.dedup();
        assert_eq!(blocks.len(), 5, "all rows distinct");
        assert!(blocks.windows(2).all(|w| w[0] < w[1]), "ascending order");
    }

    #[test]
    fn gaps_map_to_none() {
        let s = index(&["10.0.0.0/24", "10.0.2.0/24"]);
        assert_eq!(s.num_slots(), 2);
        assert_eq!(s.slot_of(Block24(0x0a0000)), Some(0));
        assert_eq!(s.slot_of(Block24(0x0a0001)), None, "unannounced gap");
        assert_eq!(s.slot_of(Block24(0x0a0002)), Some(1));
        assert_eq!(s.slot_of(Block24(0)), None, "before first interval");
        assert_eq!(s.slot_of(Block24(0xffffff)), None, "after last interval");
    }

    #[test]
    fn overlapping_prefixes_resolve_to_one_slot_per_block() {
        // A /16 with a more specific /24 inside: the RibIndex splits it
        // into disjoint intervals, but every block still has one slot.
        let s = index(&["10.0.0.0/16", "10.0.128.0/24"]);
        assert_eq!(s.num_slots(), 256);
        let mut seen = std::collections::BTreeSet::new();
        for b in 0x0a0000u32..0x0a0100 {
            let slot = s.slot_of(Block24(b)).expect("inside the /16");
            assert!(seen.insert(slot), "slot {slot} assigned twice");
        }
    }

    #[test]
    fn fingerprint_tracks_the_mapping() {
        let a = index(&["10.0.0.0/22", "192.0.2.0/24"]);
        let b = index(&["10.0.0.0/22", "192.0.2.0/24"]);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same RIB, same mapping");
        let c = index(&["10.0.0.0/22"]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = index(&["10.0.4.0/22", "192.0.2.0/24"]);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    #[should_panic(expected = "requires a /24-aligned RibIndex")]
    fn unaligned_rib_is_rejected() {
        let mut t = PrefixTrie::new();
        t.insert("10.0.0.4/32".parse::<Prefix>().unwrap(), ());
        let _ = Slot24Index::build(&RibIndex::build(&t));
    }

    #[test]
    fn top_of_address_space() {
        // The last /24 of the IPv4 space must round-trip without
        // overflowing the block arithmetic.
        let s = index(&["255.255.255.0/24", "255.255.0.0/17"]);
        let last = Block24(0xffffff);
        let slot = s.slot_of(last).expect("announced");
        assert_eq!(s.block_of(slot), last);
        assert_eq!(s.num_slots(), 128 + 1);
    }
}
