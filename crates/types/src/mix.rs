//! Keyed hashing for order-independent deterministic coin flips.
//!
//! The simulation needs many per-entity random decisions (is block X
//! targeted by botnet Y on day Z?) that must not depend on the order in
//! which code happens to ask. A seeded RNG stream cannot provide that, so
//! these decisions are driven by a SplitMix64-style keyed hash instead:
//! same inputs, same 64-bit output, regardless of call order.

/// Mixes three 64-bit values into one well-distributed 64-bit hash.
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to the unit interval `[0, 1)`.
pub fn to_unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience: a uniform `[0, 1)` draw keyed by three values.
pub fn unit3(a: u64, b: u64, c: u64) -> f64 {
    to_unit(mix3(a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix3(1, 2, 3), mix3(1, 2, 3));
        assert_ne!(mix3(1, 2, 3), mix3(3, 2, 1));
        assert_ne!(mix3(0, 0, 0), mix3(0, 0, 1));
    }

    #[test]
    fn unit_range() {
        for i in 0..1000u64 {
            let u = unit3(42, i, 7);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit3(9, i, 1)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let below_tenth = (0..n).filter(|&i| unit3(9, i, 1) < 0.1).count();
        let frac = below_tenth as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "P(<0.1) = {frac}");
    }
}
