//! CIDR prefixes.
//!
//! Prefixes appear throughout the system: BGP announcements in the RIB,
//! prefix-to-AS mappings, the special-purpose registry, and the "prefix
//! index" analysis of Section 6.4 (which asks what fraction of a covering
//! /8../16 announcement is inferred dark).

use crate::block::Block24;
use crate::ipv4::Ipv4;
use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR prefix, e.g. `203.0.113.0/24`.
///
/// Invariant: all host bits of `base` below `len` are zero, and
/// `len <= 32`. Construction through [`Prefix::new`] enforces this.
///
/// ```
/// use mt_types::{Ipv4, Prefix};
/// let p: Prefix = "10.0.0.0/22".parse().unwrap();
/// assert!(p.contains(Ipv4::new(10, 0, 3, 200)));
/// assert_eq!(p.num_blocks24(), 4);
/// assert!(Prefix::new(Ipv4::new(10, 0, 0, 1), 24).is_err(), "host bits set");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Prefix {
    base: Ipv4,
    len: u8,
}

impl Prefix {
    /// The whole IPv4 space, `0.0.0.0/0`.
    pub const DEFAULT_ROUTE: Prefix = Prefix {
        base: Ipv4::UNSPECIFIED,
        len: 0,
    };

    /// Creates a prefix, validating that `base` has no host bits set.
    pub fn new(base: Ipv4, len: u8) -> Result<Self, PrefixParseError> {
        if len > 32 {
            return Err(PrefixParseError::LengthOutOfRange(len));
        }
        if base.mask(len) != base {
            return Err(PrefixParseError::HostBitsSet { base, len });
        }
        Ok(Prefix { base, len })
    }

    /// Creates the prefix of length `len` that contains `addr`
    /// (masking off host bits rather than rejecting them).
    pub fn containing(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            base: addr.mask(len),
            len,
        }
    }

    /// The network base address.
    pub const fn base(self) -> Ipv4 {
        self.base
    }

    /// The prefix length in bits.
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Always `false`: a prefix denotes at least one address. Provided to
    /// satisfy the `len`/`is_empty` API convention.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// The last address covered by the prefix.
    pub const fn last(self) -> Ipv4 {
        if self.len == 32 {
            self.base
        } else {
            Ipv4(self.base.0 | (u32::MAX >> self.len))
        }
    }

    /// Number of addresses covered (saturates at `u64` precision; a /0
    /// covers 2^32).
    pub const fn num_addresses(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Number of /24 blocks covered. A prefix longer than /24 still
    /// intersects exactly one block and reports 1.
    pub const fn num_blocks24(self) -> u32 {
        if self.len >= 24 {
            1
        } else {
            1u32 << (24 - self.len)
        }
    }

    /// Whether `addr` is covered by this prefix.
    pub const fn contains(self, addr: Ipv4) -> bool {
        addr.mask(self.len).0 == self.base.0
    }

    /// Whether every address of `other` is covered by this prefix.
    pub const fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && self.contains(other.base)
    }

    /// Iterates over the /24 blocks intersecting this prefix, in order.
    pub fn blocks24(self) -> impl Iterator<Item = Block24> {
        let first = self.base.block24_index();
        let count = self.num_blocks24();
        (first..first + count).map(Block24)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

/// Ordered by base address, then by length (shorter first). This matches
/// RIB dump conventions and makes covering prefixes sort before their
/// more-specifics.
impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.base
            .cmp(&other.base)
            .then_with(|| self.len.cmp(&other.len))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Errors from constructing or parsing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixParseError {
    /// Prefix length was greater than 32.
    LengthOutOfRange(u8),
    /// The base address had bits set below the prefix length.
    HostBitsSet {
        /// Offending base address.
        base: Ipv4,
        /// Prefix length it was paired with.
        len: u8,
    },
    /// The string was not of the form `a.b.c.d/len`.
    Malformed(String),
}

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixParseError::LengthOutOfRange(len) => {
                write!(f, "prefix length {len} out of range 0..=32")
            }
            PrefixParseError::HostBitsSet { base, len } => {
                write!(f, "base {base} has host bits set for /{len}")
            }
            PrefixParseError::Malformed(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError::Malformed(s.to_owned()))?;
        let base: Ipv4 = addr
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_owned()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError::Malformed(s.to_owned()))?;
        Prefix::new(base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn new_rejects_host_bits() {
        assert!(Prefix::new(Ipv4::new(10, 0, 0, 1), 24).is_err());
        assert!(Prefix::new(Ipv4::new(10, 0, 0, 0), 24).is_ok());
        assert!(Prefix::new(Ipv4::new(10, 0, 0, 0), 33).is_err());
    }

    #[test]
    fn containing_masks() {
        let pre = Prefix::containing(Ipv4::new(10, 1, 2, 3), 16);
        assert_eq!(pre, p("10.1.0.0/16"));
    }

    #[test]
    fn contains_and_covers() {
        let slash16 = p("192.168.0.0/16");
        assert!(slash16.contains(Ipv4::new(192, 168, 200, 1)));
        assert!(!slash16.contains(Ipv4::new(192, 169, 0, 0)));
        assert!(slash16.covers(p("192.168.4.0/24")));
        assert!(!slash16.covers(p("192.0.0.0/8")));
        assert!(Prefix::DEFAULT_ROUTE.covers(slash16));
    }

    #[test]
    fn last_address() {
        assert_eq!(p("10.0.0.0/8").last(), Ipv4::new(10, 255, 255, 255));
        assert_eq!(p("10.0.0.0/32").last(), Ipv4::new(10, 0, 0, 0));
        assert_eq!(Prefix::DEFAULT_ROUTE.last(), Ipv4::BROADCAST);
    }

    #[test]
    fn block_counts() {
        assert_eq!(p("10.0.0.0/8").num_blocks24(), 65536);
        assert_eq!(p("10.0.0.0/24").num_blocks24(), 1);
        assert_eq!(p("10.0.0.0/25").num_blocks24(), 1);
        assert_eq!(p("10.0.0.0/22").blocks24().count(), 4);
    }

    #[test]
    fn blocks24_iterates_in_order() {
        let blocks: Vec<Block24> = p("198.51.100.0/23").blocks24().collect();
        assert_eq!(
            blocks,
            vec![
                Block24::containing(Ipv4::new(198, 51, 100, 0)),
                Block24::containing(Ipv4::new(198, 51, 101, 0)),
            ]
        );
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "203.0.113.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["10.0.0.0", "10.0.0.0/", "/8", "10.0.0.0/8/9", "10.0.0.1/24"] {
            assert!(bad.parse::<Prefix>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn ordering_puts_covering_first() {
        let mut v = vec![p("10.0.0.0/24"), p("10.0.0.0/8"), p("9.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/24")]);
    }

    #[test]
    fn num_addresses() {
        assert_eq!(p("10.0.0.0/24").num_addresses(), 256);
        assert_eq!(Prefix::DEFAULT_ROUTE.num_addresses(), 1 << 32);
    }
}
