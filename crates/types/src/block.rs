//! /24 blocks and dense sets of them.
//!
//! The paper's entire inference pipeline operates at /24 granularity:
//! filters count packets per /24, classification labels a /24 as dark,
//! unclean or gray, and the final meta-telescope is a *set of /24 blocks*.
//! [`Block24`] is a dense index of such a block (there are exactly 2^24 of
//! them in the IPv4 space) and [`Block24Set`] is a bitset over the whole
//! space — at 2 MiB it is small enough to pass around freely, and set
//! algebra (union across vantage points, intersection across days, as in
//! Figures 8 and 9) becomes word-wise bit operations.

use crate::ipv4::Ipv4;
use crate::prefix::Prefix;
use std::fmt;

/// Number of /24 blocks in the IPv4 address space.
pub const NUM_BLOCKS: u32 = 1 << 24;

/// A /24 IPv4 block, identified by its dense index (`address >> 8`).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct Block24(pub u32);

impl Block24 {
    /// The block containing `addr`.
    pub const fn containing(addr: Ipv4) -> Self {
        Block24(addr.0 >> 8)
    }

    /// First address of the block (`x.y.z.0`).
    pub const fn base(self) -> Ipv4 {
        Ipv4(self.0 << 8)
    }

    /// Last address of the block (`x.y.z.255`).
    pub const fn last(self) -> Ipv4 {
        Ipv4((self.0 << 8) | 0xff)
    }

    /// The specific address `base + host`.
    pub const fn addr(self, host: u8) -> Ipv4 {
        Ipv4((self.0 << 8) | host as u32)
    }

    /// Whether `addr` falls inside this block.
    pub const fn contains(self, addr: Ipv4) -> bool {
        addr.0 >> 8 == self.0
    }

    /// The /24 as a [`Prefix`].
    pub fn prefix(self) -> Prefix {
        // check: allow(no_panic, "base() is the block index shifted left 8 bits, so the 8 host bits are zero")
        Prefix::new(self.base(), 24).expect("a /24 base has no host bits set")
    }
}

impl fmt::Display for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.base())
    }
}

impl fmt::Debug for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block24({self})")
    }
}

const WORDS: usize = (NUM_BLOCKS as usize) / 64;

/// A dense bitset over all 2^24 /24 blocks of the IPv4 space.
///
/// Fixed 2 MiB footprint regardless of population. Set algebra is used
/// heavily by the pipeline (per-vantage-point results, per-day
/// intersections, spoofing-tolerance adjustments), so union / intersection /
/// difference are provided as whole-set word-wise operations.
///
/// ```
/// use mt_types::{Block24, Block24Set, Ipv4};
/// let mut dark = Block24Set::new();
/// dark.insert(Block24::containing(Ipv4::new(20, 0, 0, 0)));
/// dark.insert(Block24::containing(Ipv4::new(20, 0, 1, 0)));
/// assert_eq!(dark.len(), 2);
/// // Contiguous runs aggregate into CIDR prefixes:
/// assert_eq!(dark.aggregate()[0].to_string(), "20.0.0.0/23");
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Block24Set {
    words: Vec<u64>,
}

impl Default for Block24Set {
    fn default() -> Self {
        Self::new()
    }
}

impl Block24Set {
    /// Creates an empty set.
    pub fn new() -> Self {
        Block24Set {
            words: vec![0u64; WORDS],
        }
    }

    /// Inserts a block; returns `true` if it was newly inserted.
    pub fn insert(&mut self, b: Block24) -> bool {
        let (w, bit) = Self::slot(b);
        let had = self.words[w] & bit != 0;
        self.words[w] |= bit;
        !had
    }

    /// Removes a block; returns `true` if it was present.
    pub fn remove(&mut self, b: Block24) -> bool {
        let (w, bit) = Self::slot(b);
        let had = self.words[w] & bit != 0;
        self.words[w] &= !bit;
        had
    }

    /// Membership test.
    pub fn contains(&self, b: Block24) -> bool {
        let (w, bit) = Self::slot(b);
        self.words[w] & bit != 0
    }

    /// Number of blocks in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all blocks.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union: `self |= other`.
    pub fn union_with(&mut self, other: &Block24Set) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_with(&mut self, other: &Block24Set) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other`.
    pub fn difference_with(&mut self, other: &Block24Set) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns a new set that is the union of the two.
    pub fn union(&self, other: &Block24Set) -> Block24Set {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns a new set that is the intersection of the two.
    pub fn intersection(&self, other: &Block24Set) -> Block24Set {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns a new set with the blocks of `self` not in `other`.
    pub fn difference(&self, other: &Block24Set) -> Block24Set {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Number of blocks present in both sets, without allocating.
    pub fn intersection_len(&self, other: &Block24Set) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the blocks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Block24> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            BitIter { word: w }.map(move |bit| Block24((wi as u32) * 64 + bit))
        })
    }

    /// Counts the blocks of this set inside `prefix`.
    ///
    /// This is the "prefix index" numerator of the paper's Section 6.4.
    pub fn count_in_prefix(&self, prefix: Prefix) -> usize {
        if prefix.len() > 24 {
            // A sub-/24 prefix contains at most its covering block.
            return usize::from(self.contains(Block24::containing(prefix.base())));
        }
        let first = prefix.base().0 >> 8;
        let count = 1u32 << (24 - prefix.len());
        let mut total = 0usize;
        let mut idx = first;
        let end = first + count;
        // Whole-word fast path once aligned.
        while idx < end && !idx.is_multiple_of(64) {
            total += usize::from(self.contains(Block24(idx)));
            idx += 1;
        }
        while idx + 64 <= end {
            total += self.words[(idx / 64) as usize].count_ones() as usize;
            idx += 64;
        }
        while idx < end {
            total += usize::from(self.contains(Block24(idx)));
            idx += 1;
        }
        total
    }

    /// Aggregates the set into a minimal list of CIDR prefixes (each
    /// /24 or shorter) that covers exactly these blocks.
    ///
    /// This is how an operator turns hundreds of thousands of inferred
    /// /24s into a compact monitor list: contiguous dark ranges collapse
    /// into /9s, /13s, ... — the paper's Section 6.2 observes exactly
    /// such large aggregates.
    ///
    /// Greedy and optimal for CIDR aggregation: at each position take
    /// the largest aligned power-of-two run fully contained in the set.
    pub fn aggregate(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut iter = self.iter().peekable();
        while let Some(first) = iter.next() {
            // Extend the contiguous run.
            let mut last = first;
            while iter.peek() == Some(&Block24(last.0 + 1)) {
                // check: allow(no_panic, "the loop guard just peeked Some for this element")
                last = iter.next().expect("peeked");
            }
            // Emit aligned power-of-two chunks covering [first, last].
            let mut start = first.0;
            let end = last.0;
            while start <= end {
                // Largest alignment of `start`, capped by remaining span.
                let align = if start == 0 {
                    1 << 24
                } else {
                    1u32 << start.trailing_zeros()
                };
                let mut size = align.min(1 << 24);
                let remaining = end - start + 1;
                while size > remaining {
                    size /= 2;
                }
                let len = 24 - size.trailing_zeros() as u8;
                out.push(
                    Prefix::new(Block24(start).base(), len)
                        // check: allow(no_panic, "size is a power of two dividing start, so start.base() is aligned to the emitted length")
                        .expect("aligned chunk has no host bits"),
                );
                start += size;
                if start == 0 {
                    break; // wrapped past the end of the space
                }
            }
        }
        out
    }

    #[inline]
    fn slot(b: Block24) -> (usize, u64) {
        debug_assert!(b.0 < NUM_BLOCKS);
        ((b.0 / 64) as usize, 1u64 << (b.0 % 64))
    }
}

impl fmt::Debug for Block24Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block24Set({} blocks)", self.len())
    }
}

impl FromIterator<Block24> for Block24Set {
    fn from_iter<I: IntoIterator<Item = Block24>>(iter: I) -> Self {
        let mut s = Self::new();
        for b in iter {
            s.insert(b);
        }
        s
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address() {
        let a = Ipv4::new(198, 51, 100, 42);
        let b = Block24::containing(a);
        assert_eq!(b.base(), Ipv4::new(198, 51, 100, 0));
        assert_eq!(b.last(), Ipv4::new(198, 51, 100, 255));
        assert!(b.contains(a));
        assert!(!b.contains(Ipv4::new(198, 51, 101, 0)));
        assert_eq!(b.to_string(), "198.51.100.0/24");
    }

    #[test]
    fn block_addr_builds_hosts() {
        let b = Block24::containing(Ipv4::new(10, 0, 0, 0));
        assert_eq!(b.addr(0), Ipv4::new(10, 0, 0, 0));
        assert_eq!(b.addr(255), Ipv4::new(10, 0, 0, 255));
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = Block24Set::new();
        let b = Block24(12345);
        assert!(!s.contains(b));
        assert!(s.insert(b));
        assert!(!s.insert(b), "second insert reports not-new");
        assert!(s.contains(b));
        assert_eq!(s.len(), 1);
        assert!(s.remove(b));
        assert!(!s.remove(b));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = Block24Set::from_iter([Block24(1), Block24(2), Block24(3)]);
        let b = Block24Set::from_iter([Block24(2), Block24(3), Block24(4)]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).len(), 2);
        assert_eq!(a.intersection_len(&b), 2);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(Block24(1)));
    }

    #[test]
    fn set_iter_is_sorted_and_complete() {
        let blocks = [
            Block24(0),
            Block24(63),
            Block24(64),
            Block24(65),
            Block24(NUM_BLOCKS - 1),
        ];
        let s = Block24Set::from_iter(blocks);
        let got: Vec<Block24> = s.iter().collect();
        assert_eq!(got, blocks);
    }

    #[test]
    fn count_in_prefix_matches_manual_count() {
        let mut s = Block24Set::new();
        // Populate half of 10.0.0.0/22 (blocks 10.0.0/24 and 10.0.2/24).
        s.insert(Block24::containing(Ipv4::new(10, 0, 0, 0)));
        s.insert(Block24::containing(Ipv4::new(10, 0, 2, 0)));
        s.insert(Block24::containing(Ipv4::new(10, 1, 0, 0))); // outside
        let p = Prefix::new(Ipv4::new(10, 0, 0, 0), 22).unwrap();
        assert_eq!(s.count_in_prefix(p), 2);
    }

    #[test]
    fn count_in_prefix_whole_word_path() {
        let mut s = Block24Set::new();
        let base = Ipv4::new(10, 0, 0, 0);
        // Fill an entire /16 (256 blocks, crossing word boundaries).
        for i in 0..256 {
            s.insert(Block24(base.block24_index() + i));
        }
        let p = Prefix::new(base, 16).unwrap();
        assert_eq!(s.count_in_prefix(p), 256);
        let p8 = Prefix::new(base, 8).unwrap();
        assert_eq!(s.count_in_prefix(p8), 256);
    }

    #[test]
    fn aggregate_collapses_contiguous_runs() {
        // A full /22 plus a lone /24.
        let mut s = Block24Set::new();
        for b in Prefix::new(Ipv4::new(10, 0, 0, 0), 22).unwrap().blocks24() {
            s.insert(b);
        }
        s.insert(Block24::containing(Ipv4::new(10, 9, 9, 0)));
        let cidrs = s.aggregate();
        assert_eq!(
            cidrs,
            vec![
                Prefix::new(Ipv4::new(10, 0, 0, 0), 22).unwrap(),
                Prefix::new(Ipv4::new(10, 9, 9, 0), 24).unwrap(),
            ]
        );
    }

    #[test]
    fn aggregate_respects_alignment() {
        // Blocks 1..=4 (base 10.0.1.0): misaligned run → /24 + /23 + /24.
        let s: Block24Set = (1u32..=4).map(|i| Block24((10 << 16) | i)).collect();
        let cidrs = s.aggregate();
        assert_eq!(
            cidrs,
            vec![
                Prefix::new(Ipv4::new(10, 0, 1, 0), 24).unwrap(),
                Prefix::new(Ipv4::new(10, 0, 2, 0), 23).unwrap(),
                Prefix::new(Ipv4::new(10, 0, 4, 0), 24).unwrap(),
            ]
        );
    }

    #[test]
    fn aggregate_roundtrips_exactly() {
        let s: Block24Set = [0u32, 1, 2, 3, 7, 64, 65, 66, 1 << 20]
            .into_iter()
            .map(Block24)
            .collect();
        let cidrs = s.aggregate();
        let mut back = Block24Set::new();
        for p in &cidrs {
            for b in p.blocks24() {
                assert!(back.insert(b), "prefixes must not overlap");
            }
        }
        assert_eq!(back, s);
    }

    #[test]
    fn aggregate_of_empty_set() {
        assert!(Block24Set::new().aggregate().is_empty());
    }

    #[test]
    fn count_in_prefix_sub_24() {
        let mut s = Block24Set::new();
        s.insert(Block24::containing(Ipv4::new(10, 0, 0, 0)));
        let p = Prefix::new(Ipv4::new(10, 0, 0, 128), 25).unwrap();
        assert_eq!(s.count_in_prefix(p), 1);
        let q = Prefix::new(Ipv4::new(10, 0, 1, 0), 25).unwrap();
        assert_eq!(s.count_in_prefix(q), 0);
    }
}
