//! Hilbert-curve mapping of address space to a square grid.
//!
//! The paper's Figures 3, 5 and 6 visualise inferred dark space as Hilbert
//! maps: every pixel is a /24 block and adjacent blocks stay adjacent on
//! the plane, so contiguous telescopes show up as solid rectangles. This
//! module implements the classic d↔(x,y) conversion for a curve of
//! arbitrary order; the `repro` harness renders a covering prefix's blocks
//! into ASCII art and PPM images with it.

/// A Hilbert curve of order `n`, covering a `2^n × 2^n` grid with
/// `4^n` cells.
///
/// ```
/// use mt_types::HilbertCurve;
/// let h = HilbertCurve::new(4); // a /16 at /24 granularity
/// let (x, y) = h.d2xy(37);
/// assert_eq!(h.xy2d(x, y), 37);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilbertCurve {
    order: u8,
}

impl HilbertCurve {
    /// Creates a curve of the given order. Order 0 is a single cell;
    /// order 16 (4 billion cells) is the practical maximum for `u32`
    /// distances.
    pub fn new(order: u8) -> Self {
        assert!(order <= 16, "order {order} exceeds u32 distance range");
        HilbertCurve { order }
    }

    /// Curve order.
    pub const fn order(self) -> u8 {
        self.order
    }

    /// Side length of the grid (`2^order`).
    pub const fn side(self) -> u32 {
        1 << self.order
    }

    /// Total number of cells (`4^order`).
    pub const fn cells(self) -> u64 {
        1u64 << (2 * self.order)
    }

    /// Converts a distance along the curve to grid coordinates.
    ///
    /// `d` must be less than [`Self::cells`].
    pub fn d2xy(self, d: u64) -> (u32, u32) {
        debug_assert!(d < self.cells());
        let (mut x, mut y) = (0u32, 0u32);
        let mut t = d;
        let mut s = 1u32;
        while s < self.side() {
            let rx = ((t / 2) & 1) as u32;
            let ry = ((t ^ (rx as u64)) & 1) as u32;
            rotate(s, &mut x, &mut y, rx, ry);
            x += s * rx;
            y += s * ry;
            t /= 4;
            s *= 2;
        }
        (x, y)
    }

    /// Converts grid coordinates to a distance along the curve.
    ///
    /// Both coordinates must be less than [`Self::side`].
    pub fn xy2d(self, mut x: u32, mut y: u32) -> u64 {
        debug_assert!(x < self.side() && y < self.side());
        let mut d = 0u64;
        let mut s = self.side() / 2;
        while s > 0 {
            let rx = u32::from((x & s) > 0);
            let ry = u32::from((y & s) > 0);
            d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
            rotate(s, &mut x, &mut y, rx, ry);
            s /= 2;
        }
        d
    }
}

/// The standard Hilbert quadrant rotation/reflection step.
fn rotate(n: u32, x: &mut u32, y: &mut u32, rx: u32, ry: u32) {
    if ry == 0 {
        if rx == 1 {
            *x = n.wrapping_sub(1).wrapping_sub(*x);
            *y = n.wrapping_sub(1).wrapping_sub(*y);
        }
        std::mem::swap(x, y);
    }
}

/// Chooses the Hilbert order that maps every /24 of a covering prefix to a
/// distinct cell: a /p prefix contains `2^(24-p)` blocks, needing order
/// `(24-p)/2` (rounded up).
pub fn order_for_prefix_len(prefix_len: u8) -> u8 {
    assert!(
        prefix_len <= 24,
        "only /24-or-shorter prefixes have ≥1 block"
    );
    (24 - prefix_len).div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_visits_expected_cells() {
        let h = HilbertCurve::new(1);
        // The canonical order-1 curve: (0,0) → (0,1) → (1,1) → (1,0).
        assert_eq!(h.d2xy(0), (0, 0));
        assert_eq!(h.d2xy(1), (0, 1));
        assert_eq!(h.d2xy(2), (1, 1));
        assert_eq!(h.d2xy(3), (1, 0));
    }

    #[test]
    fn roundtrip_small_orders() {
        for order in 0..=6u8 {
            let h = HilbertCurve::new(order);
            for d in 0..h.cells() {
                let (x, y) = h.d2xy(d);
                assert!(x < h.side() && y < h.side());
                assert_eq!(h.xy2d(x, y), d, "order {order} distance {d}");
            }
        }
    }

    #[test]
    fn consecutive_distances_are_grid_adjacent() {
        let h = HilbertCurve::new(5);
        let mut prev = h.d2xy(0);
        for d in 1..h.cells() {
            let cur = h.d2xy(d);
            let dx = prev.0.abs_diff(cur.0);
            let dy = prev.1.abs_diff(cur.1);
            assert_eq!(dx + dy, 1, "cells {d}-1 and {d} must be adjacent");
            prev = cur;
        }
    }

    #[test]
    fn order_for_prefixes() {
        assert_eq!(order_for_prefix_len(24), 0); // 1 block
        assert_eq!(order_for_prefix_len(22), 1); // 4 blocks → 2x2
        assert_eq!(order_for_prefix_len(16), 4); // 256 blocks → 16x16
        assert_eq!(order_for_prefix_len(8), 8); // 65536 blocks → 256x256
        assert_eq!(order_for_prefix_len(9), 8); // 32768 blocks fit in 256x256
    }

    #[test]
    fn cells_and_side() {
        let h = HilbertCurve::new(8);
        assert_eq!(h.side(), 256);
        assert_eq!(h.cells(), 65536);
    }
}
