//! Property-based tests for the foundational types.

use mt_types::{Block24, Block24Set, HilbertCurve, Ipv4, Prefix, PrefixTrie, RibIndex};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4> {
    any::<u32>().prop_map(Ipv4)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, len)| Prefix::containing(Ipv4(a), len))
}

proptest! {
    #[test]
    fn addr_display_parse_roundtrip(a in arb_addr()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ipv4>().unwrap(), a);
    }

    #[test]
    fn addr_std_roundtrip(a in arb_addr()) {
        let std: std::net::Ipv4Addr = a.into();
        prop_assert_eq!(Ipv4::from(std), a);
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        prop_assert_eq!(s.parse::<Prefix>().unwrap(), p);
    }

    #[test]
    fn prefix_contains_its_bounds(p in arb_prefix()) {
        prop_assert!(p.contains(p.base()));
        prop_assert!(p.contains(p.last()));
        if p != mt_types::Prefix::DEFAULT_ROUTE {
            // One-past-the-end is outside (when it exists).
            if let Some(next) = p.last().checked_add(1) {
                prop_assert!(!p.contains(next));
            }
        }
    }

    #[test]
    fn prefix_covers_is_consistent_with_contains(p in arb_prefix(), q in arb_prefix()) {
        if p.covers(q) {
            prop_assert!(p.contains(q.base()));
            prop_assert!(p.contains(q.last()));
        }
    }

    #[test]
    fn block_of_address_contains_it(a in arb_addr()) {
        let b = Block24::containing(a);
        prop_assert!(b.contains(a));
        prop_assert!(b.prefix().contains(a));
        prop_assert_eq!(b.addr(a.host_in_block24()), a);
    }

    #[test]
    fn hilbert_roundtrip(order in 0u8..=12, d in any::<u64>()) {
        let h = HilbertCurve::new(order);
        let d = d % h.cells();
        let (x, y) = h.d2xy(d);
        prop_assert!(x < h.side() && y < h.side());
        prop_assert_eq!(h.xy2d(x, y), d);
    }

    #[test]
    fn trie_lpm_matches_linear_scan(
        prefixes in proptest::collection::vec(arb_prefix(), 1..40),
        addr in arb_addr(),
    ) {
        let trie: PrefixTrie<usize> =
            prefixes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        // Linear-scan reference: the longest prefix containing addr; if
        // several inserts share a prefix, the later one wins (matching
        // insert-overwrites semantics).
        let mut best: Option<(Prefix, usize)> = None;
        for (i, &p) in prefixes.iter().enumerate() {
            if p.contains(addr)
                && best.is_none_or(|(bp, _)| p.len() >= bp.len())
            {
                best = Some((p, i));
            }
        }
        let got = trie.lookup(addr).map(|(p, &v)| (p, v));
        prop_assert_eq!(got, best);
    }

    #[test]
    fn rib_index_matches_trie_lookup(
        prefixes in proptest::collection::vec(arb_prefix(), 0..40),
        addrs in proptest::collection::vec(arb_addr(), 1..20),
    ) {
        let trie: PrefixTrie<usize> =
            prefixes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let idx = RibIndex::build(&trie);
        // Random probes plus every interval boundary the prefixes
        // induce (base, last, and one step outside each) — the places
        // an off-by-one in the flattening would hide.
        let mut probes = addrs;
        for p in &prefixes {
            probes.push(p.base());
            probes.push(p.last());
            probes.push(Ipv4(p.base().0.saturating_sub(1)));
            probes.push(p.last().saturating_next());
        }
        for addr in probes {
            prop_assert_eq!(idx.lookup(addr), trie.lookup(addr), "at {}", addr);
            prop_assert_eq!(idx.contains_addr(addr), trie.contains_addr(addr));
        }
    }

    #[test]
    fn rib_index_lookup24_matches_trie_on_aligned_ribs(
        prefixes in proptest::collection::vec(
            (any::<u32>(), 0u8..=24).prop_map(|(a, len)| Prefix::containing(Ipv4(a), len)),
            0..40,
        ),
        blocks in proptest::collection::vec(0u32..(1 << 24), 1..20),
    ) {
        let trie: PrefixTrie<usize> =
            prefixes.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let idx = RibIndex::build(&trie);
        prop_assert!(idx.is_block_aligned(), "<=24-bit prefixes compile aligned");
        for b in blocks.into_iter().map(Block24) {
            // A /24 never straddles resolved intervals, so the block's
            // base answers for every host in it.
            prop_assert_eq!(idx.lookup24(b), trie.lookup(b.base()));
            prop_assert_eq!(idx.lookup24(b), idx.lookup(b.last()));
            prop_assert_eq!(idx.contains_block24(b), trie.contains_addr(b.base()));
        }
    }

    #[test]
    fn rib_index_of_empty_trie_misses_everywhere(addr in arb_addr()) {
        let trie: PrefixTrie<usize> = PrefixTrie::new();
        let idx = RibIndex::build(&trie);
        prop_assert!(idx.is_empty());
        prop_assert_eq!(idx.lookup(addr), None);
        prop_assert!(!idx.contains_block24(Block24::containing(addr)));
    }

    #[test]
    fn blockset_matches_btreeset(
        blocks in proptest::collection::vec(0u32..(1 << 24), 0..200),
        others in proptest::collection::vec(0u32..(1 << 24), 0..200),
    ) {
        use std::collections::BTreeSet;
        let a: Block24Set = blocks.iter().map(|&b| Block24(b)).collect();
        let b: Block24Set = others.iter().map(|&b| Block24(b)).collect();
        let ra: BTreeSet<u32> = blocks.iter().copied().collect();
        let rb: BTreeSet<u32> = others.iter().copied().collect();

        prop_assert_eq!(a.len(), ra.len());
        prop_assert_eq!(a.union(&b).len(), ra.union(&rb).count());
        prop_assert_eq!(a.intersection(&b).len(), ra.intersection(&rb).count());
        prop_assert_eq!(a.intersection_len(&b), ra.intersection(&rb).count());
        prop_assert_eq!(a.difference(&b).len(), ra.difference(&rb).count());
        let iter_order: Vec<u32> = a.iter().map(|x| x.0).collect();
        let ref_order: Vec<u32> = ra.iter().copied().collect();
        prop_assert_eq!(iter_order, ref_order);
    }

    #[test]
    fn aggregate_covers_exactly_and_is_canonical(
        blocks in proptest::collection::vec(0u32..(1 << 16), 0..300),
    ) {
        let s: Block24Set = blocks.iter().map(|&b| Block24(b)).collect();
        let cidrs = s.aggregate();
        // Exact cover, no overlaps.
        let mut back = Block24Set::new();
        for p in &cidrs {
            for b in p.blocks24() {
                prop_assert!(back.insert(b), "overlap at {b}");
            }
        }
        prop_assert_eq!(&back, &s);
        // Canonical: no two siblings that could merge (would imply a
        // shorter list exists).
        use std::collections::HashSet;
        let set: HashSet<Prefix> = cidrs.iter().copied().collect();
        for p in &cidrs {
            if *p == mt_types::Prefix::DEFAULT_ROUTE {
                continue;
            }
            let sibling_base = Ipv4(p.base().0 ^ (1u32 << (32 - p.len())));
            let sibling = Prefix::new(sibling_base, p.len()).unwrap();
            prop_assert!(
                !set.contains(&sibling),
                "mergeable siblings {p} and {sibling}"
            );
        }
    }

    #[test]
    fn blockset_count_in_prefix_matches_filter(
        blocks in proptest::collection::vec(0u32..(1 << 24), 0..200),
        p in (any::<u32>(), 0u8..=24).prop_map(|(a, len)| Prefix::containing(Ipv4(a), len)),
    ) {
        let s: Block24Set = blocks.iter().map(|&b| Block24(b)).collect();
        let expected = s.iter().filter(|b| p.contains(b.base())).count();
        prop_assert_eq!(s.count_in_prefix(p), expected);
    }
}
