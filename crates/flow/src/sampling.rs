//! Deterministic 1-in-N packet sampling.
//!
//! A vantage point samples each transiting packet independently with
//! probability `1/rate` (random packet sampling, the sFlow/IPFIX model the
//! paper's IXPs use). For a burst of `n` identical packets the number of
//! sampled packets is therefore `Binomial(n, 1/rate)`; [`binomial`]
//! implements that draw with an algorithm whose cost is proportional to
//! the number of *successes*, so sampling a million-packet burst at
//! rate 10 000 costs ~100 RNG calls, not a million.
//!
//! The same primitive implements the paper's Figure 10 sub-sampling
//! experiment: thinning already-sampled flow records by a factor `k` is
//! one more binomial draw with `p = 1/k`.

use crate::record::{FlowIntent, FlowRecord};
use rand::RngExt;

/// Draws from `Binomial(n, p)`.
///
/// Strategy:
/// - `p == 0` or `n == 0` → 0; `p >= 1` → `n`.
/// - Small `n` (≤ 64): direct Bernoulli loop.
/// - Otherwise: geometric skipping — repeatedly draw the gap to the next
///   success from `Geometric(p)`; expected cost is `n·p` draws. For the
///   small sampling probabilities of interest (1/1 000 .. 1/100 000) this
///   is orders of magnitude cheaper than per-trial simulation and exact
///   (no normal approximation), which keeps the sampler's statistics
///   faithful at the distribution tails the inference pipeline cares
///   about (blocks that receive very few samples).
pub fn binomial<R: RngExt>(rng: &mut R, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut successes = 0;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                successes += 1;
            }
        }
        return successes;
    }
    // Geometric skipping. The gap G to the next success (counting the
    // success itself) satisfies P(G = g) = (1-p)^(g-1) p; draw it by
    // inversion: G = ceil(ln(U) / ln(1-p)).
    let log_q = (1.0 - p).ln(); // negative, finite for p < 1
    let mut successes = 0u64;
    let mut position = 0u64;
    loop {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / log_q).ceil();
        if !gap.is_finite() || gap > (n - position) as f64 {
            return successes;
        }
        position += gap as u64;
        if position > n {
            return successes;
        }
        successes += 1;
        if position == n {
            return successes;
        }
    }
}

/// A deterministic 1-in-`rate` packet sampler.
#[derive(Debug, Clone)]
pub struct Sampler<R: RngExt> {
    rate: u32,
    rng: R,
}

impl<R: RngExt> Sampler<R> {
    /// Creates a sampler. `rate == 1` captures everything (a telescope's
    /// unsampled view); larger rates model IXP fabric sampling.
    pub fn new(rate: u32, rng: R) -> Self {
        assert!(rate >= 1, "sampling rate must be at least 1");
        Sampler { rate, rng }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Samples one intent; `None` if no packet of the burst was sampled.
    pub fn sample(&mut self, intent: &FlowIntent) -> Option<FlowRecord> {
        let sampled = if self.rate == 1 {
            intent.packets
        } else {
            binomial(&mut self.rng, intent.packets, 1.0 / f64::from(self.rate))
        };
        if sampled == 0 {
            return None;
        }
        Some(FlowRecord {
            start: intent.start,
            src: intent.src,
            dst: intent.dst,
            src_port: intent.src_port,
            dst_port: intent.dst_port,
            protocol: intent.protocol,
            tcp_flags: intent.tcp_flags,
            packets: sampled,
            octets: sampled * u64::from(intent.packet_len),
        })
    }
}

/// Thins already-sampled flow records by `factor`, emulating the paper's
/// "consider only every k-th packet" sub-sampling (Section 7.3). Each
/// record's packet count is re-drawn as `Binomial(packets, 1/factor)`;
/// octets scale proportionally (packets within one record share a size);
/// records left with zero packets disappear.
pub fn thin_records<R: RngExt>(
    records: &[FlowRecord],
    factor: u32,
    rng: &mut R,
) -> Vec<FlowRecord> {
    assert!(factor >= 1);
    if factor == 1 {
        return records.to_vec();
    }
    let p = 1.0 / f64::from(factor);
    records
        .iter()
        .filter_map(|r| {
            let kept = binomial(rng, r.packets, p);
            (kept > 0).then(|| {
                let per_pkt = r.octets / r.packets;
                FlowRecord {
                    packets: kept,
                    octets: kept * per_pkt,
                    ..*r
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::{Ipv4, SimTime};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
        assert_eq!(binomial(&mut r, 100, 1.5), 100);
    }

    #[test]
    fn binomial_mean_small_n() {
        let mut r = rng();
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| binomial(&mut r, 20, 0.3)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean} should be ≈ 6");
    }

    #[test]
    fn binomial_mean_geometric_path() {
        let mut r = rng();
        let trials = 2_000;
        let total: u64 = (0..trials).map(|_| binomial(&mut r, 100_000, 0.001)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean} should be ≈ 100");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(binomial(&mut r, 70, 0.9) <= 70);
            assert!(binomial(&mut r, 1_000, 0.5) <= 1_000);
        }
    }

    #[test]
    fn binomial_variance_geometric_path() {
        let mut r = rng();
        let trials = 5_000usize;
        let draws: Vec<u64> = (0..trials)
            .map(|_| binomial(&mut r, 10_000, 0.01))
            .collect();
        let mean = draws.iter().sum::<u64>() as f64 / trials as f64;
        let var = draws
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / trials as f64;
        // Binomial(10000, 0.01): mean 100, variance 99.
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var - 99.0).abs() < 10.0, "variance {var}");
    }

    fn intent(packets: u64) -> FlowIntent {
        FlowIntent::tcp_syn(
            SimTime(0),
            Ipv4::new(1, 2, 3, 4),
            Ipv4::new(5, 6, 7, 8),
            1000,
            23,
            packets,
        )
    }

    #[test]
    fn rate_one_is_lossless() {
        let mut s = Sampler::new(1, rng());
        let rec = s.sample(&intent(7)).unwrap();
        assert_eq!(rec.packets, 7);
        assert_eq!(rec.octets, 280);
    }

    #[test]
    fn sampling_preserves_mean_volume() {
        let mut s = Sampler::new(100, rng());
        let mut sampled = 0u64;
        let bursts = 10_000;
        for _ in 0..bursts {
            if let Some(rec) = s.sample(&intent(50)) {
                sampled += rec.packets;
            }
        }
        // 10k bursts × 50 pkts at 1/100 → ≈ 5 000 sampled packets.
        let expected = 5_000.0;
        let got = sampled as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "sampled {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn single_packet_burst_rarely_sampled() {
        let mut s = Sampler::new(1000, rng());
        let hits = (0..10_000)
            .filter(|_| s.sample(&intent(1)).is_some())
            .count();
        // Expect ≈ 10 hits; allow wide slack.
        assert!(hits < 50, "got {hits} hits at rate 1000");
    }

    #[test]
    fn thinning_factor_one_is_identity() {
        let records = vec![FlowRecord {
            start: SimTime(0),
            src: Ipv4(1),
            dst: Ipv4(2),
            src_port: 1,
            dst_port: 2,
            protocol: 6,
            tcp_flags: 0x02,
            packets: 5,
            octets: 200,
        }];
        assert_eq!(thin_records(&records, 1, &mut rng()), records);
    }

    #[test]
    fn thinning_reduces_volume_proportionally() {
        let records: Vec<FlowRecord> = (0..5_000)
            .map(|i| FlowRecord {
                start: SimTime(0),
                src: Ipv4(i),
                dst: Ipv4(i + 1),
                src_port: 1,
                dst_port: 2,
                protocol: 6,
                tcp_flags: 0x02,
                packets: 10,
                octets: 400,
            })
            .collect();
        let thinned = thin_records(&records, 10, &mut rng());
        let kept: u64 = thinned.iter().map(|r| r.packets).sum();
        // 50 000 packets thinned at 1/10 → ≈ 5 000.
        assert!((kept as f64 - 5_000.0).abs() < 500.0, "kept {kept}");
        for r in &thinned {
            assert!(r.packets >= 1);
            assert_eq!(r.octets, r.packets * 40);
        }
    }
}
