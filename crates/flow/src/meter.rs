//! The flow metering process (RFC 7011 §2): aggregating sampled packets
//! into flow records with active/idle timeouts.
//!
//! The generators in this workspace emit pre-aggregated intents, but a
//! real IXP exporter sees individual sampled *packets* and must build
//! flow records itself: packets sharing a 5-tuple accumulate into one
//! record until the flow has been idle for `idle_timeout` or active for
//! `active_timeout`, at which point the record is expired and exported.
//! [`FlowMeter`] implements that cache so the workspace can also consume
//! packet-level inputs (e.g. replayed pcaps) through the same pipeline.

use crate::record::FlowRecord;
use mt_types::{FxHashMap, Ipv4, SimDuration, SimTime};

/// A flow cache key: the classic 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
    /// Source port (0 for ICMP).
    pub src_port: u16,
    /// Destination port (0 for ICMP).
    pub dst_port: u16,
    /// IP protocol.
    pub protocol: u8,
}

/// One sampled packet, as the metering process sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeteredPacket {
    /// Observation time.
    pub time: SimTime,
    /// The 5-tuple.
    pub key: FlowKey,
    /// TCP flags (0 for non-TCP).
    pub tcp_flags: u8,
    /// IP total length.
    pub length: u16,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    first: SimTime,
    last: SimTime,
    packets: u64,
    octets: u64,
    tcp_flags: u8,
}

/// A metering cache with active and idle timeouts.
///
/// Call [`FlowMeter::observe`] for each sampled packet (times must be
/// non-decreasing) and collect expired records from the return value;
/// call [`FlowMeter::drain`] at the end of the observation window.
///
/// ```
/// use mt_flow::{FlowKey, FlowMeter, MeteredPacket};
/// use mt_types::{Ipv4, SimDuration, SimTime};
/// let mut meter = FlowMeter::new(SimDuration::secs(60), SimDuration::secs(15));
/// let key = FlowKey {
///     src: Ipv4::new(9, 9, 9, 9), dst: Ipv4::new(20, 0, 0, 1),
///     src_port: 40_000, dst_port: 23, protocol: 6,
/// };
/// for t in 0..3 {
///     let expired = meter.observe(&MeteredPacket {
///         time: SimTime(t), key, tcp_flags: 2, length: 40,
///     });
///     assert!(expired.is_empty());
/// }
/// let records = meter.drain();
/// assert_eq!(records[0].packets, 3);
/// ```
#[derive(Debug)]
pub struct FlowMeter {
    active_timeout: SimDuration,
    idle_timeout: SimDuration,
    /// The flow cache. Keyed by 5-tuple; FxHashMap per the hot-path
    /// hash policy (drain order is made deterministic by sorting, never
    /// by relying on the hasher).
    cache: FxHashMap<FlowKey, CacheEntry>,
    clock: SimTime,
    /// Expiry check bookkeeping: scan the cache at most once per second
    /// of simulated time to keep observe() amortised O(1).
    next_sweep: SimTime,
    /// Records expired but not yet collected.
    expired: Vec<FlowRecord>,
}

impl FlowMeter {
    /// Creates a meter. Typical deployments use 60–300 s active and
    /// 15–60 s idle timeouts.
    pub fn new(active_timeout: SimDuration, idle_timeout: SimDuration) -> FlowMeter {
        assert!(active_timeout.as_secs() > 0 && idle_timeout.as_secs() > 0);
        FlowMeter {
            active_timeout,
            idle_timeout,
            cache: FxHashMap::default(),
            clock: SimTime::EPOCH,
            next_sweep: SimTime::EPOCH,
            expired: Vec::new(),
        }
    }

    /// Number of flows currently in the cache.
    pub fn cached_flows(&self) -> usize {
        self.cache.len()
    }

    /// Observes one sampled packet and returns any records that expired
    /// at this point in time.
    ///
    /// Panics if time moves backwards (the exporter's clock is
    /// monotone).
    pub fn observe(&mut self, packet: &MeteredPacket) -> Vec<FlowRecord> {
        assert!(
            packet.time >= self.clock,
            "packet time {} precedes meter clock {}",
            packet.time,
            self.clock
        );
        self.clock = packet.time;
        if self.clock >= self.next_sweep {
            self.sweep();
            self.next_sweep = self.clock + SimDuration::secs(1);
        }
        let entry = self.cache.entry(packet.key).or_insert_with(|| CacheEntry {
            first: packet.time,
            last: packet.time,
            packets: 0,
            octets: 0,
            tcp_flags: 0,
        });
        // An entry past its active timeout is exported and restarted
        // even when packets keep arriving.
        if packet.time - entry.first >= self.active_timeout && entry.packets > 0 {
            let record = Self::to_record(packet.key, entry);
            *entry = CacheEntry {
                first: packet.time,
                last: packet.time,
                packets: 0,
                octets: 0,
                tcp_flags: 0,
            };
            self.expired.push(record);
        }
        entry.last = packet.time;
        entry.packets += 1;
        entry.octets += u64::from(packet.length);
        entry.tcp_flags |= packet.tcp_flags;
        std::mem::take(&mut self.expired)
    }

    /// Expires idle entries against the current clock.
    fn sweep(&mut self) {
        let clock = self.clock;
        let idle = self.idle_timeout;
        let mut out = Vec::new();
        self.cache.retain(|key, entry| {
            if entry.packets > 0 && clock - entry.last >= idle {
                out.push(Self::to_record(*key, entry));
                false
            } else {
                true
            }
        });
        // HashMap::retain visits entries in storage order; sort each
        // batch so the expiry stream is independent of hash layout.
        Self::sort_records(&mut out);
        self.expired.append(&mut out);
    }

    /// Evicts every flow whose last activity precedes `t`, regardless of
    /// the idle timeout, returning the evicted records in deterministic
    /// order. This is the window-close hook of the streaming ingest
    /// layer: when a time window closes, flows that went quiet before
    /// the cutoff belong to it and must be flushed now, while flows
    /// still active at `t` stay cached for the next window.
    ///
    /// Unlike [`observe`](Self::observe), this does not advance the
    /// meter clock; `t` may lag the newest packet (a watermark typically
    /// does).
    ///
    /// The cutoff is **exclusive**: a flow last touched exactly at `t`
    /// does *not* expire (`entry.last < t`, not `<=`). This matches the
    /// window gate's lateness boundary — a record timestamped exactly at
    /// the watermark is still on time there, so a flow last active
    /// exactly at the watermark must still be live here; the two
    /// boundaries disagreeing by one tick would strand such a flow in a
    /// window that no longer accepts it.
    pub fn expire_before(&mut self, t: SimTime) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        self.cache.retain(|key, entry| {
            if entry.packets > 0 && entry.last < t {
                out.push(Self::to_record(*key, entry));
                false
            } else {
                true
            }
        });
        Self::sort_records(&mut out);
        out
    }

    /// Flushes every cached flow (end of the observation window).
    ///
    /// The returned records are in deterministic order — sorted by
    /// `(start, src, dst, src_port, dst_port, protocol)` — so a drained
    /// window serializes identically run to run regardless of the
    /// cache's internal hash layout.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        let mut out = std::mem::take(&mut self.expired);
        for (key, entry) in self.cache.drain() {
            if entry.packets > 0 {
                out.push(Self::to_record(key, &entry));
            }
        }
        Self::sort_records(&mut out);
        out
    }

    /// The deterministic record ordering used by [`drain`](Self::drain)
    /// and [`expire_before`](Self::expire_before).
    fn sort_records(records: &mut [FlowRecord]) {
        records.sort_by_key(|r| (r.start, r.src, r.dst, r.src_port, r.dst_port, r.protocol));
    }

    fn to_record(key: FlowKey, entry: &CacheEntry) -> FlowRecord {
        FlowRecord {
            start: entry.first,
            src: key.src,
            dst: key.dst,
            src_port: key.src_port,
            dst_port: key.dst_port,
            protocol: key.protocol,
            tcp_flags: entry.tcp_flags,
            packets: entry.packets,
            octets: entry.octets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            src: Ipv4::new(9, 9, 9, n),
            dst: Ipv4::new(20, 0, 0, 1),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
        }
    }

    fn pkt(t: u64, k: FlowKey, flags: u8) -> MeteredPacket {
        MeteredPacket {
            time: SimTime(t),
            key: k,
            tcp_flags: flags,
            length: 40,
        }
    }

    fn meter() -> FlowMeter {
        FlowMeter::new(SimDuration::secs(60), SimDuration::secs(15))
    }

    #[test]
    fn packets_aggregate_into_one_flow() {
        let mut m = meter();
        assert!(m.observe(&pkt(0, key(1), 2)).is_empty());
        assert!(m.observe(&pkt(1, key(1), 2)).is_empty());
        assert!(m.observe(&pkt(2, key(1), 16)).is_empty());
        let records = m.drain();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.packets, 3);
        assert_eq!(r.octets, 120);
        assert_eq!(r.tcp_flags, 2 | 16, "flags are OR-ed");
        assert_eq!(r.start, SimTime(0));
    }

    #[test]
    fn idle_timeout_expires_flows() {
        let mut m = meter();
        m.observe(&pkt(0, key(1), 2));
        // 20 s later, a packet on another flow triggers the sweep.
        let expired = m.observe(&pkt(20, key(2), 2));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].src, key(1).src);
        assert_eq!(m.cached_flows(), 1);
    }

    #[test]
    fn active_timeout_splits_long_flows() {
        let mut m = meter();
        let mut exported = Vec::new();
        for t in (0..=120).step_by(5) {
            exported.extend(m.observe(&pkt(t, key(1), 16)));
        }
        exported.extend(m.drain());
        assert!(
            exported.len() >= 2,
            "a 120 s flow splits at the 60 s active timeout: {exported:?}"
        );
        let total: u64 = exported.iter().map(|r| r.packets).sum();
        assert_eq!(total, 25, "no packet is lost across splits");
    }

    #[test]
    fn distinct_tuples_stay_distinct() {
        let mut m = meter();
        m.observe(&pkt(0, key(1), 2));
        m.observe(&pkt(0, key(2), 2));
        let mut other = key(1);
        other.dst_port = 80;
        m.observe(&pkt(0, other, 2));
        assert_eq!(m.cached_flows(), 3);
        assert_eq!(m.drain().len(), 3);
    }

    #[test]
    #[should_panic(expected = "precedes meter clock")]
    fn time_cannot_go_backwards() {
        let mut m = meter();
        m.observe(&pkt(10, key(1), 2));
        m.observe(&pkt(5, key(1), 2));
    }

    #[test]
    fn drain_on_empty_meter() {
        let mut m = meter();
        assert!(m.drain().is_empty());
    }

    #[test]
    fn expire_before_evicts_only_quiet_flows() {
        let mut m = meter();
        m.observe(&pkt(0, key(1), 2));
        m.observe(&pkt(5, key(2), 2));
        m.observe(&pkt(9, key(3), 2));
        // key(1) last seen at t=0, key(2) at t=5: both precede t=6.
        let evicted = m.expire_before(SimTime(6));
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].src, key(1).src);
        assert_eq!(evicted[1].src, key(2).src);
        assert_eq!(m.cached_flows(), 1, "key(3) stays cached");
        // The clock did not advance: observing at t=9 again is fine.
        m.observe(&pkt(9, key(3), 2));
        assert!(m.expire_before(SimTime(6)).is_empty(), "idempotent");
        let rest = m.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].packets, 2);
    }

    /// Regression pin for the cutoff boundary: `expire_before(t)` is
    /// exclusive at `t`, matching the window gate (a record exactly at
    /// the watermark is on time, so a flow last touched exactly at the
    /// watermark is still live).
    #[test]
    fn expire_before_is_exclusive_at_the_cutoff() {
        let mut m = meter();
        m.observe(&pkt(10, key(1), 2));
        assert!(
            m.expire_before(SimTime(10)).is_empty(),
            "last == t survives the cutoff"
        );
        assert_eq!(m.cached_flows(), 1);
        let evicted = m.expire_before(SimTime(11));
        assert_eq!(evicted.len(), 1, "last == t - 1 expires");
        assert_eq!(m.cached_flows(), 0);
    }

    #[test]
    fn expire_before_honours_eviction_over_idle_timeout() {
        let mut m = meter();
        // Flow active 2 s ago — well inside the 15 s idle timeout, but a
        // window closing at t=3 must still flush it.
        m.observe(&pkt(0, key(1), 2));
        m.observe(&pkt(1, key(1), 2));
        let evicted = m.expire_before(SimTime(3));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].packets, 2);
        assert_eq!(m.cached_flows(), 0);
    }

    #[test]
    fn drain_and_expire_ordering_is_deterministic() {
        // Insert many tuples in a scrambled order; the output must come
        // back sorted by (start, src, dst, src_port, dst_port, protocol)
        // no matter how the hash map laid them out.
        let mut scrambled: Vec<u8> = (0..50).collect();
        scrambled.reverse();
        scrambled.swap(3, 40);
        scrambled.swap(11, 27);
        let mut m = meter();
        for (i, n) in scrambled.iter().enumerate() {
            m.observe(&pkt(i as u64 / 10, key(*n), 2));
        }
        let drained = m.drain();
        assert_eq!(drained.len(), 50);
        let mut sorted = drained.clone();
        sorted.sort_by_key(|r| (r.start, r.src, r.dst, r.src_port, r.dst_port, r.protocol));
        assert_eq!(drained, sorted, "drain() output is pre-sorted");

        let mut m = meter();
        for n in &scrambled {
            m.observe(&pkt(0, key(*n), 2));
        }
        let evicted = m.expire_before(SimTime(1));
        let mut sorted = evicted.clone();
        sorted.sort_by_key(|r| (r.start, r.src, r.dst, r.src_port, r.dst_port, r.protocol));
        assert_eq!(evicted, sorted, "expire_before() output is pre-sorted");
    }
}
