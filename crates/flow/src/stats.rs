//! Per-/24 traffic accumulators — the aggregates the inference pipeline
//! consumes.
//!
//! For every destination /24 the pipeline needs: protocol packet counts,
//! the TCP packet-size distribution (for the average- and median-size
//! classifiers of Table 3), and per-host receive information (for the
//! dark/unclean/gray classification of step 7, which is defined per IP).
//! For every source /24 it needs originated-packet counts, both per block
//! (step 3, "source address unseen") and per host (graynet detection and
//! the spoofing-tolerance percentile of Section 7.2).
//!
//! Memory matters: a paper-scale day touches millions of /24s across 14
//! vantage points, so per-host state is kept as fixed 256-bit sets
//! ([`HostSet`], 32 bytes) rather than per-host counters. The price is
//! that the "host saw a large TCP packet" bit is thresholded at ingest
//! time ([`TrafficStats::with_size_threshold`]); the block-level size
//! *histogram* is exact, so the Table 3 threshold sweep is unaffected.
//!
//! All counts are *sampled* counts; the pipeline scales by the vantage
//! point's sampling rate where absolute volumes matter (the 1.7 M
//! packets/day filter).

use crate::record::FlowRecord;
use mt_types::{Block24, FxHashMap};
use mt_wire::IpProtocol;

/// Read access to per-/24 traffic aggregates, independent of how they are
/// stored.
///
/// The flat [`TrafficStats`], the columnar
/// [`ColumnarStats`](crate::columnar::ColumnarStats), and the sharded
/// [`ShardedTrafficStats`](crate::sharded::ShardedTrafficStats) implement
/// this, so consumers (the inference pipeline, spoofing-tolerance
/// estimation, baselines) can run against any representation without
/// forcing a merge first.
///
/// Accessors hand out by-value view structs ([`DstRef`], [`SrcRef`])
/// rather than `&DstBlockStats`: a struct-of-arrays backend has no
/// materialized `DstBlockStats` to lend out, and the views are cheap
/// `Copy` aggregates (counters and 32-byte host sets by value, the size
/// histogram by slice reference).
pub trait TrafficView {
    /// Stats for traffic destined to `block`.
    fn dst(&self, block: Block24) -> Option<DstRef<'_>>;

    /// Stats for traffic originated by `block`.
    fn src(&self, block: Block24) -> Option<SrcRef>;

    /// Iterates over all destination blocks with sampled traffic, in
    /// storage order (unordered).
    fn iter_dst(&self) -> impl Iterator<Item = (Block24, DstRef<'_>)>;

    /// Iterates over all source blocks with sampled traffic, in storage
    /// order (unordered).
    fn iter_src(&self) -> impl Iterator<Item = (Block24, SrcRef)>;

    /// Number of distinct destination /24s seen.
    fn dst_block_count(&self) -> usize;

    /// Number of distinct source /24s seen.
    fn src_block_count(&self) -> usize;

    /// The per-host "large packet" size threshold the stats were built
    /// with.
    fn size_threshold(&self) -> u16;

    /// Number of flow records ingested.
    fn total_flows(&self) -> u64;

    /// Sampled packets across all records.
    fn total_packets(&self) -> u64;

    /// Sampled octets across all records.
    fn total_octets(&self) -> u64;
}

/// The default per-packet size (bytes) above which a TCP packet marks its
/// destination host as having seen "large" traffic. Deliberately looser
/// than the 44-byte *block-average* threshold: SYNs with options (48–60
/// bytes) are IBR-compatible and must not disqualify a host, while
/// payload-carrying packets (≥ ~100 bytes) indicate a conversation.
pub const DEFAULT_SIZE_THRESHOLD: u16 = 60;

/// A set of hosts (last-octet values) within one /24, as a 256-bit map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostSet([u64; 4]);

impl HostSet {
    /// The empty set.
    pub const EMPTY: HostSet = HostSet([0; 4]);

    /// Inserts a host.
    pub fn insert(&mut self, host: u8) {
        self.0[(host / 64) as usize] |= 1 << (host % 64);
    }

    /// Membership test.
    pub fn contains(&self, host: u8) -> bool {
        self.0[(host / 64) as usize] & (1 << (host % 64)) != 0
    }

    /// Number of hosts in the set.
    pub fn len(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Hosts present in `self` but not in `other`.
    pub fn difference(&self, other: &HostSet) -> HostSet {
        HostSet([
            self.0[0] & !other.0[0],
            self.0[1] & !other.0[1],
            self.0[2] & !other.0[2],
            self.0[3] & !other.0[3],
        ])
    }

    /// Set union.
    pub fn union(&self, other: &HostSet) -> HostSet {
        HostSet([
            self.0[0] | other.0[0],
            self.0[1] | other.0[1],
            self.0[2] | other.0[2],
            self.0[3] | other.0[3],
        ])
    }

    /// Set intersection.
    pub fn intersection(&self, other: &HostSet) -> HostSet {
        HostSet([
            self.0[0] & other.0[0],
            self.0[1] & other.0[1],
            self.0[2] & other.0[2],
            self.0[3] & other.0[3],
        ])
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &HostSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    /// Iterates over the hosts in ascending order.
    ///
    /// Walks the four 64-bit words with `trailing_zeros`, visiting only
    /// set bits instead of probing all 256 positions — sparse sets (the
    /// common case: a handful of active hosts per /24) iterate in a few
    /// steps.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &word)| {
            std::iter::successors((word != 0).then_some(word), |&bits| {
                let rest = bits & (bits - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |bits| (w as u32 * 64 + bits.trailing_zeros()) as u8)
        })
    }

    /// Rebuilds a set from its raw 256-bit representation — how the
    /// columnar store and the results-store codec lay the set out as
    /// four flat u64 column words.
    pub fn from_words(words: [u64; 4]) -> HostSet {
        HostSet(words)
    }

    /// The raw 256-bit representation: four u64 column words, the
    /// interchange form of [`from_words`](Self::from_words).
    pub fn to_words(self) -> [u64; 4] {
        self.0
    }
}

/// A by-value read view of one destination /24's aggregates.
///
/// What [`TrafficView`] hands out instead of `&DstBlockStats`: counters
/// and host sets are copied (40 + 96 bytes), the TCP size histogram is
/// borrowed from the backing store. Map-backed stats produce it via
/// [`DstBlockStats::as_ref`]; the columnar store assembles it straight
/// from its columns.
#[derive(Debug, Clone, Copy)]
pub struct DstRef<'a> {
    /// Sampled TCP packets.
    pub tcp_packets: u64,
    /// Sampled TCP octets.
    pub tcp_octets: u64,
    /// Sampled UDP packets.
    pub udp_packets: u64,
    /// Sampled ICMP packets.
    pub icmp_packets: u64,
    /// Sampled packets of other protocols.
    pub other_packets: u64,
    /// Hosts that received any sampled packet.
    pub received: HostSet,
    /// Hosts that received sampled TCP.
    pub received_tcp: HostSet,
    /// Hosts that received a sampled TCP packet larger than the ingest
    /// size threshold.
    pub received_big_tcp: HostSet,
    /// TCP packet-size histogram, sorted by size.
    pub(crate) tcp_sizes: &'a [(u16, u64)],
}

impl<'a> DstRef<'a> {
    /// Sampled packets across all protocols.
    pub fn total_packets(&self) -> u64 {
        self.tcp_packets + self.udp_packets + self.icmp_packets + self.other_packets
    }

    /// Average TCP packet size destined to the block.
    pub fn avg_tcp_size(&self) -> Option<f64> {
        (self.tcp_packets > 0).then(|| self.tcp_octets as f64 / self.tcp_packets as f64)
    }

    /// Weighted median TCP packet size destined to the block (lower
    /// median for even counts).
    pub fn median_tcp_size(&self) -> Option<u16> {
        if self.tcp_packets == 0 {
            return None;
        }
        let half = self.tcp_packets.div_ceil(2);
        let mut seen = 0;
        for &(size, count) in self.tcp_sizes {
            seen += count;
            if seen >= half {
                return Some(size);
            }
        }
        // The histogram counts sum to tcp_packets, so the loop always
        // crosses `half`; the largest recorded size is the correct
        // answer if that invariant ever slipped, and it keeps this
        // accessor total instead of a panic path.
        self.tcp_sizes.last().map(|&(size, _)| size)
    }

    /// The TCP size histogram, sorted by size.
    pub fn tcp_size_histogram(&self) -> &'a [(u16, u64)] {
        self.tcp_sizes
    }
}

/// A by-value read view of one source /24's aggregates.
///
/// Fully owned (`Copy`, no borrow): a packet counter plus the 32-byte
/// originating-host set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcRef {
    /// Sampled packets originated by the block.
    pub packets: u64,
    /// Hosts seen originating traffic.
    pub originating: HostSet,
}

impl SrcRef {
    /// Number of distinct hosts seen originating traffic.
    pub fn active_hosts(&self) -> u32 {
        self.originating.len()
    }
}

/// Receive-side statistics for one destination /24.
#[derive(Debug, Clone, Default)]
pub struct DstBlockStats {
    /// Sampled TCP packets.
    pub tcp_packets: u64,
    /// Sampled TCP octets.
    pub tcp_octets: u64,
    /// Sampled UDP packets.
    pub udp_packets: u64,
    /// Sampled ICMP packets.
    pub icmp_packets: u64,
    /// Sampled packets of other protocols.
    pub other_packets: u64,
    /// Hosts that received any sampled packet.
    pub received: HostSet,
    /// Hosts that received sampled TCP.
    pub received_tcp: HostSet,
    /// Hosts that received a sampled TCP packet larger than the ingest
    /// size threshold.
    pub received_big_tcp: HostSet,
    /// TCP packet-size histogram: `(size, sampled packets)`, sorted by
    /// size. IBR has very few distinct sizes, so this stays tiny.
    tcp_sizes: Vec<(u16, u64)>,
}

impl DstBlockStats {
    /// The by-value [`TrafficView`] view of these aggregates.
    pub fn as_ref(&self) -> DstRef<'_> {
        DstRef {
            tcp_packets: self.tcp_packets,
            tcp_octets: self.tcp_octets,
            udp_packets: self.udp_packets,
            icmp_packets: self.icmp_packets,
            other_packets: self.other_packets,
            received: self.received,
            received_tcp: self.received_tcp,
            received_big_tcp: self.received_big_tcp,
            tcp_sizes: &self.tcp_sizes,
        }
    }

    /// Sampled packets across all protocols.
    pub fn total_packets(&self) -> u64 {
        self.as_ref().total_packets()
    }

    /// Average TCP packet size destined to the block.
    pub fn avg_tcp_size(&self) -> Option<f64> {
        self.as_ref().avg_tcp_size()
    }

    /// Weighted median TCP packet size destined to the block (lower
    /// median for even counts).
    pub fn median_tcp_size(&self) -> Option<u16> {
        self.as_ref().median_tcp_size()
    }

    /// The TCP size histogram, sorted by size.
    pub fn tcp_size_histogram(&self) -> &[(u16, u64)] {
        &self.tcp_sizes
    }

    pub(crate) fn ingest(
        &mut self,
        host: u8,
        protocol: u8,
        packets: u64,
        octets: u64,
        big_threshold: u16,
    ) {
        self.received.insert(host);
        match IpProtocol::from_u8(protocol) {
            Some(IpProtocol::Tcp) => {
                self.tcp_packets += packets;
                self.tcp_octets += octets;
                self.received_tcp.insert(host);
                // Averages beyond u16 range (jumbo frames) saturate
                // into the top histogram bin instead of wrapping.
                let size = u16::try_from(octets / packets).unwrap_or(u16::MAX);
                if size > big_threshold {
                    self.received_big_tcp.insert(host);
                }
                match self.tcp_sizes.binary_search_by_key(&size, |&(s, _)| s) {
                    Ok(i) => self.tcp_sizes[i].1 += packets,
                    Err(i) => self.tcp_sizes.insert(i, (size, packets)),
                }
            }
            Some(IpProtocol::Udp) => self.udp_packets += packets,
            Some(IpProtocol::Icmp) => self.icmp_packets += packets,
            None => self.other_packets += packets,
        }
    }

    pub(crate) fn ingest_sweep(
        &mut self,
        protocol: u8,
        packets: u64,
        octets: u64,
        big_threshold: u16,
        host_seed: u64,
    ) {
        // A sweep spreads `packets` one-per-host over pseudo-random hosts
        // of the block (a scanner probing the whole /24). Counters are
        // batched; host bits are set individually, capped at 256.
        let size = u16::try_from(octets / packets).unwrap_or(u16::MAX);
        let is_tcp = protocol == u8::from(IpProtocol::Tcp);
        for i in 0..packets.min(256) {
            let host = (mt_types::mix::mix3(host_seed, i, 0x5eed) & 0xff) as u8;
            self.received.insert(host);
            if is_tcp {
                self.received_tcp.insert(host);
                if size > big_threshold {
                    self.received_big_tcp.insert(host);
                }
            }
        }
        match IpProtocol::from_u8(protocol) {
            Some(IpProtocol::Tcp) => {
                self.tcp_packets += packets;
                self.tcp_octets += octets;
                match self.tcp_sizes.binary_search_by_key(&size, |&(s, _)| s) {
                    Ok(i) => self.tcp_sizes[i].1 += packets,
                    Err(i) => self.tcp_sizes.insert(i, (size, packets)),
                }
            }
            Some(IpProtocol::Udp) => self.udp_packets += packets,
            Some(IpProtocol::Icmp) => self.icmp_packets += packets,
            None => self.other_packets += packets,
        }
    }

    pub(crate) fn merge(&mut self, other: &DstBlockStats) {
        self.merge_ref(other.as_ref());
    }

    /// Merges a by-value view into this accumulator — the bridge the
    /// columnar ↔ map conversions use in both directions.
    pub(crate) fn merge_ref(&mut self, other: DstRef<'_>) {
        self.tcp_packets += other.tcp_packets;
        self.tcp_octets += other.tcp_octets;
        self.udp_packets += other.udp_packets;
        self.icmp_packets += other.icmp_packets;
        self.other_packets += other.other_packets;
        self.received.union_with(&other.received);
        self.received_tcp.union_with(&other.received_tcp);
        self.received_big_tcp.union_with(&other.received_big_tcp);
        for &(size, count) in other.tcp_sizes {
            match self.tcp_sizes.binary_search_by_key(&size, |&(s, _)| s) {
                Ok(i) => self.tcp_sizes[i].1 += count,
                Err(i) => self.tcp_sizes.insert(i, (size, count)),
            }
        }
    }
}

/// Send-side statistics for one source /24.
#[derive(Debug, Clone, Default)]
pub struct SrcBlockStats {
    /// Sampled packets originated by the block.
    pub packets: u64,
    /// Hosts seen originating traffic.
    pub originating: HostSet,
}

impl SrcBlockStats {
    /// The by-value [`TrafficView`] view of these aggregates.
    pub fn as_ref(&self) -> SrcRef {
        SrcRef {
            packets: self.packets,
            originating: self.originating,
        }
    }

    /// Number of distinct hosts seen originating traffic.
    pub fn active_hosts(&self) -> u32 {
        self.originating.len()
    }

    pub(crate) fn ingest(&mut self, host: u8, packets: u64) {
        self.packets += packets;
        self.originating.insert(host);
    }

    pub(crate) fn merge(&mut self, other: &SrcBlockStats) {
        self.merge_ref(other.as_ref());
    }

    /// Merges a by-value view into this accumulator.
    pub(crate) fn merge_ref(&mut self, other: SrcRef) {
        self.packets += other.packets;
        self.originating.union_with(&other.originating);
    }
}

/// Aggregated per-/24 view of a set of sampled flow records.
#[derive(Debug, Clone)]
pub struct TrafficStats {
    // /24 indices are well-mixed u32s from our own pipeline, so the
    // hot maps use the fast deterministic hasher instead of SipHash.
    // check: allow(columnar_policy, "the map backend is the proptest oracle the columnar store is verified against")
    per_dst: FxHashMap<u32, DstBlockStats>,
    // check: allow(columnar_policy, "the map backend is the proptest oracle the columnar store is verified against")
    per_src: FxHashMap<u32, SrcBlockStats>,
    size_threshold: u16,
    /// Number of flow records ingested.
    pub total_flows: u64,
    /// Sampled packets across all records.
    pub total_packets: u64,
    /// Sampled octets across all records.
    pub total_octets: u64,
}

impl Default for TrafficStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TrafficStats {
    /// Creates an empty accumulator with the default 44-byte "large
    /// packet" host threshold.
    pub fn new() -> Self {
        Self::with_size_threshold(DEFAULT_SIZE_THRESHOLD)
    }

    /// Creates an empty accumulator with a custom per-host size
    /// threshold (must match the pipeline's classification threshold).
    pub fn with_size_threshold(size_threshold: u16) -> Self {
        TrafficStats {
            per_dst: FxHashMap::default(),
            per_src: FxHashMap::default(),
            size_threshold,
            total_flows: 0,
            total_packets: 0,
            total_octets: 0,
        }
    }

    /// The per-host size threshold this accumulator was built with.
    pub fn size_threshold(&self) -> u16 {
        self.size_threshold
    }

    /// Builds stats from a slice of records.
    pub fn from_records(records: &[FlowRecord]) -> Self {
        let mut s = Self::new();
        for r in records {
            s.ingest(r);
        }
        s
    }

    /// Ingests one record.
    pub fn ingest(&mut self, r: &FlowRecord) {
        self.ingest_dst_half(r, None);
        self.ingest_src_half(r);
    }

    /// Ingests a host-sweep record: `r.packets` packets of identical size
    /// spread one-per-host over pseudo-random hosts of the destination
    /// /24 (derived from `host_seed`). Used for scan traffic, where the
    /// per-host fan-out matters for classification but materializing one
    /// record per host would dominate runtime.
    pub fn ingest_sweep(&mut self, r: &FlowRecord, host_seed: u64) {
        self.ingest_dst_half(r, Some(host_seed));
        self.ingest_src_half(r);
    }

    /// The destination-side half of an ingest: record totals plus the
    /// per-dst-/24 update (a sweep when `sweep_seed` is set). Split from
    /// [`ingest`](Self::ingest) so a sharded accumulator can route the two
    /// halves of one record to the shards owning its dst and src blocks.
    pub(crate) fn ingest_dst_half(&mut self, r: &FlowRecord, sweep_seed: Option<u64>) {
        debug_assert!(r.packets > 0, "flow records carry at least one packet");
        self.total_flows += 1;
        self.total_packets += r.packets;
        self.total_octets += r.octets;
        let dst = self.per_dst.entry(r.dst.block24_index()).or_default();
        match sweep_seed {
            None => dst.ingest(
                r.dst.host_in_block24(),
                r.protocol,
                r.packets,
                r.octets,
                self.size_threshold,
            ),
            Some(seed) => {
                dst.ingest_sweep(r.protocol, r.packets, r.octets, self.size_threshold, seed)
            }
        }
    }

    /// The source-side half of an ingest (no totals; those ride with the
    /// destination half so shard sums reproduce serial totals exactly).
    pub(crate) fn ingest_src_half(&mut self, r: &FlowRecord) {
        self.per_src
            .entry(r.src.block24_index())
            .or_default()
            .ingest(r.src.host_in_block24(), r.packets);
    }

    /// Stats for traffic destined to `block`.
    pub fn dst(&self, block: Block24) -> Option<&DstBlockStats> {
        self.per_dst.get(&block.0)
    }

    /// Stats for traffic originated by `block`.
    pub fn src(&self, block: Block24) -> Option<&SrcBlockStats> {
        self.per_src.get(&block.0)
    }

    /// Iterates over all destination blocks with sampled traffic.
    pub fn iter_dst(&self) -> impl Iterator<Item = (Block24, &DstBlockStats)> {
        self.per_dst.iter().map(|(&b, s)| (Block24(b), s))
    }

    /// Iterates over all source blocks with sampled traffic.
    pub fn iter_src(&self) -> impl Iterator<Item = (Block24, &SrcBlockStats)> {
        self.per_src.iter().map(|(&b, s)| (Block24(b), s))
    }

    /// Number of distinct destination /24s seen.
    pub fn dst_block_count(&self) -> usize {
        self.per_dst.len()
    }

    /// Number of distinct source /24s seen.
    pub fn src_block_count(&self) -> usize {
        self.per_src.len()
    }

    /// Merges another accumulator into this one (multi-day windows,
    /// multi-vantage-point unions, parallel shard reduction). Both sides
    /// must share the same size threshold.
    pub fn merge(&mut self, other: &TrafficStats) {
        assert_eq!(
            self.size_threshold, other.size_threshold,
            "merging stats with different host-size thresholds"
        );
        self.total_flows += other.total_flows;
        self.total_packets += other.total_packets;
        self.total_octets += other.total_octets;
        for (&b, s) in &other.per_dst {
            self.per_dst.entry(b).or_default().merge(s);
        }
        for (&b, s) in &other.per_src {
            self.per_src.entry(b).or_default().merge(s);
        }
    }

    /// Moves all blocks of `other` into `self`, assuming the key spaces
    /// are disjoint (shard reassembly). Equivalent to
    /// [`merge`](Self::merge) but consumes `other` and reuses its
    /// allocations instead of cloning every block.
    pub(crate) fn absorb_disjoint(&mut self, other: TrafficStats) {
        assert_eq!(
            self.size_threshold, other.size_threshold,
            "merging stats with different host-size thresholds"
        );
        self.total_flows += other.total_flows;
        self.total_packets += other.total_packets;
        self.total_octets += other.total_octets;
        if self.per_dst.is_empty() && self.per_src.is_empty() {
            self.per_dst = other.per_dst;
            self.per_src = other.per_src;
            return;
        }
        for (b, s) in other.per_dst {
            debug_assert!(!self.per_dst.contains_key(&b), "shard key spaces overlap");
            self.per_dst.insert(b, s);
        }
        for (b, s) in other.per_src {
            debug_assert!(!self.per_src.contains_key(&b), "shard key spaces overlap");
            self.per_src.insert(b, s);
        }
    }

    /// Materializes any [`TrafficView`] into a flat map-backed
    /// accumulator — the escape hatch the columnar store uses when a
    /// call site insists on the unsharded hashmap representation.
    pub fn from_view<V: TrafficView>(v: &V) -> TrafficStats {
        let mut out = TrafficStats::with_size_threshold(v.size_threshold());
        out.total_flows = v.total_flows();
        out.total_packets = v.total_packets();
        out.total_octets = v.total_octets();
        for (b, d) in v.iter_dst() {
            out.per_dst.entry(b.0).or_default().merge_ref(d);
        }
        for (b, s) in v.iter_src() {
            out.per_src.entry(b.0).or_default().merge_ref(s);
        }
        out
    }

    /// Merges one destination row view into the accumulator — the
    /// import half of the column-slice interchange (`crate::export`).
    pub(crate) fn merge_dst_view(&mut self, block: Block24, d: DstRef<'_>) {
        self.per_dst.entry(block.0).or_default().merge_ref(d);
    }

    /// Merges one source row view into the accumulator — the import
    /// half of the column-slice interchange (`crate::export`).
    pub(crate) fn merge_src_view(&mut self, block: Block24, s: SrcRef) {
        self.per_src.entry(block.0).or_default().merge_ref(s);
    }

    /// Merges only the blocks of `other` whose index satisfies `keep`,
    /// optionally including `other`'s record totals. Lets a sharded
    /// reduction project each input onto one shard's key space; exactly
    /// one shard per input must take the totals so shard sums stay equal
    /// to the serial merge.
    pub(crate) fn merge_projection(
        &mut self,
        other: &TrafficStats,
        keep: impl Fn(u32) -> bool,
        include_totals: bool,
    ) {
        assert_eq!(
            self.size_threshold, other.size_threshold,
            "merging stats with different host-size thresholds"
        );
        if include_totals {
            self.total_flows += other.total_flows;
            self.total_packets += other.total_packets;
            self.total_octets += other.total_octets;
        }
        for (&b, s) in &other.per_dst {
            if keep(b) {
                self.per_dst.entry(b).or_default().merge(s);
            }
        }
        for (&b, s) in &other.per_src {
            if keep(b) {
                self.per_src.entry(b).or_default().merge(s);
            }
        }
    }
}

impl TrafficView for TrafficStats {
    fn dst(&self, block: Block24) -> Option<DstRef<'_>> {
        TrafficStats::dst(self, block).map(DstBlockStats::as_ref)
    }

    fn src(&self, block: Block24) -> Option<SrcRef> {
        TrafficStats::src(self, block).map(SrcBlockStats::as_ref)
    }

    fn iter_dst(&self) -> impl Iterator<Item = (Block24, DstRef<'_>)> {
        TrafficStats::iter_dst(self).map(|(b, d)| (b, d.as_ref()))
    }

    fn iter_src(&self) -> impl Iterator<Item = (Block24, SrcRef)> {
        TrafficStats::iter_src(self).map(|(b, s)| (b, s.as_ref()))
    }

    fn dst_block_count(&self) -> usize {
        TrafficStats::dst_block_count(self)
    }

    fn src_block_count(&self) -> usize {
        TrafficStats::src_block_count(self)
    }

    fn size_threshold(&self) -> u16 {
        TrafficStats::size_threshold(self)
    }

    fn total_flows(&self) -> u64 {
        self.total_flows
    }

    fn total_packets(&self) -> u64 {
        self.total_packets
    }

    fn total_octets(&self) -> u64 {
        self.total_octets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::{Ipv4, SimTime};

    fn flow(src: Ipv4, dst: Ipv4, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src,
            dst,
            src_port: 1000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: if proto == 6 { 0x02 } else { 0 },
            packets,
            octets: packets * size,
        }
    }

    const SRC: Ipv4 = Ipv4::new(9, 0, 0, 1);
    const DST_A: Ipv4 = Ipv4::new(10, 0, 0, 5);
    const DST_B: Ipv4 = Ipv4::new(10, 0, 0, 9);

    #[test]
    fn hostset_basics() {
        let mut s = HostSet::default();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(255);
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert_eq!(s.iter().collect::<Vec<u8>>(), vec![0, 63, 64, 255]);
        let mut t = HostSet::default();
        t.insert(63);
        t.insert(100);
        assert_eq!(s.difference(&t).len(), 3);
        assert_eq!(s.union(&t).len(), 5);
        assert_eq!(s.intersection(&t).len(), 1);
    }

    #[test]
    fn hostset_iter_sparse_dense_and_boundaries() {
        // Sparse: one bit per word, including both word boundaries.
        let mut sparse = HostSet::default();
        for h in [0u8, 63, 64, 127, 128, 191, 192, 255] {
            sparse.insert(h);
        }
        assert_eq!(
            sparse.iter().collect::<Vec<u8>>(),
            vec![0, 63, 64, 127, 128, 191, 192, 255]
        );

        // Dense: every host — iteration must cover the full domain in order.
        let mut dense = HostSet::default();
        for h in 0..=255u8 {
            dense.insert(h);
        }
        let all: Vec<u8> = dense.iter().collect();
        assert_eq!(all.len(), 256);
        assert!(all.iter().copied().eq(0..=255));

        // Empty set yields nothing.
        assert_eq!(HostSet::EMPTY.iter().count(), 0);

        // Cross-check against a membership probe over the whole domain.
        let mut mixed = HostSet::default();
        for h in (0..=255u8).filter(|h| h % 7 == 3) {
            mixed.insert(h);
        }
        let probed: Vec<u8> = (0u16..256)
            .filter_map(|h| mixed.contains(h as u8).then_some(h as u8))
            .collect();
        assert_eq!(mixed.iter().collect::<Vec<u8>>(), probed);
    }

    #[test]
    fn ingest_accumulates_by_protocol() {
        let mut s = TrafficStats::new();
        s.ingest(&flow(SRC, DST_A, 6, 3, 40));
        s.ingest(&flow(SRC, DST_A, 17, 2, 100));
        s.ingest(&flow(SRC, DST_A, 1, 1, 64));
        s.ingest(&flow(SRC, DST_A, 47, 1, 80)); // GRE → other
        let d = s.dst(Block24::containing(DST_A)).unwrap();
        assert_eq!(d.tcp_packets, 3);
        assert_eq!(d.udp_packets, 2);
        assert_eq!(d.icmp_packets, 1);
        assert_eq!(d.other_packets, 1);
        assert_eq!(d.total_packets(), 7);
        assert_eq!(d.avg_tcp_size(), Some(40.0));
    }

    #[test]
    fn per_host_bitmaps() {
        let mut s = TrafficStats::new();
        s.ingest(&flow(SRC, DST_A, 6, 2, 40)); // small TCP to host 5
        s.ingest(&flow(SRC, DST_B, 6, 4, 1500)); // big TCP to host 9
        s.ingest(&flow(SRC, Ipv4::new(10, 0, 0, 11), 17, 1, 100)); // UDP to host 11
        let d = s.dst(Block24::containing(DST_A)).unwrap();
        assert_eq!(d.received.len(), 3);
        assert_eq!(d.received_tcp.iter().collect::<Vec<u8>>(), vec![5, 9]);
        assert_eq!(d.received_big_tcp.iter().collect::<Vec<u8>>(), vec![9]);
        assert!(!d.received_big_tcp.contains(5));
    }

    #[test]
    fn size_threshold_boundary_is_exclusive() {
        // A packet of exactly the threshold size is NOT "big".
        let mut s = TrafficStats::with_size_threshold(44);
        s.ingest(&flow(SRC, DST_A, 6, 1, 44));
        s.ingest(&flow(SRC, DST_B, 6, 1, 45));
        let d = s.dst(Block24::containing(DST_A)).unwrap();
        assert!(!d.received_big_tcp.contains(5));
        assert!(d.received_big_tcp.contains(9));
    }

    #[test]
    fn median_size_weighted() {
        let mut s = TrafficStats::new();
        // 7 packets of 40 bytes, 3 of 1500 → median 40.
        s.ingest(&flow(SRC, DST_A, 6, 7, 40));
        s.ingest(&flow(SRC, DST_A, 6, 3, 1500));
        let d = s.dst(Block24::containing(DST_A)).unwrap();
        assert_eq!(d.median_tcp_size(), Some(40));
        assert!((d.avg_tcp_size().unwrap() - 478.0).abs() < 1.0);
        assert_eq!(d.tcp_size_histogram(), &[(40, 7), (1500, 3)]);
    }

    #[test]
    fn median_of_even_split_takes_lower() {
        let mut s = TrafficStats::new();
        s.ingest(&flow(SRC, DST_A, 6, 5, 40));
        s.ingest(&flow(SRC, DST_A, 6, 5, 1500));
        let d = s.dst(Block24::containing(DST_A)).unwrap();
        assert_eq!(d.median_tcp_size(), Some(40));
    }

    #[test]
    fn oversized_average_saturates_instead_of_truncating() {
        // 100 000-byte average packets: `as u16` used to wrap this to
        // 34 464, filing jumbo traffic under a bogus mid-range size.
        // It must saturate at u16::MAX and still count as "big" TCP.
        let mut s = TrafficStats::new();
        s.ingest(&flow(SRC, DST_A, 6, 1, 100_000));
        s.ingest_sweep(&flow(SRC, DST_B, 6, 4, 100_000), 0x5eed);
        let d = s.dst(Block24::containing(DST_A)).unwrap();
        assert_eq!(d.tcp_size_histogram(), &[(u16::MAX, 5)]);
        assert_eq!(d.median_tcp_size(), Some(u16::MAX));
        assert!(d.received_big_tcp.contains(DST_A.host_in_block24()));
        assert_eq!(d.tcp_octets, 500_000, "octet totals stay exact");
    }

    #[test]
    fn source_side_tracking() {
        let mut s = TrafficStats::new();
        s.ingest(&flow(SRC, DST_A, 6, 3, 40));
        s.ingest(&flow(Ipv4::new(9, 0, 0, 2), DST_A, 6, 5, 40));
        let src = s.src(Block24::containing(SRC)).unwrap();
        assert_eq!(src.packets, 8);
        assert_eq!(src.active_hosts(), 2);
        assert!(src.originating.contains(1));
        assert!(src.originating.contains(2));
        assert!(!src.originating.contains(3));
    }

    #[test]
    fn merge_equals_combined_ingest() {
        let flows_a = [flow(SRC, DST_A, 6, 3, 40), flow(SRC, DST_B, 17, 2, 100)];
        let flows_b = [flow(SRC, DST_A, 6, 4, 48), flow(DST_A, SRC, 6, 1, 1500)];
        let mut merged = TrafficStats::from_records(&flows_a);
        merged.merge(&TrafficStats::from_records(&flows_b));
        let all: Vec<FlowRecord> = flows_a.iter().chain(&flows_b).copied().collect();
        let combined = TrafficStats::from_records(&all);
        assert_eq!(merged.total_flows, combined.total_flows);
        assert_eq!(merged.total_packets, combined.total_packets);
        let b = Block24::containing(DST_A);
        assert_eq!(
            merged.dst(b).unwrap().tcp_packets,
            combined.dst(b).unwrap().tcp_packets
        );
        assert_eq!(
            merged.dst(b).unwrap().median_tcp_size(),
            combined.dst(b).unwrap().median_tcp_size()
        );
        assert_eq!(
            merged.dst(b).unwrap().received,
            combined.dst(b).unwrap().received
        );
        assert_eq!(
            merged.src(b).unwrap().packets,
            combined.src(b).unwrap().packets
        );
    }

    #[test]
    #[should_panic(expected = "different host-size thresholds")]
    fn merge_rejects_mismatched_thresholds() {
        let mut a = TrafficStats::with_size_threshold(40);
        let b = TrafficStats::with_size_threshold(44);
        a.merge(&b);
    }

    #[test]
    fn block_counts() {
        let s = TrafficStats::from_records(&[
            flow(SRC, DST_A, 6, 1, 40),
            flow(SRC, Ipv4::new(11, 0, 0, 1), 6, 1, 40),
        ]);
        assert_eq!(s.dst_block_count(), 2);
        assert_eq!(s.src_block_count(), 1);
    }
}
