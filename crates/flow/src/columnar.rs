//! Columnar per-/24 traffic accumulators — one dense row per announced
//! /24 instead of a hashmap entry per touched /24.
//!
//! At full-IPv4 scale (~16.8M announced /24s) the map-backed
//! [`TrafficStats`] pays a hash probe per record half and an
//! allocation per touched block, and its memory has hashmap constant
//! factors on top of the payload. [`ColumnarStats`] stores the same
//! aggregates struct-of-arrays: flat `u64` columns for the protocol
//! counters, four flat words per row for each 256-bit host set, and a
//! touched-row bitmap per side. The row id of a block is its
//! [`Slot24Index`] slot — a couple of binary searches over the
//! announced intervals — so lookups never hash and the columns are
//! allocated zeroed (`vec![0; n]` maps fresh pages lazily, so resident
//! memory scales with *touched* rows, not announced rows).
//!
//! Two sparse escape hatches keep semantics identical to the map
//! backend:
//!
//! - TCP size histograms are tiny and touch few rows, so they stay in
//!   a map keyed by row id rather than burning a column;
//! - traffic to or from blocks *outside* the announced space (no slot)
//!   falls back to an inner map-backed [`TrafficStats`] overflow store,
//!   so the columnar view still reports every sampled block.
//!
//! A [`ColumnarStats`] can also own just a *range* of rows
//! (`row_base .. row_base + rows`): that is how
//! [`ShardedTrafficStats`](crate::sharded::ShardedTrafficStats) splits
//! the announced space into contiguous slot-range shards. Merges
//! assert the [`Slot24Index::fingerprint`] so two stores are only ever
//! combined when they agree on the block ↔ row mapping.

use std::sync::Arc;

use crate::record::FlowRecord;
use crate::stats::{DstRef, SrcRef, TrafficStats, TrafficView};
use mt_types::{Block24, FxHashMap, Slot24Index};
use mt_wire::IpProtocol;

/// Empty histogram handed out for rows that saw no TCP traffic.
const NO_SIZES: &[(u16, u64)] = &[];

/// Struct-of-arrays per-/24 traffic accumulator over the announced
/// blocks of one [`Slot24Index`] (or a contiguous row range of it).
#[derive(Debug, Clone)]
pub struct ColumnarStats {
    slots: Arc<Slot24Index>,
    /// First slot this store owns; row `i` holds slot `row_base + i`.
    row_base: u32,
    /// Number of rows owned.
    rows: u32,
    size_threshold: u16,

    // Destination-side columns, one entry per row.
    d_tcp_packets: Vec<u64>,
    d_tcp_octets: Vec<u64>,
    d_udp_packets: Vec<u64>,
    d_icmp_packets: Vec<u64>,
    d_other_packets: Vec<u64>,
    /// 256-bit host sets, four words per row.
    d_received: Vec<u64>,
    d_received_tcp: Vec<u64>,
    d_received_big_tcp: Vec<u64>,
    /// Bitmap of rows with any destination traffic.
    d_touched: Vec<u64>,
    /// TCP size histograms by row. Sparse on purpose: IBR has a handful
    /// of distinct sizes on a small fraction of rows, so a dense column
    /// per size would dwarf the payload.
    // check: allow(columnar_policy, "keyed by row id, not /24: sparse per-row histogram sidecar of the columnar store itself")
    d_tcp_sizes: FxHashMap<u32, Vec<(u16, u64)>>,

    // Source-side columns.
    s_packets: Vec<u64>,
    /// 256-bit originating-host sets, four words per row.
    s_originating: Vec<u64>,
    /// Bitmap of rows with any source traffic.
    s_touched: Vec<u64>,

    /// Map-backed overflow for blocks outside the announced space
    /// (no slot). Carries its own totals for the records routed here.
    ovf: TrafficStats,

    // Record totals for the slot-backed rows (overflow totals live in
    // `ovf`); accessors report the sum.
    total_flows: u64,
    total_packets: u64,
    total_octets: u64,
}

/// Iterates the set bit positions of a packed bitmap, ascending.
fn iter_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(w, &word)| {
        std::iter::successors((word != 0).then_some(word), |&bits| {
            let rest = bits & (bits - 1);
            (rest != 0).then_some(rest)
        })
        .map(move |bits| w * 64 + bits.trailing_zeros() as usize)
    })
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i / 64] |= 1 << (i % 64);
}

#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1 << (i % 64)) != 0
}

/// Sets `host` in the 256-bit set stored at `row` of a 4-words-per-row
/// host-set column.
#[inline]
fn set_host(col: &mut [u64], row: usize, host: u8) {
    col[row * 4 + (host / 64) as usize] |= 1 << (host % 64);
}

/// Reads the 256-bit host set stored at `row` back out of a column.
#[inline]
fn host_words(col: &[u64], row: usize) -> [u64; 4] {
    [
        col[row * 4],
        col[row * 4 + 1],
        col[row * 4 + 2],
        col[row * 4 + 3],
    ]
}

impl ColumnarStats {
    /// Creates an empty store covering every slot of `slots`, with the
    /// default per-host size threshold.
    pub fn new(slots: Arc<Slot24Index>) -> Self {
        Self::with_size_threshold(slots, crate::stats::DEFAULT_SIZE_THRESHOLD)
    }

    /// Creates an empty store covering every slot of `slots`, with a
    /// custom per-host size threshold (must match the pipeline's
    /// classification threshold).
    pub fn with_size_threshold(slots: Arc<Slot24Index>, size_threshold: u16) -> Self {
        let n = slots.num_slots();
        Self::slice(slots, size_threshold, 0, n)
    }

    /// Creates an empty store owning only rows
    /// `row_base .. row_base + rows` — the slot-range shard constructor.
    pub(crate) fn slice(
        slots: Arc<Slot24Index>,
        size_threshold: u16,
        row_base: u32,
        rows: u32,
    ) -> Self {
        assert!(
            u64::from(row_base) + u64::from(rows) <= u64::from(slots.num_slots()),
            "row range exceeds the slot index"
        );
        let n = rows as usize;
        let bitmap_words = n.div_ceil(64);
        ColumnarStats {
            slots,
            row_base,
            rows,
            size_threshold,
            d_tcp_packets: vec![0; n],
            d_tcp_octets: vec![0; n],
            d_udp_packets: vec![0; n],
            d_icmp_packets: vec![0; n],
            d_other_packets: vec![0; n],
            d_received: vec![0; n * 4],
            d_received_tcp: vec![0; n * 4],
            d_received_big_tcp: vec![0; n * 4],
            d_touched: vec![0; bitmap_words],
            d_tcp_sizes: FxHashMap::default(),
            s_packets: vec![0; n],
            s_originating: vec![0; n * 4],
            s_touched: vec![0; bitmap_words],
            ovf: TrafficStats::with_size_threshold(size_threshold),
            total_flows: 0,
            total_packets: 0,
            total_octets: 0,
        }
    }

    /// The slot index defining this store's block ↔ row mapping.
    pub fn slot_index(&self) -> &Arc<Slot24Index> {
        &self.slots
    }

    /// First slot owned by this store (0 for an unsharded store).
    pub fn row_base(&self) -> u32 {
        self.row_base
    }

    /// Number of rows owned by this store.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Builds stats from a slice of records.
    pub fn from_records(slots: Arc<Slot24Index>, records: &[FlowRecord]) -> Self {
        let mut s = Self::new(slots);
        for r in records {
            s.ingest(r);
        }
        s
    }

    /// Ingests one record.
    pub fn ingest(&mut self, r: &FlowRecord) {
        self.ingest_dst_half(r, None);
        self.ingest_src_half(r);
    }

    /// Ingests a host-sweep record (see
    /// [`TrafficStats::ingest_sweep`]): identical semantics on the
    /// columnar layout.
    pub fn ingest_sweep(&mut self, r: &FlowRecord, host_seed: u64) {
        self.ingest_dst_half(r, Some(host_seed));
        self.ingest_src_half(r);
    }

    /// The row owning `block`, when `block` has a slot in this store's
    /// range.
    #[inline]
    fn row_of(&self, block: Block24) -> Option<usize> {
        let slot = self.slots.slot_of(block)?;
        slot.checked_sub(self.row_base)
            .filter(|&r| r < self.rows)
            .map(|r| r as usize)
    }

    /// Converts a slot to a row of this store, asserting the slot is in
    /// range — a record whose block *has* a slot must only ever be
    /// ingested by the store owning that slot (the sharded router's
    /// contract); filing it in overflow instead would hide it from
    /// [`TrafficView::dst`].
    #[inline]
    fn owned_row(&self, slot: u32) -> usize {
        assert!(
            slot >= self.row_base && slot - self.row_base < self.rows,
            "record routed to a shard that does not own its slot"
        );
        (slot - self.row_base) as usize
    }

    /// The destination-side half of an ingest: record totals plus the
    /// per-dst-/24 update (a sweep when `sweep_seed` is set). Mirrors
    /// [`TrafficStats::ingest`] bit for bit; records whose destination
    /// block has no slot fall through to the map-backed overflow.
    pub(crate) fn ingest_dst_half(&mut self, r: &FlowRecord, sweep_seed: Option<u64>) {
        debug_assert!(r.packets > 0, "flow records carry at least one packet");
        let Some(slot) = self.slots.slot_of(Block24(r.dst.block24_index())) else {
            self.ovf.ingest_dst_half(r, sweep_seed);
            return;
        };
        let row = self.owned_row(slot);
        self.total_flows += 1;
        self.total_packets += r.packets;
        self.total_octets += r.octets;
        set_bit(&mut self.d_touched, row);
        match sweep_seed {
            None => self.ingest_dst_row(
                row,
                r.dst.host_in_block24(),
                r.protocol,
                r.packets,
                r.octets,
            ),
            Some(seed) => self.ingest_dst_row_sweep(row, r.protocol, r.packets, r.octets, seed),
        }
    }

    /// The source-side half of an ingest (no totals; those ride with the
    /// destination half, exactly as in the map backend).
    pub(crate) fn ingest_src_half(&mut self, r: &FlowRecord) {
        let Some(slot) = self.slots.slot_of(Block24(r.src.block24_index())) else {
            self.ovf.ingest_src_half(r);
            return;
        };
        let row = self.owned_row(slot);
        set_bit(&mut self.s_touched, row);
        self.s_packets[row] += r.packets;
        set_host(&mut self.s_originating, row, r.src.host_in_block24());
    }

    /// Columnar mirror of [`DstBlockStats::ingest`]
    /// (crate::stats::DstBlockStats::ingest).
    fn ingest_dst_row(&mut self, row: usize, host: u8, protocol: u8, packets: u64, octets: u64) {
        set_host(&mut self.d_received, row, host);
        match IpProtocol::from_u8(protocol) {
            Some(IpProtocol::Tcp) => {
                self.d_tcp_packets[row] += packets;
                self.d_tcp_octets[row] += octets;
                set_host(&mut self.d_received_tcp, row, host);
                // Averages beyond u16 range (jumbo frames) saturate
                // into the top histogram bin instead of wrapping.
                let size = u16::try_from(octets / packets).unwrap_or(u16::MAX);
                if size > self.size_threshold {
                    set_host(&mut self.d_received_big_tcp, row, host);
                }
                bump_histogram(
                    self.d_tcp_sizes.entry(row as u32).or_default(),
                    size,
                    packets,
                );
            }
            Some(IpProtocol::Udp) => self.d_udp_packets[row] += packets,
            Some(IpProtocol::Icmp) => self.d_icmp_packets[row] += packets,
            None => self.d_other_packets[row] += packets,
        }
    }

    /// Columnar mirror of [`DstBlockStats::ingest_sweep`]
    /// (crate::stats::DstBlockStats::ingest_sweep).
    fn ingest_dst_row_sweep(
        &mut self,
        row: usize,
        protocol: u8,
        packets: u64,
        octets: u64,
        host_seed: u64,
    ) {
        let size = u16::try_from(octets / packets).unwrap_or(u16::MAX);
        let is_tcp = protocol == u8::from(IpProtocol::Tcp);
        for i in 0..packets.min(256) {
            let host = (mt_types::mix::mix3(host_seed, i, 0x5eed) & 0xff) as u8;
            set_host(&mut self.d_received, row, host);
            if is_tcp {
                set_host(&mut self.d_received_tcp, row, host);
                if size > self.size_threshold {
                    set_host(&mut self.d_received_big_tcp, row, host);
                }
            }
        }
        match IpProtocol::from_u8(protocol) {
            Some(IpProtocol::Tcp) => {
                self.d_tcp_packets[row] += packets;
                self.d_tcp_octets[row] += octets;
                bump_histogram(
                    self.d_tcp_sizes.entry(row as u32).or_default(),
                    size,
                    packets,
                );
            }
            Some(IpProtocol::Udp) => self.d_udp_packets[row] += packets,
            Some(IpProtocol::Icmp) => self.d_icmp_packets[row] += packets,
            None => self.d_other_packets[row] += packets,
        }
    }

    /// Assembles the by-value view of a touched row.
    fn dst_row_ref(&self, row: usize) -> DstRef<'_> {
        DstRef {
            tcp_packets: self.d_tcp_packets[row],
            tcp_octets: self.d_tcp_octets[row],
            udp_packets: self.d_udp_packets[row],
            icmp_packets: self.d_icmp_packets[row],
            other_packets: self.d_other_packets[row],
            received: crate::stats::HostSet::from_words(host_words(&self.d_received, row)),
            received_tcp: crate::stats::HostSet::from_words(host_words(&self.d_received_tcp, row)),
            received_big_tcp: crate::stats::HostSet::from_words(host_words(
                &self.d_received_big_tcp,
                row,
            )),
            tcp_sizes: self
                .d_tcp_sizes
                .get(&(row as u32))
                .map_or(NO_SIZES, Vec::as_slice),
        }
    }

    fn src_row_ref(&self, row: usize) -> SrcRef {
        SrcRef {
            packets: self.s_packets[row],
            originating: crate::stats::HostSet::from_words(host_words(&self.s_originating, row)),
        }
    }

    /// Merges another columnar store over the *same rows of the same
    /// slot index* into this one.
    ///
    /// # Panics
    ///
    /// Panics when the slot-index fingerprints, row ranges, or size
    /// thresholds differ — merging stores that disagree on the block ↔
    /// row mapping would silently attribute traffic to wrong blocks.
    pub fn merge(&mut self, other: &ColumnarStats) {
        assert_eq!(
            self.slots.fingerprint(),
            other.slots.fingerprint(),
            "merging columnar stats built over different slot indexes"
        );
        assert_eq!(
            (self.row_base, self.rows),
            (other.row_base, other.rows),
            "merging columnar stats over different row ranges"
        );
        assert_eq!(
            self.size_threshold, other.size_threshold,
            "merging stats with different host-size thresholds"
        );
        for (a, b) in self.d_tcp_packets.iter_mut().zip(&other.d_tcp_packets) {
            *a += b;
        }
        for (a, b) in self.d_tcp_octets.iter_mut().zip(&other.d_tcp_octets) {
            *a += b;
        }
        for (a, b) in self.d_udp_packets.iter_mut().zip(&other.d_udp_packets) {
            *a += b;
        }
        for (a, b) in self.d_icmp_packets.iter_mut().zip(&other.d_icmp_packets) {
            *a += b;
        }
        for (a, b) in self.d_other_packets.iter_mut().zip(&other.d_other_packets) {
            *a += b;
        }
        for (a, b) in self.s_packets.iter_mut().zip(&other.s_packets) {
            *a += b;
        }
        for (col, other_col) in [
            (&mut self.d_received, &other.d_received),
            (&mut self.d_received_tcp, &other.d_received_tcp),
            (&mut self.d_received_big_tcp, &other.d_received_big_tcp),
            (&mut self.s_originating, &other.s_originating),
            (&mut self.d_touched, &other.d_touched),
            (&mut self.s_touched, &other.s_touched),
        ] {
            for (a, b) in col.iter_mut().zip(other_col) {
                *a |= b;
            }
        }
        for (&row, sizes) in &other.d_tcp_sizes {
            let mine = self.d_tcp_sizes.entry(row).or_default();
            for &(size, count) in sizes {
                bump_histogram(mine, size, count);
            }
        }
        self.ovf.merge(&other.ovf);
        self.total_flows += other.total_flows;
        self.total_packets += other.total_packets;
        self.total_octets += other.total_octets;
    }
}

/// Adds `count` packets of `size` to a sorted `(size, count)` histogram
/// — the same binary-search upsert the map backend uses.
fn bump_histogram(sizes: &mut Vec<(u16, u64)>, size: u16, count: u64) {
    match sizes.binary_search_by_key(&size, |&(s, _)| s) {
        Ok(i) => sizes[i].1 += count,
        Err(i) => sizes.insert(i, (size, count)),
    }
}

impl TrafficView for ColumnarStats {
    fn dst(&self, block: Block24) -> Option<DstRef<'_>> {
        match self.row_of(block) {
            Some(row) => get_bit(&self.d_touched, row).then(|| self.dst_row_ref(row)),
            None if self.slots.slot_of(block).is_none() => TrafficView::dst(&self.ovf, block),
            None => None,
        }
    }

    fn src(&self, block: Block24) -> Option<SrcRef> {
        match self.row_of(block) {
            Some(row) => get_bit(&self.s_touched, row).then(|| self.src_row_ref(row)),
            None if self.slots.slot_of(block).is_none() => TrafficView::src(&self.ovf, block),
            None => None,
        }
    }

    fn iter_dst(&self) -> impl Iterator<Item = (Block24, DstRef<'_>)> {
        iter_bits(&self.d_touched)
            .map(|row| {
                let block = self.slots.block_of(self.row_base + row as u32);
                (block, self.dst_row_ref(row))
            })
            .chain(TrafficView::iter_dst(&self.ovf))
    }

    fn iter_src(&self) -> impl Iterator<Item = (Block24, SrcRef)> {
        iter_bits(&self.s_touched)
            .map(|row| {
                let block = self.slots.block_of(self.row_base + row as u32);
                (block, self.src_row_ref(row))
            })
            .chain(TrafficView::iter_src(&self.ovf))
    }

    fn dst_block_count(&self) -> usize {
        let rows: u32 = self.d_touched.iter().map(|w| w.count_ones()).sum();
        rows as usize + self.ovf.dst_block_count()
    }

    fn src_block_count(&self) -> usize {
        let rows: u32 = self.s_touched.iter().map(|w| w.count_ones()).sum();
        rows as usize + self.ovf.src_block_count()
    }

    fn size_threshold(&self) -> u16 {
        self.size_threshold
    }

    fn total_flows(&self) -> u64 {
        self.total_flows + self.ovf.total_flows
    }

    fn total_packets(&self) -> u64 {
        self.total_packets + self.ovf.total_packets
    }

    fn total_octets(&self) -> u64 {
        self.total_octets + self.ovf.total_octets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::{Ipv4, Prefix, PrefixTrie, RibIndex, SimTime};

    fn slots(prefixes: &[&str]) -> Arc<Slot24Index> {
        let trie: PrefixTrie<()> = prefixes
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), ()))
            .collect();
        Arc::new(Slot24Index::build(&RibIndex::build(&trie)))
    }

    fn flow(src: Ipv4, dst: Ipv4, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src,
            dst,
            src_port: 1000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: if proto == 6 { 0x02 } else { 0 },
            packets,
            octets: packets * size,
        }
    }

    fn sample_records() -> Vec<FlowRecord> {
        (0u32..400)
            .map(|i| {
                flow(
                    Ipv4(0x0900_0000 + (i % 37) * 256 + (i % 11)),
                    Ipv4(0x0a00_0000 + (i % 53) * 256 + (i % 7)),
                    if i % 3 == 0 { 6 } else { 17 },
                    1 + u64::from(i % 5),
                    40 + u64::from(i % 4) * 500,
                )
            })
            .collect()
    }

    /// Asserts every observable of the two views is identical.
    fn assert_views_equal(a: &impl TrafficView, b: &impl TrafficView) {
        assert_eq!(a.total_flows(), b.total_flows());
        assert_eq!(a.total_packets(), b.total_packets());
        assert_eq!(a.total_octets(), b.total_octets());
        assert_eq!(a.dst_block_count(), b.dst_block_count());
        assert_eq!(a.src_block_count(), b.src_block_count());
        assert_eq!(a.size_threshold(), b.size_threshold());
        let mut a_dst: Vec<Block24> = a.iter_dst().map(|(blk, _)| blk).collect();
        let mut b_dst: Vec<Block24> = b.iter_dst().map(|(blk, _)| blk).collect();
        a_dst.sort_unstable();
        b_dst.sort_unstable();
        assert_eq!(a_dst, b_dst, "same destination block sets");
        for blk in a_dst {
            let x = a.dst(blk).unwrap();
            let y = b.dst(blk).unwrap();
            assert_eq!(x.tcp_packets, y.tcp_packets, "{blk}");
            assert_eq!(x.tcp_octets, y.tcp_octets);
            assert_eq!(x.udp_packets, y.udp_packets);
            assert_eq!(x.icmp_packets, y.icmp_packets);
            assert_eq!(x.other_packets, y.other_packets);
            assert_eq!(x.received, y.received);
            assert_eq!(x.received_tcp, y.received_tcp);
            assert_eq!(x.received_big_tcp, y.received_big_tcp);
            assert_eq!(x.tcp_size_histogram(), y.tcp_size_histogram());
        }
        let mut a_src: Vec<Block24> = a.iter_src().map(|(blk, _)| blk).collect();
        let mut b_src: Vec<Block24> = b.iter_src().map(|(blk, _)| blk).collect();
        a_src.sort_unstable();
        b_src.sort_unstable();
        assert_eq!(a_src, b_src, "same source block sets");
        for blk in a_src {
            assert_eq!(a.src(blk).unwrap(), b.src(blk).unwrap(), "{blk}");
        }
    }

    #[test]
    fn columnar_matches_map_backend_when_fully_announced() {
        let records = sample_records();
        let slots = slots(&["9.0.0.0/16", "10.0.0.0/16"]);
        let col = ColumnarStats::from_records(slots, &records);
        let map = TrafficStats::from_records(&records);
        assert_views_equal(&col, &map);
    }

    #[test]
    fn unannounced_traffic_lands_in_overflow_and_still_matches() {
        let records = sample_records();
        // Only the dst /16 is announced: every source block overflows.
        let slots = slots(&["10.0.0.0/16"]);
        let col = ColumnarStats::from_records(slots, &records);
        let map = TrafficStats::from_records(&records);
        assert_views_equal(&col, &map);
    }

    #[test]
    fn empty_slot_index_is_all_overflow() {
        let records = sample_records();
        let col = ColumnarStats::from_records(slots(&[]), &records);
        let map = TrafficStats::from_records(&records);
        assert_views_equal(&col, &map);
    }

    #[test]
    fn sweeps_match_map_backend() {
        let records = sample_records();
        let slots = slots(&["9.0.0.0/16", "10.0.0.0/16"]);
        let mut col = ColumnarStats::new(slots);
        let mut map = TrafficStats::new();
        for (i, r) in records.iter().enumerate() {
            if i % 4 == 0 {
                col.ingest_sweep(r, i as u64);
                map.ingest_sweep(r, i as u64);
            } else {
                col.ingest(r);
                map.ingest(r);
            }
        }
        assert_views_equal(&col, &map);
    }

    #[test]
    fn iter_dst_is_in_ascending_block_order_for_slot_rows() {
        let records = sample_records();
        let slots = slots(&["9.0.0.0/16", "10.0.0.0/16"]);
        let col = ColumnarStats::from_records(slots, &records);
        let blocks: Vec<Block24> = TrafficView::iter_dst(&col).map(|(b, _)| b).collect();
        assert!(
            blocks.windows(2).all(|w| w[0] < w[1]),
            "slot-order iteration is address-order"
        );
    }

    #[test]
    fn merge_matches_combined_ingest() {
        let records = sample_records();
        let (first, second) = records.split_at(150);
        let slots = slots(&["10.0.0.0/16"]);
        let mut a = ColumnarStats::from_records(Arc::clone(&slots), first);
        let b = ColumnarStats::from_records(Arc::clone(&slots), second);
        a.merge(&b);
        let combined = ColumnarStats::from_records(slots, &records);
        assert_views_equal(&a, &combined);
    }

    #[test]
    #[should_panic(expected = "different slot indexes")]
    fn merge_rejects_mismatched_slot_indexes() {
        let mut a = ColumnarStats::new(slots(&["10.0.0.0/16"]));
        a.merge(&ColumnarStats::new(slots(&["11.0.0.0/16"])));
    }

    #[test]
    fn routed_row_slices_reassemble_to_the_full_store() {
        // Two slices over [0, lo) and [lo, n), each fed only the record
        // halves it owns (slotless halves go to slice `a`): merging the
        // materialized slices reproduces the flat map backend.
        let records = sample_records();
        let slots = slots(&["9.0.0.0/16", "10.0.0.0/16"]);
        let n = slots.num_slots();
        let lo = n / 2;
        let mut a = ColumnarStats::slice(Arc::clone(&slots), 60, 0, lo);
        let mut b = ColumnarStats::slice(Arc::clone(&slots), 60, lo, n - lo);
        for r in &records {
            match slots.slot_of(Block24(r.dst.block24_index())) {
                Some(s) if s >= lo => b.ingest_dst_half(r, None),
                _ => a.ingest_dst_half(r, None),
            }
            match slots.slot_of(Block24(r.src.block24_index())) {
                Some(s) if s >= lo => b.ingest_src_half(r),
                _ => a.ingest_src_half(r),
            }
        }
        let mut merged = TrafficStats::from_view(&a);
        merged.merge(&TrafficStats::from_view(&b));
        assert_views_equal(&merged, &TrafficStats::from_records(&records));
    }

    #[test]
    #[should_panic(expected = "does not own its slot")]
    fn misrouted_slot_half_is_rejected() {
        let slots = slots(&["10.0.0.0/16"]);
        let n = slots.num_slots();
        // Slice owning only the upper half must reject a record whose
        // destination slot is 0.
        let mut upper = ColumnarStats::slice(Arc::clone(&slots), 60, n / 2, n - n / 2);
        let r = flow(Ipv4::new(9, 0, 0, 1), Ipv4::new(10, 0, 0, 5), 6, 1, 40);
        upper.ingest_dst_half(&r, None);
    }

    #[test]
    fn from_view_roundtrips_to_map_backend() {
        let records = sample_records();
        let slots = slots(&["10.0.0.0/16"]);
        let col = ColumnarStats::from_records(slots, &records);
        let map = TrafficStats::from_view(&col);
        assert_views_equal(&map, &col);
        assert_views_equal(&map, &TrafficStats::from_records(&records));
    }
}
