//! Sharded per-/24 traffic accumulators for parallel ingest and
//! parallel pipeline evaluation.
//!
//! [`ShardedTrafficStats`] splits the /24 key space over `N` fixed
//! shards with `shard = block_index % N`. Crucially the *same* shard
//! function is used for destination and source blocks, so everything the
//! inference pipeline needs about a block — its receive-side stats *and*
//! its send-side stats (step 3 looks up `src(block)` while walking
//! destination blocks) — lives in one shard. Each shard is therefore a
//! self-contained [`TrafficStats`] over its slice of the key space, and
//! the pipeline can run per shard with no cross-shard reads.
//!
//! Parallel ingest ([`ShardedTrafficStats::par_ingest`]) is lock-free
//! single-writer: each thread owns a contiguous range of shards, scans
//! the full record slice, and applies only the updates belonging to its
//! shards (the destination half of a record goes to `shard(dst)`, the
//! source half to `shard(src)`, record totals ride with the destination
//! half). Threads never touch each other's shards, so no synchronization
//! beyond the scoped join is needed, and the result is bit-identical to
//! serial ingest because per-block accumulation is order-independent.
//!
//! [`ShardedTrafficStats::into_unsharded`] reassembles a flat
//! [`TrafficStats`] for call sites that still want one; since shard key
//! spaces are disjoint this moves blocks instead of re-merging them.

use crate::record::FlowRecord;
use crate::stats::{DstBlockStats, SrcBlockStats, TrafficStats, TrafficView};
use mt_types::Block24;

/// Default shard count: enough slots to spread work over commodity core
/// counts while keeping per-shard hash maps dense.
pub const DEFAULT_SHARDS: usize = 16;

/// Per-/24 traffic aggregates split over fixed shards keyed by
/// `block_index % num_shards`.
#[derive(Debug, Clone)]
pub struct ShardedTrafficStats {
    shards: Vec<TrafficStats>,
}

impl Default for ShardedTrafficStats {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl ShardedTrafficStats {
    /// Creates an empty accumulator with `num_shards` shards and the
    /// default per-host size threshold.
    pub fn new(num_shards: usize) -> Self {
        Self::with_size_threshold(num_shards, crate::stats::DEFAULT_SIZE_THRESHOLD)
    }

    /// Creates an empty accumulator with a custom per-host size
    /// threshold (must match the pipeline's classification threshold).
    pub fn with_size_threshold(num_shards: usize, size_threshold: u16) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        ShardedTrafficStats {
            shards: (0..num_shards)
                .map(|_| TrafficStats::with_size_threshold(size_threshold))
                .collect(),
        }
    }

    /// Number of shards the key space is split over.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `block`.
    pub fn shard_of(&self, block: Block24) -> usize {
        block.0 as usize % self.shards.len()
    }

    /// The per-shard accumulators, in shard order.
    pub fn shards(&self) -> &[TrafficStats] {
        &self.shards
    }

    /// Destination blocks held per shard, in shard order — the load
    /// signal behind the `mt_flow_shard_blocks` gauges: with `%`-of-
    /// block-index routing the loads should stay near-uniform, and a
    /// skewed vector flags a pathological key distribution before it
    /// shows up as one hot ingest worker.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(TrafficStats::dst_block_count)
            .collect()
    }

    /// Ingests one record, routing its destination half to the shard
    /// owning the destination block and its source half to the shard
    /// owning the source block.
    pub fn ingest(&mut self, r: &FlowRecord) {
        self.route(r, None);
    }

    /// Ingests a host-sweep record (see
    /// [`TrafficStats::ingest_sweep`]), with the same shard routing as
    /// [`ingest`](Self::ingest).
    pub fn ingest_sweep(&mut self, r: &FlowRecord, host_seed: u64) {
        self.route(r, Some(host_seed));
    }

    fn route(&mut self, r: &FlowRecord, sweep_seed: Option<u64>) {
        let n = self.shards.len();
        let dst_shard = r.dst.block24_index() as usize % n;
        let src_shard = r.src.block24_index() as usize % n;
        self.shards[dst_shard].ingest_dst_half(r, sweep_seed);
        self.shards[src_shard].ingest_src_half(r);
    }

    /// Builds stats from a slice of records serially.
    pub fn from_records(num_shards: usize, records: &[FlowRecord]) -> Self {
        let mut s = Self::new(num_shards);
        for r in records {
            s.ingest(r);
        }
        s
    }

    /// Ingests a record slice with `threads` worker threads.
    ///
    /// Lock-free single-writer scheme: each thread owns a contiguous
    /// range of shards and scans the whole slice, applying only the
    /// updates whose target shard it owns. Every thread reads all
    /// records, so this trades `threads × scan` read bandwidth for
    /// zero synchronization on the write side — a good trade while
    /// hashing and histogram upkeep dominate the scan. The result is
    /// bit-identical to serial ingest of the same slice.
    pub fn par_ingest(&mut self, records: &[FlowRecord], threads: usize) {
        let n = self.shards.len();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            for r in records {
                self.ingest(r);
            }
            return;
        }
        let base = n / threads;
        let extra = n % threads;
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [TrafficStats] = &mut self.shards;
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let lo = start;
                start += len;
                scope.spawn(move |_| {
                    for r in records {
                        let dst_shard = r.dst.block24_index() as usize % n;
                        if (lo..lo + len).contains(&dst_shard) {
                            chunk[dst_shard - lo].ingest_dst_half(r, None);
                        }
                        let src_shard = r.src.block24_index() as usize % n;
                        if (lo..lo + len).contains(&src_shard) {
                            chunk[src_shard - lo].ingest_src_half(r);
                        }
                    }
                });
            }
        })
        // check: allow(no_panic, "scope() errs only if a worker panicked; re-raising on the coordinator is intended")
        .expect("sharded ingest worker panicked");
    }

    /// Merges another sharded accumulator shard-by-shard. Both sides
    /// must have the same shard count (so the shard function matches)
    /// and size threshold.
    pub fn merge(&mut self, other: &ShardedTrafficStats) {
        assert_eq!(
            self.shards.len(),
            other.shards.len(),
            "merging sharded stats with different shard counts"
        );
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.merge(theirs);
        }
    }

    /// Reduces flat per-part stats (e.g. one [`TrafficStats`] per day or
    /// per vantage point) into a sharded accumulator, with `threads`
    /// workers each building its own shards.
    ///
    /// Thread `t` owns a range of shards; for each shard it walks every
    /// part and merges in just the blocks that hash to that shard. Totals
    /// of each part are attributed to shard 0 so shard sums equal the
    /// serial merge. Unlike a tree reduction over clones, no block is
    /// ever copied more than once and no intermediate clones are made.
    pub fn from_parts_parallel(
        parts: &[TrafficStats],
        num_shards: usize,
        threads: usize,
    ) -> ShardedTrafficStats {
        let size_threshold = parts
            .first()
            .map_or(crate::stats::DEFAULT_SIZE_THRESHOLD, |p| p.size_threshold());
        // Fail fast on the calling thread rather than inside a worker,
        // where the panic message would be masked by the scope join.
        assert!(
            parts.iter().all(|p| p.size_threshold() == size_threshold),
            "merging stats with different host-size thresholds"
        );
        let mut out = Self::with_size_threshold(num_shards, size_threshold);
        let n = num_shards;
        let threads = threads.clamp(1, n);
        let base = n / threads;
        let extra = n % threads;
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [TrafficStats] = &mut out.shards;
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let lo = start;
                start += len;
                scope.spawn(move |_| {
                    for (offset, shard) in chunk.iter_mut().enumerate() {
                        let s = lo + offset;
                        for part in parts {
                            shard.merge_projection(part, |block| block as usize % n == s, s == 0);
                        }
                    }
                });
            }
        })
        // check: allow(no_panic, "scope() errs only if a worker panicked; re-raising on the coordinator is intended")
        .expect("sharded reduce worker panicked");
        out
    }

    /// Reassembles a flat [`TrafficStats`] (escape hatch for call sites
    /// that need the unsharded representation). Shard key spaces are
    /// disjoint, so blocks are moved, not re-merged.
    pub fn into_unsharded(self) -> TrafficStats {
        let mut shards = self.shards.into_iter();
        // check: allow(no_panic, "with_size_threshold asserts num_shards > 0, so the iterator is never empty")
        let mut out = shards.next().expect("at least one shard");
        for shard in shards {
            out.absorb_disjoint(shard);
        }
        out
    }
}

impl TrafficView for ShardedTrafficStats {
    fn dst(&self, block: Block24) -> Option<&DstBlockStats> {
        self.shards[self.shard_of(block)].dst(block)
    }

    fn src(&self, block: Block24) -> Option<&SrcBlockStats> {
        self.shards[self.shard_of(block)].src(block)
    }

    fn iter_dst(&self) -> impl Iterator<Item = (Block24, &DstBlockStats)> {
        self.shards.iter().flat_map(TrafficStats::iter_dst)
    }

    fn iter_src(&self) -> impl Iterator<Item = (Block24, &SrcBlockStats)> {
        self.shards.iter().flat_map(TrafficStats::iter_src)
    }

    fn dst_block_count(&self) -> usize {
        self.shards.iter().map(TrafficStats::dst_block_count).sum()
    }

    fn src_block_count(&self) -> usize {
        self.shards.iter().map(TrafficStats::src_block_count).sum()
    }

    fn size_threshold(&self) -> u16 {
        self.shards[0].size_threshold()
    }

    fn total_flows(&self) -> u64 {
        self.shards.iter().map(|s| s.total_flows).sum()
    }

    fn total_packets(&self) -> u64 {
        self.shards.iter().map(|s| s.total_packets).sum()
    }

    fn total_octets(&self) -> u64 {
        self.shards.iter().map(|s| s.total_octets).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::{Ipv4, SimTime};

    fn flow(src: u32, dst: u32, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: Ipv4(src),
            dst: Ipv4(dst),
            src_port: 1000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: if proto == 6 { 0x02 } else { 0 },
            packets,
            octets: packets * size,
        }
    }

    fn sample_records() -> Vec<FlowRecord> {
        // Spread blocks over many shard residues, mixed protocols/sizes.
        (0u32..500)
            .map(|i| {
                flow(
                    0x0900_0000 + (i % 37) * 256 + (i % 11),
                    0x0a00_0000 + (i % 53) * 256 + (i % 7),
                    if i % 3 == 0 { 6 } else { 17 },
                    1 + u64::from(i % 5),
                    40 + u64::from(i % 4) * 500,
                )
            })
            .collect()
    }

    fn assert_equivalent(sharded: &ShardedTrafficStats, flat: &TrafficStats) {
        assert_eq!(TrafficView::total_flows(sharded), flat.total_flows);
        assert_eq!(TrafficView::total_packets(sharded), flat.total_packets);
        assert_eq!(TrafficView::total_octets(sharded), flat.total_octets);
        assert_eq!(
            TrafficView::dst_block_count(sharded),
            flat.dst_block_count()
        );
        assert_eq!(
            TrafficView::src_block_count(sharded),
            flat.src_block_count()
        );
        for (block, d) in flat.iter_dst() {
            let sd = TrafficView::dst(sharded, block).expect("dst block present");
            assert_eq!(sd.tcp_packets, d.tcp_packets);
            assert_eq!(sd.tcp_octets, d.tcp_octets);
            assert_eq!(sd.received, d.received);
            assert_eq!(sd.received_tcp, d.received_tcp);
            assert_eq!(sd.received_big_tcp, d.received_big_tcp);
            assert_eq!(sd.tcp_size_histogram(), d.tcp_size_histogram());
        }
        for (block, s) in flat.iter_src() {
            let ss = TrafficView::src(sharded, block).expect("src block present");
            assert_eq!(ss.packets, s.packets);
            assert_eq!(ss.originating, s.originating);
        }
    }

    #[test]
    fn serial_sharded_ingest_matches_flat() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        for shards in [1, 3, 16] {
            let sharded = ShardedTrafficStats::from_records(shards, &records);
            assert_equivalent(&sharded, &flat);
        }
    }

    #[test]
    fn shard_loads_sum_to_block_count_and_balance() {
        let records = sample_records();
        let sharded = ShardedTrafficStats::from_records(8, &records);
        let loads = sharded.shard_loads();
        assert_eq!(loads.len(), 8);
        assert_eq!(
            loads.iter().sum::<usize>(),
            TrafficView::dst_block_count(&sharded),
            "every destination block is counted in exactly one shard"
        );
        assert!(
            loads.iter().all(|&l| l > 0),
            "sample blocks cover all residues: {loads:?}"
        );
    }

    #[test]
    fn par_ingest_matches_serial_for_all_thread_counts() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        for threads in [1, 2, 4, 8] {
            let mut sharded = ShardedTrafficStats::new(8);
            sharded.par_ingest(&records, threads);
            assert_equivalent(&sharded, &flat);
        }
    }

    #[test]
    fn sweeps_route_like_flat_ingest() {
        let records = sample_records();
        let mut flat = TrafficStats::new();
        let mut sharded = ShardedTrafficStats::new(5);
        for (i, r) in records.iter().enumerate() {
            if i % 4 == 0 {
                flat.ingest_sweep(r, i as u64);
                sharded.ingest_sweep(r, i as u64);
            } else {
                flat.ingest(r);
                sharded.ingest(r);
            }
        }
        assert_equivalent(&sharded, &flat);
    }

    #[test]
    fn into_unsharded_roundtrips() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        let back = ShardedTrafficStats::from_records(7, &records).into_unsharded();
        assert_eq!(back.total_flows, flat.total_flows);
        assert_eq!(back.dst_block_count(), flat.dst_block_count());
        for (block, d) in flat.iter_dst() {
            assert_eq!(back.dst(block).unwrap().received, d.received);
        }
    }

    #[test]
    fn merge_is_shard_wise() {
        let records = sample_records();
        let (a_recs, b_recs) = records.split_at(200);
        let mut a = ShardedTrafficStats::from_records(4, a_recs);
        let b = ShardedTrafficStats::from_records(4, b_recs);
        a.merge(&b);
        assert_equivalent(&a, &TrafficStats::from_records(&records));
    }

    #[test]
    #[should_panic(expected = "different shard counts")]
    fn merge_rejects_mismatched_shard_counts() {
        let mut a = ShardedTrafficStats::new(4);
        a.merge(&ShardedTrafficStats::new(8));
    }

    #[test]
    fn from_parts_parallel_matches_serial_merge() {
        let records = sample_records();
        let parts: Vec<TrafficStats> = records.chunks(97).map(TrafficStats::from_records).collect();
        let mut serial = TrafficStats::new();
        for p in &parts {
            serial.merge(p);
        }
        for threads in [1, 2, 4] {
            let sharded = ShardedTrafficStats::from_parts_parallel(&parts, 8, threads);
            assert_equivalent(&sharded, &serial);
        }
    }
}
