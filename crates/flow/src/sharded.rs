//! Sharded per-/24 traffic accumulators for parallel ingest and
//! parallel pipeline evaluation.
//!
//! [`ShardedTrafficStats`] splits the /24 key space over `N` fixed
//! shards. Two layouts exist ([`StatsLayout`]):
//!
//! - **Map** (the default): each shard is a hashmap-backed
//!   [`TrafficStats`] owning the blocks with `block_index % N == shard`.
//! - **Columnar**: each shard is a [`ColumnarStats`] owning a
//!   *contiguous slot range* of a shared [`Slot24Index`] — shard
//!   `slot / ceil(num_slots / N)`. Blocks outside the announced space
//!   (no slot) route by `block_index % N` into that shard's map-backed
//!   overflow store.
//!
//! Crucially, in both layouts the *same* shard function is used for
//! destination and source blocks, so everything the inference pipeline
//! needs about a block — its receive-side stats *and* its send-side
//! stats (step 3 looks up `src(block)` while walking destination
//! blocks) — lives in one shard. Each shard is therefore a
//! self-contained [`TrafficView`] over its slice of the key space, and
//! the pipeline can run per shard with no cross-shard reads.
//!
//! Parallel ingest ([`ShardedTrafficStats::par_ingest`]) is lock-free
//! single-writer: each thread owns a contiguous range of shards, scans
//! the full record slice, and applies only the updates belonging to its
//! shards (the destination half of a record goes to `shard(dst)`, the
//! source half to `shard(src)`, record totals ride with the destination
//! half). Threads never touch each other's shards, so no synchronization
//! beyond the scoped join is needed, and the result is bit-identical to
//! serial ingest because per-block accumulation is order-independent.
//!
//! [`ShardedTrafficStats::into_unsharded`] reassembles a flat
//! [`TrafficStats`] for call sites that still want one; since shard key
//! spaces are disjoint this moves (map layout) or materializes
//! (columnar layout) blocks instead of re-merging them.

use std::sync::Arc;

use crate::columnar::ColumnarStats;
use crate::record::FlowRecord;
use crate::stats::{DstRef, SrcRef, TrafficStats, TrafficView};
use mt_types::{Block24, Slot24Index};

/// Default shard count: enough slots to spread work over commodity core
/// counts while keeping per-shard state dense.
pub const DEFAULT_SHARDS: usize = 16;

/// How a [`ShardedTrafficStats`] stores and routes its per-/24 state.
#[derive(Debug, Clone, Default)]
pub enum StatsLayout {
    /// Hashmap-backed shards keyed by `block_index % N`.
    #[default]
    Map,
    /// Columnar shards, each owning a contiguous slot range of the
    /// given index; slotless blocks fall back to `block_index % N`.
    Columnar(Arc<Slot24Index>),
}

/// One shard of a [`ShardedTrafficStats`]: either layout's accumulator,
/// viewed uniformly through [`TrafficView`].
#[derive(Debug, Clone)]
// Shards live in one short Vec (one element per shard, never per
// record), so the per-variant size gap has no memory impact and boxing
// would only add a pointer chase to every ingest dispatch.
#[allow(clippy::large_enum_variant)]
pub enum StatsShard {
    /// A hashmap-backed shard (map layout).
    Map(TrafficStats),
    /// A slot-range columnar shard (columnar layout).
    Columnar(ColumnarStats),
}

impl StatsShard {
    fn ingest_dst_half(&mut self, r: &FlowRecord, sweep_seed: Option<u64>) {
        match self {
            StatsShard::Map(s) => s.ingest_dst_half(r, sweep_seed),
            StatsShard::Columnar(c) => c.ingest_dst_half(r, sweep_seed),
        }
    }

    fn ingest_src_half(&mut self, r: &FlowRecord) {
        match self {
            StatsShard::Map(s) => s.ingest_src_half(r),
            StatsShard::Columnar(c) => c.ingest_src_half(r),
        }
    }

    fn merge(&mut self, other: &StatsShard) {
        match (self, other) {
            (StatsShard::Map(a), StatsShard::Map(b)) => a.merge(b),
            (StatsShard::Columnar(a), StatsShard::Columnar(b)) => a.merge(b),
            // check: allow(no_panic, "merge() asserts layout equality before zipping shards, so mixed pairs cannot occur")
            _ => unreachable!("shard layout mismatch"),
        }
    }
}

impl TrafficView for StatsShard {
    fn dst(&self, block: Block24) -> Option<DstRef<'_>> {
        match self {
            StatsShard::Map(s) => TrafficView::dst(s, block),
            StatsShard::Columnar(c) => TrafficView::dst(c, block),
        }
    }

    fn src(&self, block: Block24) -> Option<SrcRef> {
        match self {
            StatsShard::Map(s) => TrafficView::src(s, block),
            StatsShard::Columnar(c) => TrafficView::src(c, block),
        }
    }

    fn iter_dst(&self) -> impl Iterator<Item = (Block24, DstRef<'_>)> {
        match self {
            StatsShard::Map(s) => {
                Box::new(TrafficView::iter_dst(s)) as Box<dyn Iterator<Item = _> + '_>
            }
            StatsShard::Columnar(c) => Box::new(TrafficView::iter_dst(c)),
        }
    }

    fn iter_src(&self) -> impl Iterator<Item = (Block24, SrcRef)> {
        match self {
            StatsShard::Map(s) => {
                Box::new(TrafficView::iter_src(s)) as Box<dyn Iterator<Item = _> + '_>
            }
            StatsShard::Columnar(c) => Box::new(TrafficView::iter_src(c)),
        }
    }

    fn dst_block_count(&self) -> usize {
        match self {
            StatsShard::Map(s) => s.dst_block_count(),
            StatsShard::Columnar(c) => TrafficView::dst_block_count(c),
        }
    }

    fn src_block_count(&self) -> usize {
        match self {
            StatsShard::Map(s) => s.src_block_count(),
            StatsShard::Columnar(c) => TrafficView::src_block_count(c),
        }
    }

    fn size_threshold(&self) -> u16 {
        match self {
            StatsShard::Map(s) => s.size_threshold(),
            StatsShard::Columnar(c) => TrafficView::size_threshold(c),
        }
    }

    fn total_flows(&self) -> u64 {
        match self {
            StatsShard::Map(s) => s.total_flows,
            StatsShard::Columnar(c) => TrafficView::total_flows(c),
        }
    }

    fn total_packets(&self) -> u64 {
        match self {
            StatsShard::Map(s) => s.total_packets,
            StatsShard::Columnar(c) => TrafficView::total_packets(c),
        }
    }

    fn total_octets(&self) -> u64 {
        match self {
            StatsShard::Map(s) => s.total_octets,
            StatsShard::Columnar(c) => TrafficView::total_octets(c),
        }
    }
}

/// Per-/24 traffic aggregates split over fixed shards.
#[derive(Debug, Clone)]
pub struct ShardedTrafficStats {
    shards: Vec<StatsShard>,
    layout: StatsLayout,
    /// Slots per columnar shard (0 under the map layout).
    rows_per_shard: u32,
}

impl Default for ShardedTrafficStats {
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

/// The shard owning `block` — a free function so `par_ingest` workers
/// can route without borrowing the whole accumulator.
fn shard_of_block(
    layout: &StatsLayout,
    rows_per_shard: u32,
    num_shards: usize,
    block: Block24,
) -> usize {
    match layout {
        StatsLayout::Map => block.0 as usize % num_shards,
        StatsLayout::Columnar(slots) => match slots.slot_of(block) {
            Some(slot) => ((slot / rows_per_shard) as usize).min(num_shards - 1),
            None => block.0 as usize % num_shards,
        },
    }
}

impl ShardedTrafficStats {
    /// Creates an empty map-layout accumulator with `num_shards` shards
    /// and the default per-host size threshold.
    pub fn new(num_shards: usize) -> Self {
        Self::with_size_threshold(num_shards, crate::stats::DEFAULT_SIZE_THRESHOLD)
    }

    /// Creates an empty map-layout accumulator with a custom per-host
    /// size threshold (must match the pipeline's classification
    /// threshold).
    pub fn with_size_threshold(num_shards: usize, size_threshold: u16) -> Self {
        Self::with_layout(num_shards, size_threshold, StatsLayout::Map)
    }

    /// Creates an empty accumulator with an explicit storage layout.
    pub fn with_layout(num_shards: usize, size_threshold: u16, layout: StatsLayout) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let (shards, rows_per_shard) = match &layout {
            StatsLayout::Map => (
                (0..num_shards)
                    .map(|_| StatsShard::Map(TrafficStats::with_size_threshold(size_threshold)))
                    .collect(),
                0,
            ),
            StatsLayout::Columnar(slots) => {
                // At least 1 so `slot / rows_per_shard` is defined even
                // for an empty index (every slot range is then empty).
                let rows_per_shard = slots.num_slots().div_ceil(num_shards as u32).max(1);
                let shards = (0..num_shards as u32)
                    .map(|i| {
                        let row_base = (i * rows_per_shard).min(slots.num_slots());
                        let rows = rows_per_shard.min(slots.num_slots() - row_base);
                        StatsShard::Columnar(ColumnarStats::slice(
                            Arc::clone(slots),
                            size_threshold,
                            row_base,
                            rows,
                        ))
                    })
                    .collect();
                (shards, rows_per_shard)
            }
        };
        ShardedTrafficStats {
            shards,
            layout,
            rows_per_shard,
        }
    }

    /// Number of shards the key space is split over.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The storage layout this accumulator was built with.
    pub fn layout(&self) -> &StatsLayout {
        &self.layout
    }

    /// The shard owning `block`.
    pub fn shard_of(&self, block: Block24) -> usize {
        shard_of_block(&self.layout, self.rows_per_shard, self.shards.len(), block)
    }

    /// The per-shard accumulators, in shard order.
    pub fn shards(&self) -> &[StatsShard] {
        &self.shards
    }

    /// Destination blocks held per shard, in shard order — the load
    /// signal behind the `mt_flow_shard_blocks` gauges: a skewed vector
    /// flags a pathological key (map layout) or announcement (columnar
    /// layout) distribution before it shows up as one hot ingest worker.
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(TrafficView::dst_block_count)
            .collect()
    }

    /// Ingests one record, routing its destination half to the shard
    /// owning the destination block and its source half to the shard
    /// owning the source block.
    pub fn ingest(&mut self, r: &FlowRecord) {
        self.route(r, None);
    }

    /// Ingests a host-sweep record (see
    /// [`TrafficStats::ingest_sweep`]), with the same shard routing as
    /// [`ingest`](Self::ingest).
    pub fn ingest_sweep(&mut self, r: &FlowRecord, host_seed: u64) {
        self.route(r, Some(host_seed));
    }

    fn route(&mut self, r: &FlowRecord, sweep_seed: Option<u64>) {
        let dst_shard = self.shard_of(Block24(r.dst.block24_index()));
        let src_shard = self.shard_of(Block24(r.src.block24_index()));
        self.shards[dst_shard].ingest_dst_half(r, sweep_seed);
        self.shards[src_shard].ingest_src_half(r);
    }

    /// Builds map-layout stats from a slice of records serially.
    pub fn from_records(num_shards: usize, records: &[FlowRecord]) -> Self {
        let mut s = Self::new(num_shards);
        for r in records {
            s.ingest(r);
        }
        s
    }

    /// Ingests a record slice with `threads` worker threads.
    ///
    /// Lock-free single-writer scheme: each thread owns a contiguous
    /// range of shards and scans the whole slice, applying only the
    /// updates whose target shard it owns. Every thread reads all
    /// records, so this trades `threads × scan` read bandwidth for
    /// zero synchronization on the write side — a good trade while
    /// hashing and histogram upkeep dominate the scan. The result is
    /// bit-identical to serial ingest of the same slice, under either
    /// layout.
    pub fn par_ingest(&mut self, records: &[FlowRecord], threads: usize) {
        let n = self.shards.len();
        let threads = threads.clamp(1, n);
        if threads == 1 {
            for r in records {
                self.ingest(r);
            }
            return;
        }
        let layout = self.layout.clone();
        let rows_per_shard = self.rows_per_shard;
        let base = n / threads;
        let extra = n % threads;
        crossbeam::thread::scope(|scope| {
            let layout = &layout;
            let mut rest: &mut [StatsShard] = &mut self.shards;
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let lo = start;
                start += len;
                scope.spawn(move |_| {
                    for r in records {
                        let dst = Block24(r.dst.block24_index());
                        let dst_shard = shard_of_block(layout, rows_per_shard, n, dst);
                        if (lo..lo + len).contains(&dst_shard) {
                            chunk[dst_shard - lo].ingest_dst_half(r, None);
                        }
                        let src = Block24(r.src.block24_index());
                        let src_shard = shard_of_block(layout, rows_per_shard, n, src);
                        if (lo..lo + len).contains(&src_shard) {
                            chunk[src_shard - lo].ingest_src_half(r);
                        }
                    }
                });
            }
        })
        // check: allow(no_panic, "scope() errs only if a worker panicked; re-raising on the coordinator is intended")
        .expect("sharded ingest worker panicked");
    }

    /// Merges another sharded accumulator shard-by-shard. Both sides
    /// must have the same shard count and the same layout (same shard
    /// function; for columnar layouts, the same slot-index fingerprint).
    pub fn merge(&mut self, other: &ShardedTrafficStats) {
        assert_eq!(
            self.shards.len(),
            other.shards.len(),
            "merging sharded stats with different shard counts"
        );
        match (&self.layout, &other.layout) {
            (StatsLayout::Map, StatsLayout::Map) => {}
            (StatsLayout::Columnar(a), StatsLayout::Columnar(b)) => {
                assert_eq!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "merging columnar sharded stats built over different slot indexes"
                );
            }
            // check: allow(no_panic, "rejecting a map ↔ columnar merge is this method's contract, mirroring the shard-count assert")
            _ => panic!("merging sharded stats with different layouts"),
        }
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.merge(theirs);
        }
    }

    /// Reduces flat per-part stats (e.g. one [`TrafficStats`] per day or
    /// per vantage point) into a map-layout sharded accumulator, with
    /// `threads` workers each building its own shards.
    ///
    /// Thread `t` owns a range of shards; for each shard it walks every
    /// part and merges in just the blocks that hash to that shard. Totals
    /// of each part are attributed to shard 0 so shard sums equal the
    /// serial merge. Unlike a tree reduction over clones, no block is
    /// ever copied more than once and no intermediate clones are made.
    pub fn from_parts_parallel(
        parts: &[TrafficStats],
        num_shards: usize,
        threads: usize,
    ) -> ShardedTrafficStats {
        let size_threshold = parts
            .first()
            .map_or(crate::stats::DEFAULT_SIZE_THRESHOLD, |p| p.size_threshold());
        // Fail fast on the calling thread rather than inside a worker,
        // where the panic message would be masked by the scope join.
        assert!(
            parts.iter().all(|p| p.size_threshold() == size_threshold),
            "merging stats with different host-size thresholds"
        );
        let mut out = Self::with_size_threshold(num_shards, size_threshold);
        let n = num_shards;
        let threads = threads.clamp(1, n);
        let base = n / threads;
        let extra = n % threads;
        crossbeam::thread::scope(|scope| {
            let mut rest: &mut [StatsShard] = &mut out.shards;
            let mut start = 0usize;
            for t in 0..threads {
                let len = base + usize::from(t < extra);
                let (chunk, tail) = rest.split_at_mut(len);
                rest = tail;
                let lo = start;
                start += len;
                scope.spawn(move |_| {
                    for (offset, shard) in chunk.iter_mut().enumerate() {
                        let s = lo + offset;
                        let StatsShard::Map(shard) = shard else {
                            // check: allow(no_panic, "with_size_threshold above always builds the map layout")
                            unreachable!("from_parts_parallel builds map-layout shards");
                        };
                        for part in parts {
                            shard.merge_projection(part, |block| block as usize % n == s, s == 0);
                        }
                    }
                });
            }
        })
        // check: allow(no_panic, "scope() errs only if a worker panicked; re-raising on the coordinator is intended")
        .expect("sharded reduce worker panicked");
        out
    }

    /// Reassembles a flat [`TrafficStats`] (escape hatch for call sites
    /// that need the unsharded representation). Shard key spaces are
    /// disjoint, so map-layout blocks are moved, not re-merged;
    /// columnar shards are materialized row by row.
    pub fn into_unsharded(self) -> TrafficStats {
        let mut shards = self.shards.into_iter().map(|shard| match shard {
            StatsShard::Map(s) => s,
            StatsShard::Columnar(c) => TrafficStats::from_view(&c),
        });
        // check: allow(no_panic, "with_layout asserts num_shards > 0, so the iterator is never empty")
        let mut out = shards.next().expect("at least one shard");
        for shard in shards {
            out.absorb_disjoint(shard);
        }
        out
    }
}

impl TrafficView for ShardedTrafficStats {
    fn dst(&self, block: Block24) -> Option<DstRef<'_>> {
        TrafficView::dst(&self.shards[self.shard_of(block)], block)
    }

    fn src(&self, block: Block24) -> Option<SrcRef> {
        TrafficView::src(&self.shards[self.shard_of(block)], block)
    }

    fn iter_dst(&self) -> impl Iterator<Item = (Block24, DstRef<'_>)> {
        self.shards.iter().flat_map(TrafficView::iter_dst)
    }

    fn iter_src(&self) -> impl Iterator<Item = (Block24, SrcRef)> {
        self.shards.iter().flat_map(TrafficView::iter_src)
    }

    fn dst_block_count(&self) -> usize {
        self.shards.iter().map(TrafficView::dst_block_count).sum()
    }

    fn src_block_count(&self) -> usize {
        self.shards.iter().map(TrafficView::src_block_count).sum()
    }

    fn size_threshold(&self) -> u16 {
        TrafficView::size_threshold(&self.shards[0])
    }

    fn total_flows(&self) -> u64 {
        self.shards.iter().map(TrafficView::total_flows).sum()
    }

    fn total_packets(&self) -> u64 {
        self.shards.iter().map(TrafficView::total_packets).sum()
    }

    fn total_octets(&self) -> u64 {
        self.shards.iter().map(TrafficView::total_octets).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::{Ipv4, Prefix, PrefixTrie, RibIndex, SimTime};

    fn flow(src: u32, dst: u32, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: Ipv4(src),
            dst: Ipv4(dst),
            src_port: 1000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: if proto == 6 { 0x02 } else { 0 },
            packets,
            octets: packets * size,
        }
    }

    fn sample_records() -> Vec<FlowRecord> {
        // Spread blocks over many shard residues, mixed protocols/sizes.
        (0u32..500)
            .map(|i| {
                flow(
                    0x0900_0000 + (i % 37) * 256 + (i % 11),
                    0x0a00_0000 + (i % 53) * 256 + (i % 7),
                    if i % 3 == 0 { 6 } else { 17 },
                    1 + u64::from(i % 5),
                    40 + u64::from(i % 4) * 500,
                )
            })
            .collect()
    }

    /// A slot index over the sample traffic's source space and *part* of
    /// its destination space, so columnar tests exercise both slot rows
    /// and the slotless overflow path.
    fn sample_layout() -> StatsLayout {
        let trie: PrefixTrie<()> = ["9.0.0.0/16", "10.0.0.0/19"]
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), ()))
            .collect();
        StatsLayout::Columnar(Arc::new(Slot24Index::build(&RibIndex::build(&trie))))
    }

    fn assert_equivalent(sharded: &ShardedTrafficStats, flat: &TrafficStats) {
        assert_eq!(TrafficView::total_flows(sharded), flat.total_flows);
        assert_eq!(TrafficView::total_packets(sharded), flat.total_packets);
        assert_eq!(TrafficView::total_octets(sharded), flat.total_octets);
        assert_eq!(
            TrafficView::dst_block_count(sharded),
            flat.dst_block_count()
        );
        assert_eq!(
            TrafficView::src_block_count(sharded),
            flat.src_block_count()
        );
        for (block, d) in flat.iter_dst() {
            let sd = TrafficView::dst(sharded, block).expect("dst block present");
            assert_eq!(sd.tcp_packets, d.tcp_packets);
            assert_eq!(sd.tcp_octets, d.tcp_octets);
            assert_eq!(sd.received, d.received);
            assert_eq!(sd.received_tcp, d.received_tcp);
            assert_eq!(sd.received_big_tcp, d.received_big_tcp);
            assert_eq!(sd.tcp_size_histogram(), d.tcp_size_histogram());
        }
        for (block, s) in flat.iter_src() {
            let ss = TrafficView::src(sharded, block).expect("src block present");
            assert_eq!(ss.packets, s.packets);
            assert_eq!(ss.originating, s.originating);
        }
    }

    #[test]
    fn serial_sharded_ingest_matches_flat() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        for shards in [1, 3, 16] {
            let sharded = ShardedTrafficStats::from_records(shards, &records);
            assert_equivalent(&sharded, &flat);
        }
    }

    #[test]
    fn columnar_layout_matches_flat_for_all_shard_counts() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        for shards in [1, 3, 16, 64] {
            let mut sharded = ShardedTrafficStats::with_layout(
                shards,
                crate::stats::DEFAULT_SIZE_THRESHOLD,
                sample_layout(),
            );
            for r in &records {
                sharded.ingest(r);
            }
            assert_equivalent(&sharded, &flat);
        }
    }

    #[test]
    fn shard_loads_sum_to_block_count_and_balance() {
        let records = sample_records();
        let sharded = ShardedTrafficStats::from_records(8, &records);
        let loads = sharded.shard_loads();
        assert_eq!(loads.len(), 8);
        assert_eq!(
            loads.iter().sum::<usize>(),
            TrafficView::dst_block_count(&sharded),
            "every destination block is counted in exactly one shard"
        );
        assert!(
            loads.iter().all(|&l| l > 0),
            "sample blocks cover all residues: {loads:?}"
        );
    }

    #[test]
    fn par_ingest_matches_serial_for_all_thread_counts() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        for threads in [1, 2, 4, 8] {
            let mut sharded = ShardedTrafficStats::new(8);
            sharded.par_ingest(&records, threads);
            assert_equivalent(&sharded, &flat);
        }
    }

    #[test]
    fn columnar_par_ingest_matches_serial_for_all_thread_counts() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        for threads in [1, 2, 4, 8] {
            let mut sharded = ShardedTrafficStats::with_layout(
                8,
                crate::stats::DEFAULT_SIZE_THRESHOLD,
                sample_layout(),
            );
            sharded.par_ingest(&records, threads);
            assert_equivalent(&sharded, &flat);
        }
    }

    #[test]
    fn sweeps_route_like_flat_ingest() {
        let records = sample_records();
        let mut flat = TrafficStats::new();
        let mut sharded = ShardedTrafficStats::new(5);
        let mut columnar = ShardedTrafficStats::with_layout(
            5,
            crate::stats::DEFAULT_SIZE_THRESHOLD,
            sample_layout(),
        );
        for (i, r) in records.iter().enumerate() {
            if i % 4 == 0 {
                flat.ingest_sweep(r, i as u64);
                sharded.ingest_sweep(r, i as u64);
                columnar.ingest_sweep(r, i as u64);
            } else {
                flat.ingest(r);
                sharded.ingest(r);
                columnar.ingest(r);
            }
        }
        assert_equivalent(&sharded, &flat);
        assert_equivalent(&columnar, &flat);
    }

    #[test]
    fn into_unsharded_roundtrips() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        let back = ShardedTrafficStats::from_records(7, &records).into_unsharded();
        assert_eq!(back.total_flows, flat.total_flows);
        assert_eq!(back.dst_block_count(), flat.dst_block_count());
        for (block, d) in flat.iter_dst() {
            assert_eq!(back.dst(block).unwrap().received, d.received);
        }
    }

    #[test]
    fn columnar_into_unsharded_roundtrips() {
        let records = sample_records();
        let flat = TrafficStats::from_records(&records);
        let mut sharded = ShardedTrafficStats::with_layout(
            7,
            crate::stats::DEFAULT_SIZE_THRESHOLD,
            sample_layout(),
        );
        for r in &records {
            sharded.ingest(r);
        }
        let back = sharded.into_unsharded();
        assert_eq!(back.total_flows, flat.total_flows);
        assert_eq!(back.dst_block_count(), flat.dst_block_count());
        for (block, d) in flat.iter_dst() {
            assert_eq!(back.dst(block).unwrap().received, d.received);
            assert_eq!(
                back.dst(block).unwrap().tcp_size_histogram(),
                d.tcp_size_histogram()
            );
        }
    }

    #[test]
    fn merge_is_shard_wise() {
        let records = sample_records();
        let (a_recs, b_recs) = records.split_at(200);
        let mut a = ShardedTrafficStats::from_records(4, a_recs);
        let b = ShardedTrafficStats::from_records(4, b_recs);
        a.merge(&b);
        assert_equivalent(&a, &TrafficStats::from_records(&records));
    }

    #[test]
    fn columnar_merge_is_shard_wise() {
        let records = sample_records();
        let (a_recs, b_recs) = records.split_at(200);
        let threshold = crate::stats::DEFAULT_SIZE_THRESHOLD;
        let mut a = ShardedTrafficStats::with_layout(4, threshold, sample_layout());
        let mut b = ShardedTrafficStats::with_layout(4, threshold, sample_layout());
        for r in a_recs {
            a.ingest(r);
        }
        for r in b_recs {
            b.ingest(r);
        }
        a.merge(&b);
        assert_equivalent(&a, &TrafficStats::from_records(&records));
    }

    #[test]
    #[should_panic(expected = "different shard counts")]
    fn merge_rejects_mismatched_shard_counts() {
        let mut a = ShardedTrafficStats::new(4);
        a.merge(&ShardedTrafficStats::new(8));
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = ShardedTrafficStats::new(4);
        let b = ShardedTrafficStats::with_layout(
            4,
            crate::stats::DEFAULT_SIZE_THRESHOLD,
            sample_layout(),
        );
        a.merge(&b);
    }

    #[test]
    fn from_parts_parallel_matches_serial_merge() {
        let records = sample_records();
        let parts: Vec<TrafficStats> = records.chunks(97).map(TrafficStats::from_records).collect();
        let mut serial = TrafficStats::new();
        for p in &parts {
            serial.merge(p);
        }
        for threads in [1, 2, 4] {
            let sharded = ShardedTrafficStats::from_parts_parallel(&parts, 8, threads);
            assert_equivalent(&sharded, &serial);
        }
    }
}
