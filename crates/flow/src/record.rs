//! Flow intents and sampled flow records.

use mt_types::{Ipv4, SimTime};
use mt_wire::ipfix::IpfixFlow;
use mt_wire::IpProtocol;

/// TCP flag bit for SYN (kept as a raw byte to stay close to the wire;
/// see `mt_wire::tcp::Flags` for the full set).
pub const TCP_SYN: u8 = 0x02;
/// TCP flag bit for ACK.
pub const TCP_ACK: u8 = 0x10;
/// TCP flag bit for RST.
pub const TCP_RST: u8 = 0x04;

/// What a traffic source actually put on the wire: a burst of `packets`
/// identical-shaped packets of `packet_len` bytes (IP total length) for
/// one 5-tuple.
///
/// Intents are the unit the traffic generators emit. They carry *true*
/// counts; only after [`Sampler`](crate::sampling::Sampler) thinning do
/// they become observable [`FlowRecord`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowIntent {
    /// When the burst started.
    pub start: SimTime,
    /// Source address (possibly spoofed — the intent does not say).
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
    /// Source transport port (0 for ICMP).
    pub src_port: u16,
    /// Destination transport port (0 for ICMP).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
    /// TCP flags union (0 for non-TCP).
    pub tcp_flags: u8,
    /// True number of packets sent.
    pub packets: u64,
    /// IP total length of each packet in bytes.
    pub packet_len: u16,
}

impl FlowIntent {
    /// A burst of bare TCP SYNs (40 bytes each) — the canonical scan probe.
    pub fn tcp_syn(
        start: SimTime,
        src: Ipv4,
        dst: Ipv4,
        src_port: u16,
        dst_port: u16,
        packets: u64,
    ) -> Self {
        FlowIntent {
            start,
            src,
            dst,
            src_port,
            dst_port,
            protocol: IpProtocol::Tcp.into(),
            tcp_flags: TCP_SYN,
            packets,
            packet_len: 40,
        }
    }

    /// Total bytes of the burst.
    pub fn octets(&self) -> u64 {
        self.packets * u64::from(self.packet_len)
    }
}

/// A sampled flow record as exported by a vantage point.
///
/// `packets`/`octets` are sampled counts; multiply by the vantage point's
/// sampling rate for volume estimates (as the pipeline's volume filter
/// does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowRecord {
    /// Flow start time.
    pub start: SimTime,
    /// Source address.
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
    /// TCP flags union over the sampled packets.
    pub tcp_flags: u8,
    /// Sampled packet count (≥ 1).
    pub packets: u64,
    /// Sampled octet count.
    pub octets: u64,
}

impl FlowRecord {
    /// Whether this is a TCP flow.
    pub fn is_tcp(&self) -> bool {
        self.protocol == u8::from(IpProtocol::Tcp)
    }

    /// Whether this is a UDP flow.
    pub fn is_udp(&self) -> bool {
        self.protocol == u8::from(IpProtocol::Udp)
    }

    /// Average sampled packet size in bytes.
    pub fn avg_packet_len(&self) -> f64 {
        self.octets as f64 / self.packets as f64
    }

    /// Converts to the IPFIX-lite wire representation. Sub-second timing
    /// is truncated to seconds, as the wire format carries
    /// `flowStartSeconds`.
    pub fn to_ipfix(&self) -> IpfixFlow {
        IpfixFlow {
            src: self.src,
            dst: self.dst,
            src_port: self.src_port,
            dst_port: self.dst_port,
            protocol: self.protocol,
            tcp_flags: self.tcp_flags,
            packets: self.packets,
            octets: self.octets,
            start_secs: self.start.0 as u32,
        }
    }

    /// Builds a record from the IPFIX-lite wire representation.
    pub fn from_ipfix(f: &IpfixFlow) -> FlowRecord {
        FlowRecord {
            start: SimTime(u64::from(f.start_secs)),
            src: f.src,
            dst: f.dst,
            src_port: f.src_port,
            dst_port: f.dst_port,
            protocol: f.protocol,
            tcp_flags: f.tcp_flags,
            packets: f.packets,
            octets: f.octets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FlowRecord {
        FlowRecord {
            start: SimTime(86_400 + 17),
            src: Ipv4::new(198, 51, 100, 1),
            dst: Ipv4::new(203, 0, 113, 7),
            src_port: 54321,
            dst_port: 23,
            protocol: 6,
            tcp_flags: TCP_SYN,
            packets: 3,
            octets: 120,
        }
    }

    #[test]
    fn ipfix_conversion_roundtrip() {
        let r = record();
        assert_eq!(FlowRecord::from_ipfix(&r.to_ipfix()), r);
    }

    #[test]
    fn protocol_helpers() {
        let r = record();
        assert!(r.is_tcp());
        assert!(!r.is_udp());
        assert_eq!(r.avg_packet_len(), 40.0);
    }

    #[test]
    fn syn_intent_shape() {
        let i = FlowIntent::tcp_syn(
            SimTime(0),
            Ipv4::new(9, 9, 9, 9),
            Ipv4::new(10, 0, 0, 1),
            40000,
            2222,
            5,
        );
        assert_eq!(i.packet_len, 40);
        assert_eq!(i.tcp_flags, TCP_SYN);
        assert_eq!(i.octets(), 200);
    }
}
