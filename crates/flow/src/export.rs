//! Owned column slices: the interchange form between live traffic
//! accumulators and the results store.
//!
//! A [`TrafficView`] hands out borrowed per-/24 rows; persisting a
//! closed window needs an owned, ordered, representation-independent
//! snapshot of those rows. [`ColumnSlices`] is that snapshot: every
//! announced /24 keyed by its `Slot24Index` slot id (ascending), every
//! unannounced straggler keyed by its raw `Block24` id in overflow
//! lists, plus the window totals. The store codec (mt-store) serialises
//! exactly this shape column by column; [`ColumnSlices::to_stats`]
//! rebuilds a [`TrafficStats`] that merges bit-identically with live
//! accumulators, which is what the store-equivalence invariant pins.

use crate::stats::{DstRef, HostSet, SrcRef, TrafficStats, TrafficView};
use mt_types::{Block24, Slot24Index};

/// One destination /24 row, fully owned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DstRowExport {
    /// Sampled TCP packets.
    pub tcp_packets: u64,
    /// Sampled TCP octets.
    pub tcp_octets: u64,
    /// Sampled UDP packets.
    pub udp_packets: u64,
    /// Sampled ICMP packets.
    pub icmp_packets: u64,
    /// Sampled packets of other protocols.
    pub other_packets: u64,
    /// Hosts that received any sampled packet (raw 256-bit words).
    pub received: [u64; 4],
    /// Hosts that received sampled TCP.
    pub received_tcp: [u64; 4],
    /// Hosts that received big sampled TCP.
    pub received_big_tcp: [u64; 4],
    /// TCP packet-size histogram, sorted by size.
    pub tcp_sizes: Vec<(u16, u64)>,
}

impl DstRowExport {
    /// Copies a borrowed row view into an owned export row.
    pub fn from_view(d: &DstRef<'_>) -> DstRowExport {
        DstRowExport {
            tcp_packets: d.tcp_packets,
            tcp_octets: d.tcp_octets,
            udp_packets: d.udp_packets,
            icmp_packets: d.icmp_packets,
            other_packets: d.other_packets,
            received: d.received.to_words(),
            received_tcp: d.received_tcp.to_words(),
            received_big_tcp: d.received_big_tcp.to_words(),
            tcp_sizes: d.tcp_size_histogram().to_vec(),
        }
    }

    /// The borrowed [`TrafficView`]-shaped view of this row.
    pub fn as_view(&self) -> DstRef<'_> {
        DstRef {
            tcp_packets: self.tcp_packets,
            tcp_octets: self.tcp_octets,
            udp_packets: self.udp_packets,
            icmp_packets: self.icmp_packets,
            other_packets: self.other_packets,
            received: HostSet::from_words(self.received),
            received_tcp: HostSet::from_words(self.received_tcp),
            received_big_tcp: HostSet::from_words(self.received_big_tcp),
            tcp_sizes: &self.tcp_sizes,
        }
    }

    /// Folds another row for the same /24 into this one: counters add,
    /// host-set words OR, size histograms merge by size.
    pub fn merge(&mut self, other: &DstRowExport) {
        self.tcp_packets += other.tcp_packets;
        self.tcp_octets += other.tcp_octets;
        self.udp_packets += other.udp_packets;
        self.icmp_packets += other.icmp_packets;
        self.other_packets += other.other_packets;
        for w in 0..4 {
            self.received[w] |= other.received[w];
            self.received_tcp[w] |= other.received_tcp[w];
            self.received_big_tcp[w] |= other.received_big_tcp[w];
        }
        for &(size, count) in &other.tcp_sizes {
            match self.tcp_sizes.binary_search_by_key(&size, |&(s, _)| s) {
                Ok(i) => self.tcp_sizes[i].1 += count,
                Err(i) => self.tcp_sizes.insert(i, (size, count)),
            }
        }
    }
}

/// One source /24 row, fully owned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrcRowExport {
    /// Sampled packets originated by the block.
    pub packets: u64,
    /// Hosts seen originating traffic (raw 256-bit words).
    pub originating: [u64; 4],
}

impl SrcRowExport {
    /// Copies a borrowed row view into an owned export row.
    pub fn from_view(s: &SrcRef) -> SrcRowExport {
        SrcRowExport {
            packets: s.packets,
            originating: s.originating.to_words(),
        }
    }

    /// The borrowed [`TrafficView`]-shaped view of this row.
    pub fn as_view(&self) -> SrcRef {
        SrcRef {
            packets: self.packets,
            originating: HostSet::from_words(self.originating),
        }
    }

    /// Folds another row for the same /24 into this one.
    pub fn merge(&mut self, other: &SrcRowExport) {
        self.packets += other.packets;
        for w in 0..4 {
            self.originating[w] |= other.originating[w];
        }
    }
}

/// An owned, slot-ordered snapshot of one window's traffic aggregates.
///
/// Rows for announced space are keyed by `Slot24Index` slot id; rows
/// for blocks outside the index (traffic to space the RIB never
/// announced) land in the overflow lists keyed by raw `Block24` id.
/// All four lists are sorted ascending by key, which makes merge a
/// linear zip and gives the store codec monotone id streams to
/// delta-encode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSlices {
    /// Destination rows for announced /24s: `(slot id, row)` ascending.
    pub dst: Vec<(u32, DstRowExport)>,
    /// Source rows for announced /24s: `(slot id, row)` ascending.
    pub src: Vec<(u32, SrcRowExport)>,
    /// Destination rows outside the slot index: `(Block24 id, row)`.
    pub ovf_dst: Vec<(u32, DstRowExport)>,
    /// Source rows outside the slot index: `(Block24 id, row)`.
    pub ovf_src: Vec<(u32, SrcRowExport)>,
    /// Ingest size threshold the rows were accumulated under.
    pub size_threshold: u16,
    /// Total sampled flow records.
    pub total_flows: u64,
    /// Total sampled packets.
    pub total_packets: u64,
    /// Total sampled octets.
    pub total_octets: u64,
}

impl ColumnSlices {
    /// An empty snapshot at the given size threshold.
    pub fn empty(size_threshold: u16) -> ColumnSlices {
        ColumnSlices {
            dst: Vec::new(),
            src: Vec::new(),
            ovf_dst: Vec::new(),
            ovf_src: Vec::new(),
            size_threshold,
            total_flows: 0,
            total_packets: 0,
            total_octets: 0,
        }
    }

    /// Snapshots a live traffic view into owned, slot-ordered columns.
    pub fn export<V: TrafficView>(view: &V, slots: &Slot24Index) -> ColumnSlices {
        let mut out = ColumnSlices::empty(view.size_threshold());
        out.total_flows = view.total_flows();
        out.total_packets = view.total_packets();
        out.total_octets = view.total_octets();
        for (block, d) in view.iter_dst() {
            let row = DstRowExport::from_view(&d);
            match slots.slot_of(block) {
                Some(slot) => out.dst.push((slot, row)),
                None => out.ovf_dst.push((block.0, row)),
            }
        }
        for (block, s) in view.iter_src() {
            let row = SrcRowExport::from_view(&s);
            match slots.slot_of(block) {
                Some(slot) => out.src.push((slot, row)),
                None => out.ovf_src.push((block.0, row)),
            }
        }
        out.dst.sort_unstable_by_key(|&(id, _)| id);
        out.src.sort_unstable_by_key(|&(id, _)| id);
        out.ovf_dst.sort_unstable_by_key(|&(id, _)| id);
        out.ovf_src.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Rebuilds a map-layout accumulator from the snapshot. The result
    /// merges bit-identically with live stats built from the same
    /// traffic — the property the store-equivalence test pins.
    pub fn to_stats(&self, slots: &Slot24Index) -> TrafficStats {
        let mut out = TrafficStats::with_size_threshold(self.size_threshold);
        for &(slot, ref row) in &self.dst {
            out.merge_dst_view(slots.block_of(slot), row.as_view());
        }
        for &(slot, ref row) in &self.src {
            out.merge_src_view(slots.block_of(slot), row.as_view());
        }
        for &(id, ref row) in &self.ovf_dst {
            out.merge_dst_view(Block24(id), row.as_view());
        }
        for &(id, ref row) in &self.ovf_src {
            out.merge_src_view(Block24(id), row.as_view());
        }
        out.total_flows = self.total_flows;
        out.total_packets = self.total_packets;
        out.total_octets = self.total_octets;
        out
    }

    /// Folds another snapshot over the same slot index into this one:
    /// a linear zip on the sorted key lists, row merges where keys
    /// collide. Both snapshots must share a size threshold.
    pub fn merge(&mut self, other: &ColumnSlices) {
        assert_eq!(
            self.size_threshold, other.size_threshold,
            "merging column slices with different size thresholds"
        );
        merge_rows(&mut self.dst, &other.dst, DstRowExport::merge);
        merge_rows(&mut self.src, &other.src, |a, b| a.merge(b));
        merge_rows(&mut self.ovf_dst, &other.ovf_dst, DstRowExport::merge);
        merge_rows(&mut self.ovf_src, &other.ovf_src, |a, b| a.merge(b));
        self.total_flows += other.total_flows;
        self.total_packets += other.total_packets;
        self.total_octets += other.total_octets;
    }

    /// Total rows across the four lists.
    pub fn rows(&self) -> usize {
        self.dst.len() + self.src.len() + self.ovf_dst.len() + self.ovf_src.len()
    }
}

/// Merges sorted `(key, row)` lists: zip, fold collisions, keep order.
fn merge_rows<R: Clone>(
    into: &mut Vec<(u32, R)>,
    from: &[(u32, R)],
    mut fold: impl FnMut(&mut R, &R),
) {
    if from.is_empty() {
        return;
    }
    let old = std::mem::take(into);
    let mut out = Vec::with_capacity(old.len() + from.len());
    let mut ai = old.into_iter();
    let mut bi = from.iter();
    let mut a = ai.next();
    let mut b = bi.next();
    loop {
        match (a.take(), b.take()) {
            (Some(x), Some(y)) => {
                if x.0 < y.0 {
                    out.push(x);
                    a = ai.next();
                    b = Some(y);
                } else if y.0 < x.0 {
                    out.push(y.clone());
                    a = Some(x);
                    b = bi.next();
                } else {
                    let mut row = x;
                    fold(&mut row.1, &y.1);
                    out.push(row);
                    a = ai.next();
                    b = bi.next();
                }
            }
            (Some(x), None) => {
                out.push(x);
                a = ai.next();
            }
            (None, Some(y)) => {
                out.push(y.clone());
                b = bi.next();
            }
            (None, None) => break,
        }
    }
    *into = out;
}
