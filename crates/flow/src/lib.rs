//! Flow-level plumbing between the traffic generators, the vantage
//! points, and the inference pipeline.
//!
//! The IXPs in the paper export *sampled* IPFIX flows: the switching
//! fabric samples 1-in-N packets, aggregates the samples into flow
//! records, and exports them. This crate models that chain:
//!
//! - [`record`] — [`FlowIntent`] (what a traffic source actually sent:
//!   true packet counts) and [`FlowRecord`] (what the vantage point saw
//!   after sampling), plus lossless conversion to/from the IPFIX-lite
//!   wire format;
//! - [`meter`] — the RFC 7011 metering process: aggregating sampled
//!   packets into flow records with active/idle timeouts (for
//!   packet-level inputs such as replayed pcaps);
//! - [`sampling`] — deterministic 1-in-N packet sampling (binomial
//!   thinning) and re-thinning of already-sampled data, the operation
//!   behind the paper's Figure 10 sub-sampling sweep;
//! - [`stats`] — per-/24 destination and source accumulators: exactly the
//!   aggregates the seven-step inference pipeline consumes (TCP packet
//!   counts and sizes per block and per host, originated-traffic counts,
//!   packet-size distributions for the median/average classifiers), plus
//!   the [`TrafficView`] read abstraction over them;
//! - [`columnar`] — the same aggregates stored struct-of-arrays with
//!   one dense row per *announced* /24 (row = `Slot24Index` slot),
//!   sized for full-IPv4 windows where hashmap-per-block overheads
//!   dominate;
//! - [`export`] — owned, slot-ordered column slices: the interchange
//!   snapshot the results store (mt-store) persists and reloads, with
//!   rebuild back to map-layout stats that merge bit-identically;
//! - [`sharded`] — both representations split over fixed shards
//!   (`/24 % N` for the map layout, contiguous slot ranges for the
//!   columnar layout) for lock-free parallel ingest and per-shard
//!   parallel pipeline evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod export;
pub mod meter;
pub mod record;
pub mod sampling;
pub mod sharded;
pub mod stats;

pub use columnar::ColumnarStats;
pub use export::{ColumnSlices, DstRowExport, SrcRowExport};
pub use meter::{FlowKey, FlowMeter, MeteredPacket};
pub use record::{FlowIntent, FlowRecord};
pub use sampling::{binomial, Sampler};
pub use sharded::{ShardedTrafficStats, StatsLayout, StatsShard};
pub use stats::{DstBlockStats, DstRef, HostSet, SrcBlockStats, SrcRef, TrafficStats, TrafficView};
